"""Scenario: pick a statistics technique for a GIS workload.

Runs every technique from the paper over a road-network dataset at equal
space budgets (Section 5.4 accounting, including Sample's deliberate 2×
allowance) and prints the accuracy/cost table a practitioner would use to
choose: average relative error at three query sizes, construction time,
and summary footprint.

Run:  python examples/compare_techniques.py [n_rects]
"""

import sys

from repro import ExperimentRunner, range_queries
from repro.data import nj_road_like
from repro.eval import ALL_TECHNIQUES, timed_build


def main(n_rects: int = 40_000) -> None:
    data = nj_road_like(n_rects)
    runner = ExperimentRunner(data)
    n_buckets = 100

    workloads = {
        qsize: range_queries(data, qsize, 1_000, seed=int(qsize * 100))
        for qsize in (0.02, 0.10, 0.25)
    }

    print(
        f"dataset: simulated NJ Road, {len(data)} segment MBRs; "
        f"budget: {n_buckets} buckets"
    )
    header = (
        f"{'technique':12s} {'err@2%':>8s} {'err@10%':>8s} "
        f"{'err@25%':>8s} {'build':>8s} {'words':>7s}"
    )
    print(header)
    print("-" * len(header))

    rows = []
    for technique in ALL_TECHNIQUES:
        built = timed_build(
            technique, data, n_buckets, n_regions=10_000,
            rtree_method="str", seed=9,
        )
        errors = [
            runner.evaluate(built.estimator, w).average_relative_error
            for w in workloads.values()
        ]
        rows.append((technique, errors, built))
        print(
            f"{technique:12s} "
            + " ".join(f"{e:8.3f}" for e in errors)
            + f" {built.build_seconds:7.2f}s"
            + f" {built.estimator.size_words():7d}"
        )

    best = min(rows, key=lambda r: sum(r[1]))
    print(f"\nlowest total error: {best[0]}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40_000)

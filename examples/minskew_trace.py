"""Walkthrough: watch Min-Skew make its greedy decisions (Figure 6).

The paper's Figure 6 illustrates one iteration of the construction:
compute each bucket's best split and its skew reduction, split the best
bucket, repeat.  This example runs a small traced construction on the
Charminar dataset and prints each step: which box was split, along which
axis, where, and how much spatial skew the split removed — then shows the
resulting partitioning.

Run:  python examples/minskew_trace.py
"""

from repro import MinSkewPartitioner
from repro.core import grouping_skew_on_grid
from repro.data import charminar
from repro.viz import render_partition


def main() -> None:
    data = charminar(10_000, seed=3)
    partitioner = MinSkewPartitioner(
        n_buckets=12, n_regions=900, trace=True
    )
    result = partitioner.partition_full(data)

    initial = grouping_skew_on_grid(
        result.grid,
        [(0, result.grid.nx - 1, 0, result.grid.ny - 1)],
    )
    final = grouping_skew_on_grid(result.grid, result.blocks)
    print(f"grid: {result.grid.nx}x{result.grid.ny} regions")
    print(f"spatial skew: {initial:,.0f} (1 bucket) -> "
          f"{final:,.0f} ({len(result.buckets)} buckets)\n")

    print("greedy construction steps:")
    for i, step in enumerate(result.trace, start=1):
        axis = "x" if step.axis == 0 else "y"
        box = step.bucket_box
        print(
            f"  {i:2d}. split [{box.x1:6.0f},{box.y1:6.0f} .. "
            f"{box.x2:6.0f},{box.y2:6.0f}] along {axis} "
            f"at {step.position:6.0f}  (skew -{step.skew_reduction:,.0f})"
        )

    print("\nresulting partitioning:")
    print(render_partition(result.buckets, data.mbr(), width=60,
                           height=24))

    print("\nbucket summaries (the 8 words each):")
    for b in sorted(result.buckets, key=lambda b: -b.count)[:6]:
        print(
            f"  box=({b.bbox.x1:6.0f},{b.bbox.y1:6.0f},"
            f"{b.bbox.x2:6.0f},{b.bbox.y2:6.0f}) "
            f"count={b.count:5d} avg_w={b.avg_width:5.1f} "
            f"avg_h={b.avg_height:5.1f} density={b.avg_density:8.1f}"
        )


if __name__ == "__main__":
    main()

"""Export the paper's Figures 1–7 as SVG files.

Writes `figures/fig1_dataset.svg` ... `fig7_minskew.svg` next to the
repository root: the dataset itself, the 50×50 density surface, and the
four 50-bucket partitionings, each shaded by bucket count so the
density-following layouts are visible at a glance.

Run:  python examples/export_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro import MinSkewPartitioner
from repro.data import charminar
from repro.grid import DensityGrid
from repro.partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    RTreePartitioner,
)
from repro.viz_svg import dataset_svg, density_svg, partition_svg


def main(output_dir: str = "figures") -> None:
    out = Path(output_dir)
    out.mkdir(exist_ok=True)
    data = charminar()
    space = data.mbr()

    figures = {
        "fig1_dataset.svg": dataset_svg(
            data, title="Figure 1: the Charminar dataset",
            max_draw=12_000,
        ),
        "fig5_density.svg": density_svg(
            DensityGrid.from_rects(data, 50, 50),
            title="Figure 5: spatial densities (50x50 grid)",
        ),
    }
    partitioners = {
        "fig2_equi_area.svg": (
            "Figure 2: Equi-Area (50 buckets)",
            EquiAreaPartitioner(50),
        ),
        "fig3_equi_count.svg": (
            "Figure 3: Equi-Count (50 buckets)",
            EquiCountPartitioner(50),
        ),
        "fig4_rtree.svg": (
            "Figure 4: R-Tree partitioning",
            RTreePartitioner(50, method="insert"),
        ),
        "fig7_minskew.svg": (
            "Figure 7: Min-Skew (50 buckets)",
            MinSkewPartitioner(50, n_regions=2_500),
        ),
    }
    for filename, (title, partitioner) in partitioners.items():
        buckets = partitioner.partition(data)
        figures[filename] = partition_svg(
            buckets, space, title=title, shade_by_count=True
        )

    for filename, svg in figures.items():
        path = out / filename
        path.write_text(svg)
        print(f"wrote {path} ({len(svg)} bytes)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")

"""Quickstart: build a Min-Skew histogram and estimate selectivities.

Generates the paper's Charminar dataset, summarises it into 100 buckets
with Min-Skew (the paper's winning technique), and compares a few
estimates against the exact answers.

Run:  python examples/quickstart.py
"""

from repro import (
    BucketEstimator,
    ExactEstimator,
    MinSkewPartitioner,
    Rect,
    average_relative_error,
    range_queries,
)
from repro.data import charminar


def main() -> None:
    # 1. The input distribution: 40 000 rectangles, heavily corner-skewed.
    data = charminar()
    print(f"dataset: {len(data)} rectangles, MBR {data.mbr()}")

    # 2. Summarise it into 100 buckets (800 words — what a query
    #    optimizer would keep in its statistics catalog).
    partitioner = MinSkewPartitioner(n_buckets=100, n_regions=10_000)
    estimator = BucketEstimator.build(partitioner, data)
    print(
        f"summary: {estimator.n_buckets} buckets, "
        f"{estimator.size_words()} words"
    )

    # 3. Ask it about a few queries and compare with the exact counts.
    exact = ExactEstimator(data)
    probes = [
        Rect(0, 0, 1_500, 1_500),        # a dense corner
        Rect(4_000, 4_000, 6_000, 6_000),  # the sparse middle
        Rect.point(500, 500),            # a point query in the corner
    ]
    print("\nquery                               estimate      exact")
    for q in probes:
        est = estimator.estimate(q)
        true = exact.estimate(q)
        print(f"{str(q.as_tuple()):38s} {est:9.1f}  {true:9.0f}")

    # 4. Evaluate on a paper-style workload: 1 000 range queries with
    #    5 % QSize, centered on data.
    queries = range_queries(data, qsize=0.05, n_queries=1_000, seed=42)
    error = average_relative_error(
        exact.estimate_many(queries), estimator.estimate_many(queries)
    )
    print(f"\naverage relative error over {len(queries)} queries: "
          f"{error:.1%}")


if __name__ == "__main__":
    main()

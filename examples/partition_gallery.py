"""Gallery: the paper's Figures 1–5 and 7 as terminal graphics.

Renders the Charminar dataset (Figure 1), its spatial-density surface on
a 50×50 grid (Figure 5), and the 50-bucket partitionings produced by
Equi-Area (Figure 2), Equi-Count (Figure 3), the R-tree (Figure 4), and
Min-Skew (Figure 7), each annotated with its measured spatial skew
(Definition 4.1) so the visual differences are backed by the metric
Min-Skew optimises.

Run:  python examples/partition_gallery.py
"""

from repro import MinSkewPartitioner
from repro.core import grouping_skew_on_boxes
from repro.data import charminar
from repro.grid import DensityGrid
from repro.partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    RTreePartitioner,
)
from repro.viz import render_density, render_partition


def show(title: str, body: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(body)


def main() -> None:
    data = charminar()
    space = data.mbr()
    skew_grid = DensityGrid.from_rects(data, 50, 50)

    show(
        "Figure 1: the Charminar dataset (density heat-map)",
        render_density(DensityGrid.from_rects(data, 70, 30)),
    )
    show(
        "Figure 5: spatial densities on a 50x50 grid (coarse view)",
        render_density(DensityGrid.from_rects(data, 50, 25)),
    )

    partitioners = [
        ("Figure 2: Equi-Area", EquiAreaPartitioner(50)),
        ("Figure 3: Equi-Count", EquiCountPartitioner(50)),
        ("Figure 4: R-Tree", RTreePartitioner(50, method="insert")),
        ("Figure 7: Min-Skew", MinSkewPartitioner(50, n_regions=2_500)),
    ]
    results = []
    for title, partitioner in partitioners:
        buckets = partitioner.partition(data)
        skew = grouping_skew_on_boxes(
            skew_grid, [b.bbox for b in buckets]
        )
        results.append((partitioner.name, skew))
        show(
            f"{title} ({len(buckets)} buckets, spatial skew "
            f"{skew:,.0f})",
            render_partition(buckets, space),
        )

    print("\nspatial skew by technique (lower is better):")
    for name, skew in sorted(results, key=lambda r: r[1]):
        print(f"  {name:12s} {skew:>14,.0f}")


if __name__ == "__main__":
    main()

"""Scenario: the statistics lifecycle of a spatial database.

Shows how the pieces fit into a production stats pipeline:

1. ANALYZE — build Min-Skew summaries for several spatial attributes
   and store them in an on-disk :class:`~repro.catalog.StatisticsCatalog`
   (8 × 4 bytes per bucket, the paper's Section 5.4 budget);
2. PLAN — reload a summary and answer optimizer selectivity probes;
3. DRIFT — apply inserts through a
   :class:`~repro.core.MaintainedHistogram`, watch the drift counters,
   and re-ANALYZE when the summary goes stale.

Run:  python examples/statistics_catalog.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import BucketEstimator, MinSkewPartitioner, Rect
from repro.catalog import StatisticsCatalog
from repro.core import MaintainedHistogram
from repro.data import charminar, nj_road_like, sequoia_like


def main() -> None:
    tables = {
        "roads.geom": nj_road_like(30_000),
        "landmarks.geom": sequoia_like(20_000),
        "parcels.geom": charminar(20_000),
    }

    with tempfile.TemporaryDirectory() as tmp:
        catalog = StatisticsCatalog(Path(tmp) / "pg_statistic")

        # 1. ANALYZE: build and persist summaries
        print("ANALYZE:")
        for name, data in tables.items():
            est = BucketEstimator.build(
                MinSkewPartitioner(100, n_regions=10_000), data
            )
            nbytes = catalog.store(name, est)
            print(f"  {name:16s} {len(data):6d} rects -> "
                  f"{est.n_buckets} buckets, {nbytes} bytes on disk")

        # 2. PLAN: the optimizer probes a reloaded summary
        print("\nPLAN (selectivity probes against roads.geom):")
        roads = catalog.load("roads.geom")
        n_roads = len(tables["roads.geom"])
        mbr = tables["roads.geom"].mbr()
        for frac in (0.05, 0.2, 0.5):
            w = frac * mbr.width
            h = frac * mbr.height
            probe = Rect.from_center(*mbr.center, w, h)
            sel = roads.selectivity(probe, n_roads)
            print(f"  window {frac:4.0%} of space -> "
                  f"selectivity {sel:7.4f}")

        # 3. DRIFT: inserts accumulate, the summary goes stale
        print("\nDRIFT (new subdivision built in the north-east):")
        hist = MaintainedHistogram(
            MinSkewPartitioner(100, n_regions=10_000),
            tables["roads.geom"],
            drift_threshold=0.05,
        )
        gen = np.random.default_rng(5)
        batch = 0
        while not hist.needs_refresh:
            for _ in range(500):
                cx = gen.uniform(0.8 * mbr.x2, mbr.x2)
                cy = gen.uniform(0.8 * mbr.y2, mbr.y2)
                hist.insert(Rect.from_center(cx, cy, 8.0, 8.0))
            batch += 1
            print(f"  batch {batch}: {hist.modifications_since_refresh}"
                  f" modifications, needs_refresh={hist.needs_refresh}")
        hist.refresh()
        refreshed = BucketEstimator(hist.buckets, name="roads.geom")
        catalog.store("roads.geom", refreshed)
        print(f"  re-ANALYZE done: {len(hist)} rects, summary updated "
              f"({catalog.sizes_bytes()['roads.geom']} bytes)")


if __name__ == "__main__":
    main()

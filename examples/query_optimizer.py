"""Scenario: a spatial query optimizer choosing access paths.

This is the paper's motivating application (Section 1): "query optimizers
use query result size estimates to determine the most efficient way to
execute queries".  We simulate the classic choice between

* an **index scan** — cheap for selective queries (cost grows with the
  result size), and
* a **sequential scan** — a flat cost, better once a query matches a
  large fraction of the table,

under a simple textbook cost model, and measure how often an optimizer
makes the *right* choice when its selectivity estimates come from each
technique.  Bad estimates flip plans: overestimates push cheap index
scans into needless sequential scans, underestimates cause disastrous
index scans over huge results.

Run:  python examples/query_optimizer.py
"""

import numpy as np

from repro import ExactEstimator, build_estimator, range_queries
from repro.data import nj_road_like

#: Simple cost model (arbitrary I/O units).
SEQ_SCAN_COST_PER_TUPLE = 0.05   # one sequential pass over the table
INDEX_COST_PER_RESULT = 1.0      # random I/O per fetched result
INDEX_DESCENT_COST = 10.0


def plan_cost(n_table: int, result_size: float, plan: str) -> float:
    """Cost of executing a query with the given access path."""
    if plan == "seq":
        return SEQ_SCAN_COST_PER_TUPLE * n_table
    return INDEX_DESCENT_COST + INDEX_COST_PER_RESULT * result_size


def choose_plan(n_table: int, estimated_result: float) -> str:
    """The optimizer's decision given an estimated result size."""
    seq = plan_cost(n_table, estimated_result, "seq")
    index = plan_cost(n_table, estimated_result, "index")
    return "seq" if seq <= index else "index"


def main() -> None:
    data = nj_road_like(60_000)
    n = len(data)
    exact = ExactEstimator(data)

    # a mixed workload: mostly small queries, some large
    rng = np.random.default_rng(7)
    queries_small = range_queries(data, 0.03, 600, seed=1)
    queries_large = range_queries(data, 0.30, 400, seed=2)
    queries = queries_small.concat(queries_large)
    truth = exact.estimate_many(queries)

    print(f"table: {n} rectangles; workload: {len(queries)} queries")
    print(f"{'technique':12s} {'right plan':>10s} {'excess cost':>12s}")
    for technique in ("Min-Skew", "Equi-Area", "Sample", "Uniform"):
        estimator = build_estimator(technique, data, 100,
                                    n_regions=10_000, seed=3)
        estimates = estimator.estimate_many(queries)

        correct = 0
        excess = 0.0
        for true_size, est_size in zip(truth, estimates):
            chosen = choose_plan(n, est_size)
            optimal = choose_plan(n, true_size)
            # costs are always paid on the TRUE result size
            chosen_cost = plan_cost(n, true_size, chosen)
            optimal_cost = plan_cost(n, true_size, optimal)
            if chosen == optimal:
                correct += 1
            excess += chosen_cost - optimal_cost

        print(
            f"{technique:12s} {correct / len(queries):>9.1%} "
            f"{excess:>11.0f}"
        )
        _ = rng  # deterministic run; rng reserved for extensions

    print(
        "\nA technique's estimation error translates directly into "
        "plan flips\nand wasted I/O; Min-Skew's accuracy is what makes "
        "it 'the ideal\ntechnique to use for spatial selectivity "
        "estimation' (Section 5.5.2)."
    )


if __name__ == "__main__":
    main()

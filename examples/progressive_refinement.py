"""Scenario: tuning Min-Skew's region count and rescuing large queries.

Demonstrates the paper's Section 5.5.3/5.6 findings end to end on the
Charminar dataset:

1. sweep the region count — small queries keep improving, large queries
   *degrade* once the grid gets too fine (the Figure 10(b) anomaly);
2. apply progressive refinement at the finest grid and sweep the number
   of refinement steps (Figure 11) — most of the loss is recovered.

Run:  python examples/progressive_refinement.py
"""

from repro import BucketEstimator, ExperimentRunner, MinSkewPartitioner, \
    range_queries
from repro.core import refinement_schedule
from repro.data import charminar

N_BUCKETS = 50
FINEST = 30_000


def main() -> None:
    data = charminar()
    runner = ExperimentRunner(data)
    small = range_queries(data, 0.05, 1_000, seed=1)
    large = range_queries(data, 0.25, 1_000, seed=2)

    print("1) region-count sweep (plain Min-Skew, 50 buckets)")
    print(f"{'regions':>8s} {'err small (5%)':>15s} "
          f"{'err large (25%)':>16s}")
    for regions in (100, 400, 1_600, 6_400, FINEST):
        est = BucketEstimator.build(
            MinSkewPartitioner(N_BUCKETS, n_regions=regions), data
        )
        err_small = runner.evaluate(est, small).average_relative_error
        err_large = runner.evaluate(est, large).average_relative_error
        print(f"{regions:>8d} {err_small:>15.3f} {err_large:>16.3f}")

    print(
        "\n   -> small queries keep improving; large queries degrade\n"
        "      once fine corner regions soak up the bucket budget.\n"
    )

    print(f"2) progressive refinement at {FINEST} regions "
          f"(QSize=25%)")
    print(f"{'refinements':>12s} {'schedule':>28s} {'error':>8s}")
    for r in range(0, 7):
        schedule = refinement_schedule(N_BUCKETS, FINEST, r)
        stages = " -> ".join(str(s.n_regions) for s in schedule)
        est = BucketEstimator.build(
            MinSkewPartitioner(N_BUCKETS, n_regions=FINEST,
                               refinements=r),
            data,
        )
        err = runner.evaluate(est, large).average_relative_error
        print(f"{r:>12d} {stages:>28s} {err:>8.3f}")

    print(
        "\n   -> starting coarse covers the whole space before the\n"
        "      fine stages drill into the skewed corners; the paper\n"
        "      found the best refinement count to vary from 2 to 6."
    )


if __name__ == "__main__":
    main()

"""Smoke test for the live-serving benchmark path.

Runs a tiny ``engine="live"`` benchmark end to end and checks the
promises CI gates on: the artifact is schema-valid, the interleaved
stream really exercised maintenance (epoch moved, refreshes happened),
and every technique's long-lived engine answered the final batch
bit-identically to a freshly built engine over the same buckets
(``live_matches`` — the epoch-consistency gate).  Also validates the
committed ``BENCH_live.json`` baseline when present.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs.bench import BenchConfig, write_bench
from repro.obs.schema import validate_bench

LIVE_SMOKE = BenchConfig(
    name="live_smoke",
    datasets=(("charminar", 1_000),),
    n_buckets=12,
    n_regions=144,
    n_queries=150,
    techniques=("Min-Skew", "Grid"),
    engine="live",
    live_ops=300,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def live_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench_live")
    doc, path = write_bench(LIVE_SMOKE, out_dir)
    return doc, path


def test_artifact_schema_valid(live_run):
    doc, path = live_run
    assert path.name == "BENCH_live_smoke.json"
    on_disk = json.loads(path.read_text())
    validate_bench(on_disk)
    assert on_disk["config"]["engine"] == "live"
    assert on_disk["config"]["live_ops"] == 300


def test_every_cell_exercised_maintenance(live_run):
    doc, _ = live_run
    (dataset,) = doc["datasets"]
    assert [t["technique"] for t in dataset["techniques"]] \
        == ["Min-Skew", "Grid"]
    for entry in dataset["techniques"]:
        live = entry["live"]
        assert live["ops"] == 300
        assert live["queries"] + live["inserts"] + live["deletes"] \
            == live["ops"]
        assert live["inserts"] > 0 and live["deletes"] > 0
        # every accepted mutation bumped the epoch; refreshes add more
        assert live["final_epoch"] >= \
            live["inserts"] + live["refreshes"]
        assert live["refreshes"] > 0
        assert live["final_n"] > 0
        # the engine detected staleness at least once per mutation run
        assert live["cache_flushes"] > 0
        assert live["estimator_rebuilds"] > 0
        assert live["index_rebuilds"] > 0


def test_epoch_consistency_gate(live_run):
    doc, _ = live_run
    for entry in doc["datasets"][0]["techniques"]:
        assert entry["live"]["live_matches"] is True, (
            f"{entry['technique']}: long-lived engine diverged from a "
            f"freshly built engine over the same buckets"
        )


def test_deterministic_rerun_is_identical(tmp_path):
    doc_a, _ = write_bench(
        LIVE_SMOKE, tmp_path / "a", deterministic=True
    )
    doc_b, _ = write_bench(
        LIVE_SMOKE, tmp_path / "b", deterministic=True
    )
    assert doc_a == doc_b


def test_committed_baseline_is_valid_when_present():
    baseline = REPO_ROOT / "BENCH_live.json"
    if not baseline.exists():
        pytest.skip("no committed live baseline")
    doc = json.loads(baseline.read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "live"
    for dataset in doc["datasets"]:
        for entry in dataset["techniques"]:
            assert entry["live"]["live_matches"] is True
            assert entry["live"]["refreshes"] > 0


def test_cli_serve_live(tmp_path, capsys):
    rc = cli_main(
        [
            "serve-live",
            "--name", "cli_live",
            "--out", str(tmp_path),
            "--dataset", "charminar:800",
            "--buckets", "10",
            "--regions", "100",
            "--queries", "80",
            "--ops", "200",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "refreshes=" in out
    assert "MISMATCH" not in out
    doc = json.loads((tmp_path / "BENCH_cli_live.json").read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "live"

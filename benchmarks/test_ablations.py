"""Ablations of design choices called out in DESIGN.md.

Not paper artifacts — these quantify the implementation decisions the
paper leaves implicit:

* **split policy** — the paper's marginal-distribution split search vs
  the exact 2-D SSE search (accuracy and construction cost);
* **query extension** — Section 3.1 argues estimates must extend the
  query by the average extents; the ablation turns the extension off;
* **counting oracle** — Fenwick inclusion–exclusion vs chunked brute
  force vs R-tree counting (ground-truth throughput);
* **grid build** — difference-array density sweep vs a naive per-rect
  loop.
"""

import time

import numpy as np
import pytest

from repro.core import Bucket, MinSkewPartitioner
from repro.counting import ExactCountOracle, brute_force_counts
from repro.estimators import BucketEstimator
from repro.grid import DensityGrid
from repro.rtree import str_bulk_load
from repro.workload import range_queries

from .conftest import banner, save_artifact


def test_ablation_split_policy(charminar_data, charminar_runner,
                               benchmark):
    """Marginal vs exact split search: accuracy and construction time."""
    queries = range_queries(charminar_data, 0.05, 800, seed=100)
    rows = []
    for policy in ("marginal", "exact"):
        start = time.perf_counter()
        est = BucketEstimator.build(
            MinSkewPartitioner(
                100, n_regions=10_000, split_policy=policy
            ),
            charminar_data,
        )
        build = time.perf_counter() - start
        err = charminar_runner.evaluate(
            est, queries
        ).average_relative_error
        rows.append((policy, err, build))

    lines = [banner("Ablation: Min-Skew split policy")]
    for policy, err, build in rows:
        lines.append(f"  {policy:8s} error={err:.4f} build={build:.2f}s")
    print(save_artifact("ablation_split_policy", "\n".join(lines)))

    (p0, err_marginal, _), (p1, err_exact, _) = rows
    # the two searches land in the same accuracy regime; neither may
    # collapse (the marginal heuristic is the paper's justified choice)
    assert err_marginal < 3 * err_exact + 0.05
    assert err_exact < 3 * err_marginal + 0.05

    benchmark.pedantic(
        lambda: MinSkewPartitioner(
            100, n_regions=10_000, split_policy="exact"
        ).partition(charminar_data),
        rounds=1, iterations=1,
    )


def test_ablation_query_extension(nj_road, nj_runner, benchmark):
    """Dropping the Section 3.1 query extension must hurt accuracy:
    'simply using the area of the query Q without extending it is
    inaccurate'."""
    est = BucketEstimator.build(
        MinSkewPartitioner(100, n_regions=10_000), nj_road
    )
    no_extension = BucketEstimator(
        [
            Bucket(b.bbox, b.count, avg_width=0.0, avg_height=0.0,
                   avg_density=b.avg_density)
            for b in est.buckets
        ],
        name="Min-Skew/no-extension",
    )
    queries = range_queries(nj_road, 0.02, 800, seed=101)
    with_ext = nj_runner.evaluate(est, queries).average_relative_error
    without = nj_runner.evaluate(
        no_extension, queries
    ).average_relative_error

    text = "\n".join([
        banner("Ablation: query extension by average extents"),
        f"  with extension:    {with_ext:.4f}",
        f"  without extension: {without:.4f}",
    ])
    print(save_artifact("ablation_query_extension", text))
    assert without > with_ext

    benchmark(est.estimate_many, queries)


def test_ablation_counting_oracles(nj_road, benchmark):
    """All three exact oracles agree bit-for-bit.

    Throughput crosses over with scale: the O(N·Q) vectorised brute
    force wins at small N·Q, while the O((N+Q)·log N) Fenwick oracle
    wins at paper scale (414 K rects × 10 K queries), which is why the
    harness uses it."""
    queries = range_queries(nj_road, 0.05, 400, seed=102)

    start = time.perf_counter()
    oracle = ExactCountOracle(nj_road)
    fenwick_counts = oracle.counts(queries)
    t_fenwick = time.perf_counter() - start

    start = time.perf_counter()
    brute = brute_force_counts(nj_road, queries)
    t_brute = time.perf_counter() - start

    start = time.perf_counter()
    tree = str_bulk_load(nj_road, 16)
    tree_counts = np.array([tree.count(q) for q in queries])
    t_tree = time.perf_counter() - start

    text = "\n".join([
        banner("Ablation: exact counting oracles "
               f"(N={len(nj_road)}, Q={len(queries)})"),
        f"  fenwick oracle: {t_fenwick:.2f}s",
        f"  brute force:    {t_brute:.2f}s",
        f"  R-tree count:   {t_tree:.2f}s (incl. bulk load)",
    ])
    print(save_artifact("ablation_counting_oracles", text))

    np.testing.assert_array_equal(fenwick_counts, brute)
    np.testing.assert_array_equal(tree_counts, brute)

    benchmark(oracle.counts, queries)


def test_ablation_grid_build(nj_road, benchmark):
    """Difference-array density sweep vs the naive per-rect loop."""
    bounds = nj_road.mbr()
    nx = ny = 64

    def naive():
        d = np.zeros((nx, ny))
        cw = bounds.width / nx
        chh = bounds.height / ny
        coords = nj_road.coords[:2_000]  # naive is too slow for all
        for x1, y1, x2, y2 in coords:
            ix0 = min(max(int((x1 - bounds.x1) / cw), 0), nx - 1)
            ix1 = min(max(int((x2 - bounds.x1) / cw), 0), nx - 1)
            iy0 = min(max(int((y1 - bounds.y1) / chh), 0), ny - 1)
            iy1 = min(max(int((y2 - bounds.y1) / chh), 0), ny - 1)
            d[ix0:ix1 + 1, iy0:iy1 + 1] += 1
        return d

    start = time.perf_counter()
    naive_grid = naive()
    t_naive_2k = time.perf_counter() - start

    start = time.perf_counter()
    fast = DensityGrid.from_rects(nj_road, nx, ny, bounds=bounds)
    t_fast_full = time.perf_counter() - start

    # correctness: the sweep agrees with the naive loop on the subset
    subset = nj_road.select(np.arange(2_000))
    sweep_subset = DensityGrid.from_rects(subset, nx, ny, bounds=bounds)
    np.testing.assert_allclose(sweep_subset.densities, naive_grid)

    text = "\n".join([
        banner("Ablation: density-grid construction"),
        f"  naive loop, 2K rects:        {t_naive_2k:.3f}s",
        f"  difference-array, {len(nj_road)} rects: {t_fast_full:.3f}s",
    ])
    print(save_artifact("ablation_grid_build", text))

    benchmark(DensityGrid.from_rects, nj_road, nx, ny, bounds=bounds)

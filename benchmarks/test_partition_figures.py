"""Figures 1–7: the paper's illustrative artifacts, regenerated as text.

Figure 1 (the Charminar dataset) and Figure 5 (its spatial densities)
are rendered as density heat-maps; Figures 2, 3, 4, and 7 (Equi-Area,
Equi-Count, R-Tree, and Min-Skew partitionings with 50 buckets) as
bucket-boundary overlays; Figure 6 (one Min-Skew iteration) as the first
entries of the construction trace.

Assertions check the visual claims the paper makes about these figures:
Equi-Area's buckets are near-uniform, Equi-Count and Min-Skew concentrate
buckets in the dense corners, and the R-tree layout differs drastically
from the equi-partitionings.
"""

import numpy as np
import pytest

from repro.core import MinSkewPartitioner
from repro.grid import DensityGrid
from repro.partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    RTreePartitioner,
)
from repro.viz import render_density, render_partition

from .conftest import banner, save_artifact

N_BUCKETS = 50  # as in the paper's figures


def corner_fraction(buckets, space, zone_frac=0.25):
    zone = zone_frac * space.width
    corner = 0
    occupied = [b for b in buckets if b.count > 0]
    for b in occupied:
        cx, cy = b.bbox.center
        if ((cx < space.x1 + zone or cx > space.x2 - zone)
                and (cy < space.y1 + zone or cy > space.y2 - zone)):
            corner += 1
    return corner / max(len(occupied), 1)


def test_fig1_and_fig5_density(charminar_data, benchmark):
    grid = DensityGrid.from_rects(charminar_data, 70, 32)
    text = (banner("Figure 1/5: Charminar dataset density")
            + "\n" + render_density(grid))
    print(save_artifact("fig1_fig5_charminar_density", text))

    fine = DensityGrid.from_rects(charminar_data, 50, 50)
    d = fine.densities
    corners = [d[0, 0], d[-1, 0], d[0, -1], d[-1, -1]]
    assert min(corners) > d.mean(), "corners must be high-density"
    assert max(corners) > 1.5 * min(corners), "corner levels must vary"

    benchmark(DensityGrid.from_rects, charminar_data, 50, 50)


def test_fig2_equi_area(charminar_data, benchmark):
    buckets = benchmark.pedantic(
        lambda: EquiAreaPartitioner(N_BUCKETS).partition(charminar_data),
        rounds=1, iterations=1,
    )
    text = (banner("Figure 2: Equi-Area partitioning (50 buckets)")
            + "\n" + render_partition(buckets, charminar_data.mbr()))
    print(save_artifact("fig2_equi_area", text))
    # "nearly identical buckets distributed more or less uniformly":
    # bucket areas vary far less than Min-Skew's
    areas = np.array([b.bbox.area for b in buckets if b.count > 0])
    assert areas.max() / areas.min() < 100


def test_fig3_equi_count(charminar_data, benchmark):
    buckets = benchmark.pedantic(
        lambda: EquiCountPartitioner(N_BUCKETS).partition(
            charminar_data),
        rounds=1, iterations=1,
    )
    text = (banner("Figure 3: Equi-Count partitioning (50 buckets)")
            + "\n" + render_partition(buckets, charminar_data.mbr()))
    print(save_artifact("fig3_equi_count", text))
    # "more buckets in the denser areas": corner boxes are tiny
    areas = sorted(b.bbox.area for b in buckets if b.count > 0)
    assert areas[0] < 0.01 * areas[-1]
    # recursive median halving: counts span at most one power-of-two
    # "generation" gap beyond perfect balance
    counts = np.array([b.count for b in buckets if b.count > 0])
    assert counts.max() <= 4 * counts.min()


def test_fig4_rtree(charminar_data, benchmark):
    buckets = benchmark.pedantic(
        lambda: RTreePartitioner(N_BUCKETS, method="insert").partition(
            charminar_data),
        rounds=1, iterations=1,
    )
    text = (banner("Figure 4: R-Tree partitioning")
            + "\n" + render_partition(buckets, charminar_data.mbr()))
    print(save_artifact("fig4_rtree", text))
    # "drastically different": R-tree boxes overlap (BSPs never do)
    boxes = [b.bbox for b in buckets if b.count > 0]
    overlaps = sum(
        1
        for i in range(len(boxes))
        for j in range(i + 1, len(boxes))
        if boxes[i].intersection_area(boxes[j]) > 0
    )
    assert overlaps > 0


def test_fig7_minskew(charminar_data, benchmark):
    buckets = benchmark.pedantic(
        lambda: MinSkewPartitioner(
            N_BUCKETS, n_regions=2_500
        ).partition(charminar_data),
        rounds=1, iterations=1,
    )
    text = (banner("Figure 7: Min-Skew partitioning (50 buckets)")
            + "\n" + render_partition(buckets, charminar_data.mbr()))
    print(save_artifact("fig7_minskew", text))
    space = charminar_data.mbr()
    assert corner_fraction(buckets, space) > 0.5


def test_fig6_minskew_trace(charminar_data, benchmark):
    result = benchmark.pedantic(
        lambda: MinSkewPartitioner(
            10, n_regions=400, trace=True
        ).partition_full(charminar_data),
        rounds=1, iterations=1,
    )
    lines = [banner("Figure 6: first Min-Skew iterations")]
    for i, record in enumerate(result.trace[:5]):
        axis = "x" if record.axis == 0 else "y"
        lines.append(
            f"  split {i + 1}: bucket {record.bucket_box.as_tuple()} "
            f"along {axis} at {record.position:.0f} "
            f"(skew reduction {record.skew_reduction:.1f})"
        )
    print(save_artifact("fig6_minskew_trace", "\n".join(lines)))
    reductions = [r.skew_reduction for r in result.trace]
    assert len(reductions) == 9
    # every greedy step removes skew (splitting can expose larger
    # reductions later, so the sequence need not be monotone)
    assert all(r >= 0.0 for r in reductions)
    assert reductions[0] > 0.0

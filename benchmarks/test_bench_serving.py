"""Smoke test for the batch- and sharded-serving benchmark paths.

Runs a tiny ``engine="batch"`` benchmark end to end and checks the
promises CI gates on: the artifact is schema-valid, every technique's
vectorised kernel is at least as fast as the scalar loop
(``speedup >= 1.0``), and the batch/engine answers match the scalar
loop bit for bit (``scalar_matches``).  A second tiny
``engine="sharded"`` run checks the scatter-gather tier: every cell's
router answer matches the single-engine union reference bit for bit
(``sharded_matches``) and the live mutation stream invalidates only
the owning shard (``owner_only_invalidation``).  Also validates the
committed ``BENCH_serving.json`` baseline (now sharded) when present.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.eval import ALL_TECHNIQUES, BUCKET_TECHNIQUES
from repro.obs.bench import BenchConfig, write_bench
from repro.obs.schema import validate_bench

SERVING_SMOKE = BenchConfig(
    name="serving_smoke",
    datasets=(("charminar", 1_500),),
    n_buckets=16,
    n_regions=256,
    n_queries=300,
    engine="batch",
)

SHARDED_SMOKE = BenchConfig(
    name="sharded_smoke",
    datasets=(("charminar", 1_500),),
    n_buckets=16,
    n_regions=256,
    n_queries=300,
    techniques=tuple(BUCKET_TECHNIQUES),
    engine="sharded",
    n_shards=3,
    live_ops=120,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def serving_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench_serving")
    doc, path = write_bench(SERVING_SMOKE, out_dir)
    return doc, path


@pytest.fixture(scope="module")
def sharded_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench_sharded")
    doc, path = write_bench(SHARDED_SMOKE, out_dir)
    return doc, path


def test_artifact_schema_valid(serving_run):
    doc, path = serving_run
    assert path.name == "BENCH_serving_smoke.json"
    on_disk = json.loads(path.read_text())
    validate_bench(on_disk)
    assert on_disk["config"]["engine"] == "batch"


def test_every_technique_has_serving_fields(serving_run):
    doc, _ = serving_run
    (dataset,) = doc["datasets"]
    assert [t["technique"] for t in dataset["techniques"]] \
        == list(ALL_TECHNIQUES)
    for entry in dataset["techniques"]:
        assert entry["scalar_seconds"] > 0
        assert entry["engine_seconds"] > 0
        assert entry["speedup"] > 0


def test_batch_kernel_not_slower_than_scalar(serving_run):
    # the CI perf gate: on 300 queries the vectorised kernel must
    # already beat the per-query Python loop for every technique
    doc, _ = serving_run
    for entry in doc["datasets"][0]["techniques"]:
        assert entry["speedup"] >= 1.0, (
            f"{entry['technique']}: batch kernel slower than the "
            f"scalar loop (speedup={entry['speedup']:.2f})"
        )


def test_batch_answers_match_scalar_exactly(serving_run):
    doc, _ = serving_run
    for entry in doc["datasets"][0]["techniques"]:
        assert entry["scalar_matches"] is True, (
            f"{entry['technique']}: batch or engine output diverged "
            f"from the scalar loop"
        )


def test_sharded_artifact_schema_valid(sharded_run):
    doc, path = sharded_run
    assert path.name == "BENCH_sharded_smoke.json"
    on_disk = json.loads(path.read_text())
    validate_bench(on_disk)
    assert on_disk["config"]["engine"] == "sharded"
    assert on_disk["config"]["n_shards"] == 3


def test_sharded_answers_match_union_exactly(sharded_run):
    # the CI differential gate: the router's scatter-gather answer
    # must equal the single-engine union reference bit for bit, both
    # on the initial batch and after replaying the mutation stream
    doc, _ = sharded_run
    for entry in doc["datasets"][0]["techniques"]:
        shard = entry["sharded"]
        assert shard["sharded_matches"] is True, (
            f"{entry['technique']}: sharded answer diverged from the "
            f"single-engine reference"
        )


def test_sharded_fanout_accounting_is_sane(sharded_run):
    doc, _ = sharded_run
    n_queries = SHARDED_SMOKE.n_queries
    for entry in doc["datasets"][0]["techniques"]:
        shard = entry["sharded"]
        assert shard["n_shards"] == 3
        assert len(shard["shard_sizes"]) == 3
        # sizes are sampled after the live replay, so the total is
        # the seed size shifted by the stream's net insert/delete mix
        assert abs(sum(shard["shard_sizes"]) - 1_500) \
            <= shard["mutations"]
        assert len(shard["shard_buckets"]) == 3
        # every query reaches at least one shard, never more than K
        assert n_queries <= shard["subqueries"] <= n_queries * 3
        assert shard["avg_shards_per_query"] == pytest.approx(
            shard["subqueries"] / n_queries
        )
        assert 0.0 < shard["fanout_rate"] <= 1.0


def test_sharded_mutations_stay_owner_only(sharded_run):
    doc, _ = sharded_run
    for entry in doc["datasets"][0]["techniques"]:
        shard = entry["sharded"]
        assert shard["ops"] == SHARDED_SMOKE.live_ops
        assert shard["mutations"] > 0
        assert shard["routed_mutations"] == shard["mutations"]
        assert shard["owner_only_invalidation"] is True, (
            f"{entry['technique']}: a mutation invalidated a shard "
            f"that does not own it"
        )
        assert len(shard["shard_epoch_bumps"]) == 3


def test_sharded_recovery_contract(sharded_run):
    # the fault-tolerance gate: the worker-kill chaos cell must show
    # every request batch surviving SIGKILLed workers and the
    # recovered tier answering bit-identically to the union reference
    doc, _ = sharded_run
    for entry in doc["datasets"][0]["techniques"]:
        recovery = entry["sharded"]["recovery"]
        assert recovery["requests"] > 0
        assert recovery["survived"] == recovery["requests"], (
            f"{entry['technique']}: a request batch was lost to a "
            f"worker kill"
        )
        assert recovery["recovered_matches"] is True, (
            f"{entry['technique']}: post-recovery answers or shard "
            f"state diverged from the reference"
        )
        # the seeded plan actually kills: a chaos cell that never
        # injects proves nothing
        assert recovery["kills"] > 0
        assert recovery["respawns"] >= recovery["kills"]


def test_committed_baseline_is_valid_when_present():
    baseline = REPO_ROOT / "BENCH_serving.json"
    if not baseline.exists():
        pytest.skip("no committed serving baseline")
    doc = json.loads(baseline.read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "sharded"
    assert doc["config"]["techniques"] == list(BUCKET_TECHNIQUES)
    for dataset in doc["datasets"]:
        for entry in dataset["techniques"]:
            shard = entry["sharded"]
            assert shard["sharded_matches"] is True
            assert shard["owner_only_invalidation"] is True
            recovery = shard.get("recovery")
            if recovery is not None:
                assert recovery["survived"] == recovery["requests"]
                assert recovery["recovered_matches"] is True


def test_cli_serving_preset(tmp_path, capsys):
    rc = cli_main(
        [
            "bench",
            "--quick",
            "--engine", "batch",
            "--name", "cli_serving",
            "--out", str(tmp_path),
            "--datasets", "charminar:800",
            "--buckets", "12",
            "--regions", "144",
            "--queries", "100",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup=" in out
    doc = json.loads((tmp_path / "BENCH_cli_serving.json").read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "batch"


def test_cli_sharded_engine(tmp_path, capsys):
    rc = cli_main(
        [
            "bench",
            "--quick",
            "--engine", "sharded",
            "--name", "cli_sharded",
            "--out", str(tmp_path),
            "--datasets", "charminar:800",
            "--buckets", "12",
            "--regions", "144",
            "--queries", "100",
            "--shards", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "shards=2" in out
    assert "SHARD-MISMATCH" not in out
    doc = json.loads((tmp_path / "BENCH_cli_sharded.json").read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "sharded"
    # the CLI drops non-bucket techniques for the sharded engine
    assert doc["config"]["techniques"] == list(BUCKET_TECHNIQUES)


def test_cli_serve_live_sharded(tmp_path, capsys):
    rc = cli_main(
        [
            "serve-live",
            "--name", "cli_slive",
            "--out", str(tmp_path),
            "--dataset", "charminar:800",
            "--buckets", "12",
            "--regions", "144",
            "--queries", "100",
            "--ops", "60",
            "--sharded", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "epoch-bumps=[" in out
    assert "SHARD-MISMATCH" not in out
    assert "CROSS-SHARD-INVALIDATION" not in out
    doc = json.loads((tmp_path / "BENCH_cli_slive.json").read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "sharded"

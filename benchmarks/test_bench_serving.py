"""Smoke test for the batch-serving benchmark path.

Runs a tiny ``engine="batch"`` benchmark end to end and checks the
promises CI gates on: the artifact is schema-valid, every technique's
vectorised kernel is at least as fast as the scalar loop
(``speedup >= 1.0``), and the batch/engine answers match the scalar
loop bit for bit (``scalar_matches``).  Also validates the committed
``BENCH_serving.json`` baseline when present.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.eval import ALL_TECHNIQUES
from repro.obs.bench import BenchConfig, write_bench
from repro.obs.schema import validate_bench

SERVING_SMOKE = BenchConfig(
    name="serving_smoke",
    datasets=(("charminar", 1_500),),
    n_buckets=16,
    n_regions=256,
    n_queries=300,
    engine="batch",
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def serving_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench_serving")
    doc, path = write_bench(SERVING_SMOKE, out_dir)
    return doc, path


def test_artifact_schema_valid(serving_run):
    doc, path = serving_run
    assert path.name == "BENCH_serving_smoke.json"
    on_disk = json.loads(path.read_text())
    validate_bench(on_disk)
    assert on_disk["config"]["engine"] == "batch"


def test_every_technique_has_serving_fields(serving_run):
    doc, _ = serving_run
    (dataset,) = doc["datasets"]
    assert [t["technique"] for t in dataset["techniques"]] \
        == list(ALL_TECHNIQUES)
    for entry in dataset["techniques"]:
        assert entry["scalar_seconds"] > 0
        assert entry["engine_seconds"] > 0
        assert entry["speedup"] > 0


def test_batch_kernel_not_slower_than_scalar(serving_run):
    # the CI perf gate: on 300 queries the vectorised kernel must
    # already beat the per-query Python loop for every technique
    doc, _ = serving_run
    for entry in doc["datasets"][0]["techniques"]:
        assert entry["speedup"] >= 1.0, (
            f"{entry['technique']}: batch kernel slower than the "
            f"scalar loop (speedup={entry['speedup']:.2f})"
        )


def test_batch_answers_match_scalar_exactly(serving_run):
    doc, _ = serving_run
    for entry in doc["datasets"][0]["techniques"]:
        assert entry["scalar_matches"] is True, (
            f"{entry['technique']}: batch or engine output diverged "
            f"from the scalar loop"
        )


def test_committed_baseline_is_valid_when_present():
    baseline = REPO_ROOT / "BENCH_serving.json"
    if not baseline.exists():
        pytest.skip("no committed serving baseline")
    doc = json.loads(baseline.read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "batch"
    for dataset in doc["datasets"]:
        for entry in dataset["techniques"]:
            assert entry["speedup"] >= 1.0
            assert entry["scalar_matches"] is True


def test_cli_serving_preset(tmp_path, capsys):
    rc = cli_main(
        [
            "bench",
            "--quick",
            "--engine", "batch",
            "--name", "cli_serving",
            "--out", str(tmp_path),
            "--datasets", "charminar:800",
            "--buckets", "12",
            "--regions", "144",
            "--queries", "100",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup=" in out
    doc = json.loads((tmp_path / "BENCH_cli_serving.json").read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "batch"

"""Figure 11: impact of progressive refinement (Charminar, QSize 25 %,
30 000 regions).

Paper findings reproduced and asserted:

* refinements "help considerably" — the error drops by a large fraction
  relative to un-refined Min-Skew on the same fine grid (the paper
  quotes > 55 %);
* they "do not cause the error to drop to the absolute minimal level
  achievable by picking the correct region size, though they come
  close" (the figure's horizontal reference line);
* "the best number of refinements varies from 2 to 6".
"""

import pytest

from repro.eval import experiments, report

from .conftest import N_QUERIES, banner, save_artifact

REFINEMENTS = (0, 1, 2, 3, 4, 5, 6)


@pytest.fixture(scope="module")
def records(charminar_data):
    return experiments.progressive_refinement(
        charminar_data,
        refinement_counts=REFINEMENTS,
        n_regions=30_000,
        qsize=0.25,
        n_buckets=50,
        n_queries=N_QUERIES,
        baseline_regions=(100, 400, 1_600),
    )


def test_fig11_refinement(records, benchmark, charminar_data):
    text = (
        banner("Figure 11: error vs #refinements (Charminar, "
               "QSize=25%, 30000 regions, 50 buckets)")
        + "\n" + report.format_table(
            records, ["refinements", "error", "baseline_error",
                      "build_seconds"],
        )
    )
    print(save_artifact("fig11_progressive_refinement", text))

    errors = {r["refinements"]: r["error"] for r in records}
    baseline = records[0]["baseline_error"]  # best fixed-region error

    plain = errors[0]
    best = min(errors[r] for r in REFINEMENTS if r > 0)

    # refinements help considerably on the over-fine grid
    assert best < 0.8 * plain, errors
    # but never beat the optimal fixed region count
    assert best >= baseline, (best, baseline)
    # and come reasonably close to it
    assert best < 6 * baseline, (best, baseline)

    # benchmark unit: a refined construction (2 refinements)
    from repro.core import MinSkewPartitioner

    benchmark.pedantic(
        lambda: MinSkewPartitioner(
            50, n_regions=30_000, refinements=2
        ).partition(charminar_data),
        rounds=1, iterations=1,
    )

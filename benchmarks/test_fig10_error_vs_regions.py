"""Figure 10: Min-Skew's sensitivity to the number of grid regions.

Panel (a), NJ Road: "increasing the number of regions decreases errors up
to a point beyond which they flatten out" — real-life data is non-uniform
but not extremely skewed.

Panel (b), Charminar: "the error for Min-Skew for the large queries
actually gets worse with more regions!" — fine regions over the skewed
corners soak up the bucket budget and starve the interior that large
queries span.  This is the anomaly progressive refinement (Figure 11)
repairs.
"""

import pytest

from repro.eval import experiments, report

from .conftest import N_QUERIES, banner, save_artifact

REGION_COUNTS = (100, 400, 1_600, 6_400, 10_000, 30_000)


@pytest.fixture(scope="module")
def nj_records(nj_road):
    return experiments.error_vs_regions(
        nj_road,
        region_counts=REGION_COUNTS,
        qsizes=(0.05, 0.25),
        n_buckets=100,
        n_queries=N_QUERIES,
    )


@pytest.fixture(scope="module")
def ch_records(charminar_data):
    return experiments.error_vs_regions(
        charminar_data,
        region_counts=REGION_COUNTS,
        qsizes=(0.05, 0.25),
        n_buckets=50,
        n_queries=N_QUERIES,
    )


def test_fig10a_nj_road(nj_records, benchmark, nj_road):
    text = (
        banner("Figure 10(a): Min-Skew error vs #regions (NJ Road, "
               "100 buckets)")
        + "\n" + report.format_series(nj_records, series_key="qsize",
                                      x_key="n_regions")
    )
    print(save_artifact("fig10a_error_vs_regions", text))
    pivot = report.pivot_series(nj_records, series_key="qsize",
                                x_key="n_regions")

    for qsize in (0.05, 0.25):
        series = pivot[qsize]
        # errors fall from the coarsest grid ...
        assert series[10_000] < series[100], (qsize, series)
        # ... and flatten: no blow-up at the finest grid
        assert series[30_000] < 2.0 * series[10_000], (qsize, series)

    from repro.core import MinSkewPartitioner

    benchmark.pedantic(
        lambda: MinSkewPartitioner(100, n_regions=10_000)
        .partition(nj_road),
        rounds=1, iterations=1,
    )


def test_fig10b_charminar(ch_records, benchmark, charminar_data):
    text = (
        banner("Figure 10(b): Min-Skew error vs #regions (Charminar, "
               "50 buckets)")
        + "\n" + report.format_series(ch_records, series_key="qsize",
                                      x_key="n_regions")
    )
    print(save_artifact("fig10b_error_vs_regions", text))
    pivot = report.pivot_series(ch_records, series_key="qsize",
                                x_key="n_regions")

    # small queries keep improving with finer grids
    small = pivot[0.05]
    assert small[6_400] < small[100]

    # THE ANOMALY: large-query error rises substantially with very
    # fine grids
    large = pivot[0.25]
    optimum = min(large.values())
    assert large[30_000] > 2.0 * optimum, large

    from repro.core import MinSkewPartitioner

    benchmark.pedantic(
        lambda: MinSkewPartitioner(50, n_regions=30_000)
        .partition(charminar_data),
        rounds=1, iterations=1,
    )

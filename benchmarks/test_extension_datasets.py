"""Extension: point and linear data (paper Section 1: "our techniques
are applicable to point and linear data as well").

Runs the headline comparison on three additional inputs:

* **sequoia** — point-like landmark MBRs (the paper's second real-life
  dataset family);
* **nj_road at line granularity** — the road segments are degenerate/
  thin rectangles, i.e. linear data (already the main dataset; included
  here at a different seed as the linear-data row);
* **diagonal** — rectangles along the main diagonal, the adversarial
  case for axis-aligned BSPs.

Asserted: Min-Skew remains the most accurate bucket technique on point
and linear data; on the adversarial diagonal its lead may shrink but it
must not lose to the skew-oblivious baselines.
"""

import pytest

from repro.data import make_dataset
from repro.eval import ExperimentRunner, build_estimator
from repro.workload import range_queries

from .conftest import banner, save_artifact

TECHNIQUES = ("Min-Skew", "Equi-Area", "Equi-Count", "Grid", "Sample")
DATASETS = ("sequoia", "nj_road", "diagonal")
N = 30_000
QSIZE = 0.05


@pytest.fixture(scope="module")
def results():
    table = {}
    for name in DATASETS:
        data = make_dataset(name, N, seed=123)
        runner = ExperimentRunner(data)
        queries = range_queries(data, QSIZE, 1_000, seed=5)
        for technique in TECHNIQUES:
            est = build_estimator(
                technique, data, 50, n_regions=2_500,
                rtree_method="str", seed=5,
            )
            table[(name, technique)] = runner.evaluate(
                est, queries
            ).average_relative_error
    return table


def test_point_and_linear_data(results, benchmark):
    lines = [banner(
        f"Extension: point/linear/adversarial data "
        f"(QSize={QSIZE:.0%}, 50 buckets, n={N})"
    )]
    header = f"{'dataset':10s} " + " ".join(
        f"{t:>10s}" for t in TECHNIQUES
    )
    lines.append(header)
    for name in DATASETS:
        lines.append(
            f"{name:10s} "
            + " ".join(
                f"{results[(name, t)]:>10.3f}" for t in TECHNIQUES
            )
        )
    print(save_artifact("extension_datasets", "\n".join(lines)))

    # Min-Skew wins on point (sequoia) and linear (nj_road) data
    for name in ("sequoia", "nj_road"):
        assert results[(name, "Min-Skew")] == min(
            results[(name, t)] for t in TECHNIQUES
        ), name
    # and never loses to the skew-oblivious box techniques, even on
    # the adversarial diagonal
    assert results[("diagonal", "Min-Skew")] <= min(
        results[("diagonal", t)] for t in ("Equi-Area", "Grid")
    )

    data = make_dataset("sequoia", N, seed=123)
    benchmark.pedantic(
        lambda: build_estimator("Min-Skew", data, 50, n_regions=2_500),
        rounds=1, iterations=1,
    )

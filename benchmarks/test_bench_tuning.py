"""Smoke test for the query-feedback self-tuning benchmark path.

Runs a tiny ``engine="tuned"`` benchmark end to end and checks the
promises CI gates on: the artifact is schema-valid, the drifting
stream really drove tuning passes, the tuned histogram stayed at the
static control's bucket budget with its counts exactly conserved, and
the long-lived tuned engine answered the evaluation batch
bit-identically to a freshly built engine over the tuned buckets
(``tuned_matches`` — the epoch-consistency gate).  Also validates the
committed ``BENCH_tuning.json`` baseline when present, including the
headline differential: tuned ARE strictly below static ARE at equal
bucket budget.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs.bench import BenchConfig, write_bench
from repro.obs.schema import validate_bench

TUNED_SMOKE = BenchConfig(
    name="tuned_smoke",
    datasets=(("charminar", 1_000),),
    n_buckets=12,
    n_regions=144,
    n_queries=150,
    techniques=("Min-Skew",),
    engine="tuned",
    live_ops=1_200,
    live_drift_xy=(0.08, 0.06),
    tune_every=200,
    tune_max_ops=4,
    live_query_frac=0.5,
    live_insert_frac=0.35,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def tuned_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench_tuned")
    doc, path = write_bench(TUNED_SMOKE, out_dir)
    return doc, path


def test_artifact_schema_valid(tuned_run):
    doc, path = tuned_run
    assert path.name == "BENCH_tuned_smoke.json"
    on_disk = json.loads(path.read_text())
    validate_bench(on_disk)
    assert on_disk["config"]["engine"] == "tuned"
    assert on_disk["config"]["tune_every"] == 200


def test_stream_drove_feedback_tuning(tuned_run):
    doc, _ = tuned_run
    (dataset,) = doc["datasets"]
    (entry,) = dataset["techniques"]
    tuned = entry["tuned"]
    assert tuned["ops"] == 1_200
    assert tuned["queries"] + tuned["inserts"] + tuned["deletes"] \
        == tuned["ops"]
    assert tuned["inserts"] > 0 and tuned["deletes"] > 0
    assert tuned["tuning_passes"] > 0
    assert tuned["feedback_observed"] > 0
    assert tuned["feedback_scored"] > 0
    # a pass is one atomic mutation: the epoch covers every insert,
    # delete, and tuning publish
    assert tuned["final_epoch"] >= \
        tuned["inserts"] + tuned["tuning_passes"]
    assert tuned["final_n"] > 0


def test_quota_and_conservation(tuned_run):
    doc, _ = tuned_run
    (entry,) = doc["datasets"][0]["techniques"]
    tuned = entry["tuned"]
    # every split is paid for by a merge: equal budget with the
    # never-restructured control
    assert tuned["n_buckets_tuned"] == tuned["n_buckets_static"]
    assert tuned["count_conserved"] is True


def test_epoch_consistency_gate(tuned_run):
    doc, _ = tuned_run
    (entry,) = doc["datasets"][0]["techniques"]
    assert entry["tuned"]["tuned_matches"] is True, (
        "long-lived tuned engine diverged from a freshly built "
        "engine over the tuned buckets"
    )


def test_deterministic_rerun_is_identical(tmp_path):
    doc_a, _ = write_bench(
        TUNED_SMOKE, tmp_path / "a", deterministic=True
    )
    doc_b, _ = write_bench(
        TUNED_SMOKE, tmp_path / "b", deterministic=True
    )
    assert doc_a == doc_b


def test_committed_baseline_is_valid_when_present():
    baseline = REPO_ROOT / "BENCH_tuning.json"
    if not baseline.exists():
        pytest.skip("no committed tuning baseline")
    doc = json.loads(baseline.read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "tuned"
    for dataset in doc["datasets"]:
        for entry in dataset["techniques"]:
            tuned = entry["tuned"]
            assert tuned["tuned_matches"] is True
            assert tuned["count_conserved"] is True
            assert tuned["tuning_passes"] > 0
            assert tuned["n_buckets_tuned"] == \
                tuned["n_buckets_static"]
            # the headline differential CI quotes: feedback tuning
            # must beat the static layout at equal bucket budget
            assert tuned["are_tuned"] < tuned["are_static"]
            assert tuned["improvement"] > 0


def test_cli_tune_feedback(tmp_path, capsys):
    rc = cli_main(
        [
            "tune",
            "--feedback",
            "--name", "cli_tuned",
            "--out", str(tmp_path),
            "--dataset", "charminar",
            "--n", "1000",
            "--buckets", "12",
            "--regions", "144",
            "--queries", "150",
            "--ops", "1200",
            "--tune-every", "200",
            "--drift-x", "0.08",
            "--drift-y", "0.06",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "passes=" in out
    assert "MISMATCH" not in out
    doc = json.loads((tmp_path / "BENCH_cli_tuned.json").read_text())
    validate_bench(doc)
    assert doc["config"]["engine"] == "tuned"


def test_cli_serve_live_tune(tmp_path, capsys):
    rc = cli_main(
        [
            "serve-live",
            "--tune",
            "--name", "cli_live_tuned",
            "--out", str(tmp_path),
            "--dataset", "charminar:1000",
            "--buckets", "12",
            "--regions", "144",
            "--queries", "150",
            "--ops", "1200",
            "--tune-every", "200",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "passes=" in out
    assert "MISMATCH" not in out
    doc = json.loads(
        (tmp_path / "BENCH_cli_live_tuned.json").read_text()
    )
    validate_bench(doc)
    assert doc["config"]["engine"] == "tuned"

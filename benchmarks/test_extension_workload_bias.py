"""Extension: sensitivity to the workload's query-center model.

The paper's workload draws query centers from the *data* (Section 5.2),
which makes queries probe where rectangles actually live.  This
benchmark re-runs the headline comparison with *uniform* query centers
to show (a) how much of each technique's measured error depends on the
workload bias and (b) that Min-Skew's win is robust to it.

Empty-result queries are dropped from the uniform workload (the paper's
metric is undefined on them), which itself is reported — on skewed data
a large share of uniform queries hit nothing.
"""

import numpy as np
import pytest

from repro.eval import build_estimator, error_summary
from repro.geometry import RectSet
from repro.workload import range_queries

from .conftest import banner, save_artifact

TECHNIQUES = ("Min-Skew", "Equi-Area", "Sample")


def test_center_model_sensitivity(charminar_data, charminar_runner,
                                  benchmark):
    results = {}
    empty_rates = {}
    for mode in ("data", "uniform"):
        queries = range_queries(
            charminar_data, 0.05, 1_500, seed=110, center_mode=mode
        )
        truth = charminar_runner.true_counts(queries)
        keep = truth > 0
        empty_rates[mode] = 1.0 - keep.mean()
        kept_queries = RectSet(queries.coords[keep], copy=False,
                               validate=False)
        kept_truth = truth[keep]
        for technique in TECHNIQUES:
            est = build_estimator(
                technique, charminar_data, 50, n_regions=2_500, seed=7
            )
            summary = error_summary(
                kept_truth, est.estimate_many(kept_queries)
            )
            results[(technique, mode)] = \
                summary.average_relative_error

    lines = [banner("Extension: workload bias (QSize=5%, Charminar, "
                    "50 buckets)")]
    lines.append(
        f"{'technique':12s} {'data-centered':>14s} "
        f"{'uniform-centered':>17s}"
    )
    for technique in TECHNIQUES:
        lines.append(
            f"{technique:12s} {results[(technique, 'data')]:>14.3f} "
            f"{results[(technique, 'uniform')]:>17.3f}"
        )
    lines.append(
        f"empty-result rate: data={empty_rates['data']:.1%} "
        f"uniform={empty_rates['uniform']:.1%}"
    )
    print(save_artifact("extension_workload_bias", "\n".join(lines)))

    # uniform centers produce far more empty results on skewed data
    assert empty_rates["uniform"] > empty_rates["data"]
    # Min-Skew stays the most accurate under either model
    for mode in ("data", "uniform"):
        assert results[("Min-Skew", mode)] == min(
            results[(t, mode)] for t in TECHNIQUES
        )

    queries = range_queries(charminar_data, 0.05, 1_500, seed=111,
                            center_mode="uniform")
    benchmark(charminar_runner.true_counts, queries)

"""Figure 9: average relative error vs bucket count (NJ Road; QSize 5 %
and 25 % panels).

Paper findings reproduced and asserted:

* more buckets reduce error for every technique;
* Min-Skew leads over the whole range and is "especially noteworthy"
  with few buckets (50–100), the regime query optimizers live in;
* differences shrink as bucket budgets grow.
"""

import pytest

from repro.eval import experiments, report

from .conftest import N_QUERIES, banner, save_artifact

BUCKET_COUNTS = (50, 100, 200, 400, 750)
TECHNIQUES = ("Min-Skew", "Equi-Count", "Equi-Area", "R-Tree", "Sample")


@pytest.fixture(scope="module")
def records(nj_road):
    return experiments.error_vs_buckets(
        nj_road,
        techniques=TECHNIQUES,
        bucket_counts=BUCKET_COUNTS,
        qsizes=(0.05, 0.25),
        n_queries=N_QUERIES,
        n_regions=10_000,
        rtree_method="str",
    )


def test_fig9_series(records, benchmark, nj_road):
    artifact = []
    for qsize in (0.05, 0.25):
        subset = [r for r in records if r["qsize"] == qsize]
        artifact.append(
            banner(f"Figure 9: error vs #buckets "
                   f"(NJ Road, QSize={qsize:.0%})")
            + "\n" + report.format_series(subset, x_key="n_buckets")
        )
        print(artifact[-1])

        pivot = report.pivot_series(subset, x_key="n_buckets")

        # Min-Skew leads at the small-budget end (50 and 100 buckets)
        for beta in (50, 100):
            best_other = min(
                pivot[t][beta] for t in TECHNIQUES if t != "Min-Skew"
            )
            assert pivot["Min-Skew"][beta] <= best_other, (qsize, beta)

        # more space helps every bucket technique end-to-end
        for technique in ("Min-Skew", "Equi-Area", "Equi-Count"):
            series = pivot[technique]
            assert series[750] < series[50], (technique, series)

        # the field tightens with more buckets: the lead of Min-Skew
        # over the best baseline shrinks from beta=50 to beta=750
        def gap(beta):
            best_other = min(
                pivot[t][beta] for t in TECHNIQUES if t != "Min-Skew"
            )
            return best_other - pivot["Min-Skew"][beta]

        assert gap(750) < gap(50) + 0.05

    save_artifact("fig9_error_vs_buckets", "\n".join(artifact))

    # benchmark unit: Min-Skew construction at the largest budget
    from repro.core import MinSkewPartitioner

    benchmark.pedantic(
        lambda: MinSkewPartitioner(750, n_regions=10_000)
        .partition(nj_road),
        rounds=1, iterations=1,
    )

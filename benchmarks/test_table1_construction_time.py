"""Table 1: construction time of the partitionings.

The paper's table (Sparc ULTRA-30, seconds):

    Technique   | 50K b=100 | 50K b=750 | 400K b=100 | 400K b=750
    Min-Skew    |   5.2     |  15.9     |   20.8     |   33.1
    Equi-Area   |   9.1     |  15.2     |  140.9     |  180.5
    Equi-Count  |   8.1     |  11.3     |  140.8     |  190.3
    R-Tree      |   3.9     |   6.0     |   57.7     |  891.7
    Uniform     |   0.5     |   0.6     |    0.9     |    0.9

Absolute numbers cannot transfer across machines and languages; the
*claims* asserted here are the table's shape:

* the bucket count has only a minor effect on Min-Skew and Uniform;
* every technique except Min-Skew and Uniform grows steeply with the
  input size (Min-Skew's data-dependent pass is a single grid sweep);
* Uniform is essentially free.
"""

import pytest

from repro.data import nj_road_like
from repro.eval import experiments, report

from .conftest import TABLE1_LARGE, TABLE1_SMALL, banner, save_artifact

TECHNIQUES = ("Min-Skew", "Equi-Area", "Equi-Count", "R-Tree", "Uniform")


@pytest.fixture(scope="module")
def datasets():
    return {
        f"{TABLE1_SMALL // 1000}K": nj_road_like(TABLE1_SMALL, seed=70),
        f"{TABLE1_LARGE // 1000}K": nj_road_like(TABLE1_LARGE, seed=71),
    }


@pytest.fixture(scope="module")
def records(datasets):
    return experiments.construction_times(
        datasets,
        techniques=TECHNIQUES,
        bucket_counts=(100, 750),
        n_regions=10_000,
        rtree_method="insert",
    )


def test_table1(records, benchmark, datasets):
    text = (
        banner("Table 1: construction time (seconds)")
        + "\n" + report.format_table(
            records,
            ["technique", "dataset", "input_size", "n_buckets",
             "build_seconds"],
        )
    )
    print(save_artifact("table1_construction_time", text))

    def seconds(technique, label, beta):
        for r in records:
            if (r["technique"] == technique and r["dataset"] == label
                    and r["n_buckets"] == beta):
                return r["build_seconds"]
        raise KeyError((technique, label, beta))

    small, large = datasets.keys()
    growth = (
        lambda t, beta: seconds(t, large, beta)
        / max(seconds(t, small, beta), 1e-9)
    )

    # the data-size growth of the in-memory techniques exceeds
    # Min-Skew's (whose data-dependent work is one linear sweep)
    for technique in ("Equi-Area", "Equi-Count", "R-Tree"):
        assert growth(technique, 100) > growth("Min-Skew", 100) * 0.8, \
            technique

    # Uniform is essentially free and flat
    assert seconds("Uniform", large, 750) < 1.0

    # bucket count has only a minor effect on Min-Skew construction
    ratio = seconds("Min-Skew", large, 750) / seconds("Min-Skew",
                                                      large, 100)
    assert ratio < 8.0

    # benchmark unit: the Min-Skew grid sweep + greedy on the large set
    from repro.core import MinSkewPartitioner

    data = datasets[large]
    benchmark.pedantic(
        lambda: MinSkewPartitioner(100, n_regions=10_000).partition(data),
        rounds=1, iterations=1,
    )

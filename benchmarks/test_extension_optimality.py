"""Extension: how close is greedy Min-Skew to the optimal BSP?

The paper justifies the greedy heuristic by the cost of optimal
constructions (NP-hardness in general; O(N^2.5) dynamic programming for
BSPs).  With the DP implemented at small scale (`repro.core.OptimalBSP`)
we can measure the gap directly: on downsampled grids of the paper's two
datasets, greedy Min-Skew's spatial skew stays within a small factor of
the DP optimum while constructing orders of magnitude faster.
"""

import time

import pytest

from repro.core import MinSkewPartitioner, OptimalBSP, \
    grouping_skew_on_grid

from .conftest import banner, save_artifact

GRID_SIDE = 12
BUCKETS = (4, 8, 12)


@pytest.mark.parametrize("dataset_fixture", ["nj_road", "charminar_data"])
def test_greedy_vs_optimal(dataset_fixture, request, benchmark):
    data = request.getfixturevalue(dataset_fixture)

    lines = [banner(
        f"Extension: greedy Min-Skew vs optimal BSP "
        f"({dataset_fixture}, {GRID_SIDE}x{GRID_SIDE} grid)"
    )]
    lines.append(
        f"{'buckets':>8s} {'greedy skew':>14s} {'optimal skew':>14s} "
        f"{'ratio':>7s} {'greedy s':>9s} {'dp s':>7s}"
    )

    worst_ratio = 1.0
    for beta in BUCKETS:
        start = time.perf_counter()
        result = MinSkewPartitioner(
            beta,
            n_regions=GRID_SIDE * GRID_SIDE,
            split_policy="exact",
        ).partition_full(data)
        greedy_seconds = time.perf_counter() - start
        greedy = grouping_skew_on_grid(result.grid, result.blocks)

        start = time.perf_counter()
        dp = OptimalBSP(result.grid, max_buckets=max(BUCKETS))
        optimal = dp.optimal_skew(beta)
        dp_seconds = time.perf_counter() - start

        ratio = greedy / optimal if optimal > 0 else 1.0
        worst_ratio = max(worst_ratio, ratio)
        lines.append(
            f"{beta:>8d} {greedy:>14.1f} {optimal:>14.1f} "
            f"{ratio:>7.3f} {greedy_seconds:>9.3f} {dp_seconds:>7.3f}"
        )

        assert greedy >= optimal - 1e-6  # DP is a true lower bound

    print(save_artifact(
        f"extension_optimality_{dataset_fixture}", "\n".join(lines)
    ))

    # the greedy heuristic stays within a small constant of optimal
    assert worst_ratio < 2.5, worst_ratio

    benchmark.pedantic(
        lambda: MinSkewPartitioner(
            8, n_regions=GRID_SIDE * GRID_SIDE, split_policy="exact"
        ).partition(data),
        rounds=1, iterations=1,
    )

"""Extension: measured I/O cost of the constructions (Section 3.5).

The paper's cost argument, as measured page/node accesses instead of
asymptotics:

* Min-Skew's data-dependent work is a **constant number of sequential
  sweeps** (1 density sweep + 1 assignment sweep; +1 per refinement),
  independent of the bucket budget;
* the memory-constrained equi-partitionings pay **one sweep per
  split** — I/O grows linearly with the bucket budget;
* the R-tree's repeated insertion costs **O(log N) node accesses per
  record**, i.e. O(N log_B N) total, the most expensive of all.

All measured on the same paged table; the benchmark prints the cost
table and asserts the orderings.
"""

import numpy as np
import pytest

from repro.rtree import RStarTree
from repro.storage import (
    PageFile,
    external_min_skew,
    external_reservoir_sample,
    multipass_equi_area,
)

from .conftest import banner, save_artifact

N_BUCKETS = 40


@pytest.fixture(scope="module")
def pagefile(nj_road):
    return PageFile.from_rectset(nj_road, capacity=128)


def test_io_cost_table(pagefile, nj_road, benchmark):
    bounds = nj_road.mbr()
    rows = []

    pagefile.reset_counters()
    external_min_skew(pagefile, N_BUCKETS, n_regions=2_500,
                      bounds=bounds)
    minskew_reads = pagefile.reads
    rows.append(("Min-Skew (external)", minskew_reads))

    pagefile.reset_counters()
    external_min_skew(pagefile, N_BUCKETS, n_regions=2_500,
                      refinements=2, bounds=bounds)
    minskew_ref_reads = pagefile.reads
    rows.append(("Min-Skew +2 refinements", minskew_ref_reads))

    pagefile.reset_counters()
    external_reservoir_sample(pagefile, 4 * N_BUCKETS,
                              np.random.default_rng(0))
    sample_reads = pagefile.reads
    rows.append(("Sample (reservoir)", sample_reads))

    pagefile.reset_counters()
    multipass_equi_area(pagefile, N_BUCKETS)
    equi_reads = pagefile.reads
    rows.append(("Equi-Area (multipass)", equi_reads))

    # R-tree: node accesses, charged as page reads (one node per page)
    subset = 10_000  # repeated insertion over the full set is O(minutes)
    tree = RStarTree(16)
    for i in range(subset):
        tree.insert(nj_road[i], i)
    per_insert = tree.node_reads / subset
    rtree_reads = int(per_insert * len(nj_road))
    rows.append((f"R-Tree insert (~{per_insert:.1f} nodes/insert)",
                 rtree_reads))

    lines = [banner(
        f"Extension: measured construction I/O "
        f"(N={len(nj_road)}, pages={pagefile.n_pages}, "
        f"buckets={N_BUCKETS})"
    )]
    lines.append(f"{'technique':34s} {'page reads':>12s} "
                 f"{'sweep-equivalents':>18s}")
    for name, reads in rows:
        lines.append(
            f"{name:34s} {reads:>12d} "
            f"{reads / pagefile.n_pages:>18.1f}"
        )
    print(save_artifact("extension_io_cost", "\n".join(lines)))

    # Section 3.5's ordering, as measured:
    assert minskew_reads == 2 * pagefile.n_pages  # constant sweeps
    assert minskew_ref_reads == 4 * pagefile.n_pages
    assert sample_reads == pagefile.n_pages  # one pass
    assert equi_reads > 5 * minskew_reads  # one sweep per split
    assert rtree_reads > equi_reads  # N log N node accesses dominate

    benchmark.pedantic(
        lambda: external_min_skew(
            pagefile, N_BUCKETS, n_regions=2_500, bounds=bounds
        ),
        rounds=1, iterations=1,
    )

"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's figures or tables: it runs
the corresponding experiment, prints the same rows/series the paper
reports, asserts the qualitative shape (who wins, direction of trends,
where the anomaly appears), and times a representative unit of work via
pytest-benchmark.

Scale: datasets default to a reduced size so the whole suite finishes in
minutes.  Set ``REPRO_BENCH_SCALE=paper`` to run at the published sizes
(414 442 NJ-Road rectangles, 10 000 queries, 400 K construction inputs);
expect a long run.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.data import charminar, nj_road_like
from repro.eval import ExperimentRunner

#: "paper" or "ci" (default).
SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")
PAPER_SCALE = SCALE == "paper"

#: Dataset / workload sizes per scale.
NJ_N = 414_442 if PAPER_SCALE else 40_000
CH_N = 40_000
N_QUERIES = 10_000 if PAPER_SCALE else 1_500
TABLE1_SMALL = 50_000
TABLE1_LARGE = 400_000 if PAPER_SCALE else 150_000


@pytest.fixture(scope="session")
def nj_road():
    """The (simulated) NJ Road dataset used by Figures 8, 9, 10(a)."""
    return nj_road_like(NJ_N)


@pytest.fixture(scope="session")
def charminar_data():
    """The Charminar dataset used by Figures 10(b) and 11."""
    return charminar(CH_N)


@pytest.fixture(scope="session")
def nj_runner(nj_road):
    return ExperimentRunner(nj_road)


@pytest.fixture(scope="session")
def charminar_runner(charminar_data):
    return ExperimentRunner(charminar_data)


#: Directory where each benchmark persists its printed artifact, so the
#: regenerated figures/tables survive pytest's output capture.
RESULTS_DIR = Path(__file__).parent / "results"


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"


def save_artifact(name: str, text: str) -> str:
    """Write a regenerated figure/table to ``benchmarks/results`` and
    return the text unchanged (so call sites can print it too)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return text


def assert_monotone_decreasing(values, *, slack=1.0, label=""):
    """Assert a sequence trends downward (first > last, with slack for
    neighbouring noise)."""
    values = list(values)
    assert values[-1] < values[0] * slack, (
        f"{label}: expected a downward trend, got {values}"
    )

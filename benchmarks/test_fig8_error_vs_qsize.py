"""Figure 8: average relative error vs query size (NJ Road, 100 buckets).

Paper findings reproduced and asserted here:

* errors decrease as QSize grows (fully-covered buckets contribute none);
* Min-Skew wins "by a huge margin", improving on its closest competitor
  by a large factor at most sizes;
* Sample is poor at small QSize (the paper quotes 82 % at QSize 2 %);
* Uniform and Fractal are uncompetitive (the paper drops them from later
  figures; we keep them in the printed table for completeness).
"""

import pytest

from repro.eval import experiments, report
from repro.workload import PAPER_QSIZES

from .conftest import N_QUERIES, banner, save_artifact

TECHNIQUES = (
    "Min-Skew", "Equi-Count", "Equi-Area", "R-Tree", "Sample",
    "Uniform", "Fractal",
)


@pytest.fixture(scope="module")
def records(nj_road):
    return experiments.error_vs_qsize(
        nj_road,
        techniques=TECHNIQUES,
        qsizes=PAPER_QSIZES,
        n_buckets=100,
        n_queries=N_QUERIES,
        n_regions=10_000,
        rtree_method="str",
    )


def test_fig8_series(records, benchmark, nj_road):
    text = (
        banner("Figure 8: relative error vs QSize "
               f"(NJ Road n={len(nj_road)}, 100 buckets)")
        + "\n" + report.format_series(records, x_key="qsize")
    )
    print(save_artifact("fig8_error_vs_qsize", text))

    pivot = report.pivot_series(records, x_key="qsize")

    # errors fall with query size for the bucket techniques
    for technique in ("Min-Skew", "Equi-Area", "Equi-Count", "R-Tree"):
        series = [pivot[technique][q] for q in sorted(pivot[technique])]
        assert series[-1] < series[0], (technique, series)

    # Min-Skew wins at every query size
    for qsize in PAPER_QSIZES:
        best_other = min(
            pivot[t][qsize] for t in TECHNIQUES if t != "Min-Skew"
        )
        assert pivot["Min-Skew"][qsize] <= best_other

    # Sample is poor for small queries; Uniform/Fractal uncompetitive
    assert pivot["Sample"][0.02] > 2 * pivot["Min-Skew"][0.02]
    assert pivot["Uniform"][0.05] > 3 * pivot["Min-Skew"][0.05]
    assert pivot["Fractal"][0.05] > 3 * pivot["Min-Skew"][0.05]

    # benchmark unit: Min-Skew estimation over the full workload
    from repro.eval import build_estimator
    from repro.workload import range_queries

    est = build_estimator("Min-Skew", nj_road, 100, n_regions=10_000)
    queries = range_queries(nj_road, 0.05, N_QUERIES, seed=42)
    benchmark(est.estimate_many, queries)

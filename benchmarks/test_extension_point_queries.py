"""Extension: point-query accuracy (Section 3.1's zero-extent case).

The paper develops the point-query formula (average spatial density,
TA/Area per bucket) but evaluates only range workloads.  This benchmark
fills that gap on the Charminar dataset, whose 100×100 rectangles make
point-cover counts meaningful.  Point queries are the regime where no
bucket is ever fully covered, so every answer rides entirely on the
within-bucket uniformity assumption — the hardest case for all
techniques.

A caveat worth recording: on *thin-extent* data (road-segment MBRs) the
true cover count of almost every point is ~0–2, so density-based
estimates of any quality overshoot, and the degenerate Uniform
underestimate can accidentally score best.  Point selectivity over
linear data is not a regime bucket summaries can win; the assertion
here therefore uses the rectangle dataset.

Asserted: the paper's ordering survives — Min-Skew remains the most
accurate bucket technique for point queries on rectangle data.
"""

import pytest

from repro.eval import experiments, report

from .conftest import N_QUERIES, banner, save_artifact

TECHNIQUES = ("Min-Skew", "Equi-Count", "Equi-Area", "Grid", "Sample",
              "Uniform")


@pytest.fixture(scope="module")
def records(charminar_data):
    return experiments.point_query_error(
        charminar_data,
        techniques=TECHNIQUES,
        n_buckets=100,
        n_queries=N_QUERIES,
        n_regions=10_000,
        rtree_method="str",
    )


def test_point_queries(records, benchmark, charminar_data):
    text = (
        banner(f"Extension: point-query error "
               f"(Charminar n={len(charminar_data)}, 100 buckets)")
        + "\n" + report.format_table(
            records, ["technique", "error", "build_seconds"]
        )
    )
    print(save_artifact("extension_point_queries", text))

    errors = {r["technique"]: r["error"] for r in records}
    bucket_techs = ("Min-Skew", "Equi-Count", "Equi-Area", "Grid")
    assert errors["Min-Skew"] == min(errors[t] for t in bucket_techs)
    assert errors["Uniform"] > errors["Min-Skew"]

    from repro.eval import build_estimator
    from repro.workload import point_queries

    est = build_estimator("Min-Skew", charminar_data, 100,
                          n_regions=10_000)
    queries = point_queries(charminar_data, N_QUERIES, seed=9)
    benchmark(est.estimate_many, queries)

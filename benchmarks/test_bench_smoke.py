"""Smoke test for the ``repro-spatial bench`` regression harness.

Runs a deliberately tiny benchmark configuration end to end, validates
the emitted ``BENCH_<name>.json`` against the published schema, and
checks the two promises the harness makes: every technique reports
finite accuracy plus its hot-path metrics, and the observability layer
costs (close to) nothing when disabled.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.eval import ALL_TECHNIQUES
from repro.obs.bench import BenchConfig, write_bench
from repro.obs.schema import (
    BenchSchemaError,
    SCHEMA_VERSION,
    validate_bench,
)

SMOKE_CONFIG = BenchConfig(
    name="smoke",
    datasets=(("charminar", 1_500),),
    n_buckets=16,
    n_regions=256,
    n_queries=120,
)


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench")
    doc, path = write_bench(SMOKE_CONFIG, out_dir)
    return doc, path


def test_artifact_written_and_schema_valid(smoke_run):
    doc, path = smoke_run
    assert path.name == "BENCH_smoke.json"
    on_disk = json.loads(path.read_text())
    validate_bench(on_disk)  # must not raise
    assert on_disk["schema_version"] == SCHEMA_VERSION
    assert on_disk["name"] == "smoke"
    assert on_disk["total_seconds"] == pytest.approx(
        doc["total_seconds"]
    )


def test_every_technique_reports_timings_and_accuracy(smoke_run):
    doc, _ = smoke_run
    (dataset,) = doc["datasets"]
    assert dataset["dataset"] == "charminar"
    assert dataset["n"] == 1_500
    assert dataset["truth_seconds"] > 0

    reported = [t["technique"] for t in dataset["techniques"]]
    assert reported == list(ALL_TECHNIQUES)
    for entry in dataset["techniques"]:
        assert entry["build_seconds"] >= 0
        assert entry["estimate_seconds"] >= 0
        assert entry["size_words"] > 0
        acc = entry["accuracy"]
        assert acc["n_queries"] == 120
        assert 0 <= acc["average_relative_error"] < 1e6
        assert acc["rmse"] >= 0


def test_hot_path_metrics_embedded_per_technique(smoke_run):
    doc, _ = smoke_run
    by_name = {
        t["technique"]: t["metrics"]
        for t in doc["datasets"][0]["techniques"]
    }
    minskew = by_name["Min-Skew"]["counters"]
    assert minskew["minskew.splits"] == SMOKE_CONFIG.n_buckets - 1
    assert minskew["minskew.cells_scanned"] > 0
    assert minskew["estimator.batch_queries"] == 120
    assert (
        by_name["Min-Skew"]["timers"]["minskew.partition"]["count"] == 1
    )
    rtree = by_name["R-Tree"]["counters"]
    assert rtree["rtree.nodes"] > 0
    sample = by_name["Sample"]["counters"]
    assert sample["estimator.sample_comparisons"] > 0


def test_disabled_instrumentation_overhead_is_negligible(smoke_run):
    doc, _ = smoke_run
    overhead = doc["overhead"]
    # A disabled counter call is one dict-attribute load plus a branch;
    # the bound is ~100x the measured cost so CI noise cannot trip it.
    assert overhead["disabled_counter_ns"] < 5_000
    assert overhead["disabled_timer_ns"] < 25_000
    # End-to-end: an instrumented Min-Skew build with collection off
    # must stay in the same ballpark as with collection on (generous
    # slack — this guards against order-of-magnitude regressions, e.g.
    # accidental allocation on the disabled path).
    assert overhead["minskew_disabled_s"] > 0
    assert (
        overhead["minskew_disabled_s"]
        < 5 * overhead["minskew_enabled_s"] + 0.05
    )


def test_schema_rejects_truncated_documents(smoke_run):
    doc, _ = smoke_run
    broken = dict(doc)
    del broken["overhead"]
    with pytest.raises(BenchSchemaError):
        validate_bench(broken)
    broken = json.loads(json.dumps(doc))
    del broken["datasets"][0]["techniques"][0]["accuracy"]
    with pytest.raises(BenchSchemaError):
        validate_bench(broken)


def test_cli_bench_subcommand(tmp_path, capsys):
    rc = cli_main(
        [
            "bench",
            "--quick",
            "--name", "cli_smoke",
            "--out", str(tmp_path),
            "--datasets", "charminar:1000",
            "--buckets", "12",
            "--regions", "256",
            "--queries", "60",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    artifact = tmp_path / "BENCH_cli_smoke.json"
    assert artifact.exists()
    assert str(artifact) in out
    doc = json.loads(artifact.read_text())
    validate_bench(doc)
    assert doc["config"]["n_buckets"] == 12
    assert [t["technique"] for t in doc["datasets"][0]["techniques"]] \
        == list(ALL_TECHNIQUES)

"""Unit and property tests for repro.geometry.rectset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import Rect, RectSet


def make_set(rows):
    return RectSet(np.asarray(rows, dtype=float))


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="N, 4"):
            RectSet(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="N, 4"):
            RectSet(np.zeros(4))

    def test_negative_extent_reported_with_index(self):
        with pytest.raises(ValueError, match="rectangle 1"):
            make_set([[0, 0, 1, 1], [2, 2, 1, 3]])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            make_set([[0, 0, np.inf, 1]])

    def test_immutability(self):
        rs = make_set([[0, 0, 1, 1]])
        with pytest.raises(ValueError):
            rs.coords[0, 0] = 5.0

    def test_copy_semantics(self):
        src = np.array([[0.0, 0.0, 1.0, 1.0]])
        rs = RectSet(src, copy=True)
        src[0, 0] = -10.0
        assert rs.x1[0] == 0.0

    def test_from_rects_roundtrip(self):
        rects = [Rect(0, 0, 1, 2), Rect(3, 4, 5, 6)]
        rs = RectSet.from_rects(rects)
        assert list(rs) == rects

    def test_from_rects_empty(self):
        assert len(RectSet.from_rects([])) == 0

    def test_from_centers(self):
        rs = RectSet.from_centers([5.0], [5.0], [2.0], [4.0])
        assert rs[0].as_tuple() == (4, 3, 6, 7)

    def test_from_centers_negative_extent(self):
        with pytest.raises(ValueError):
            RectSet.from_centers([0.0], [0.0], [-1.0], [1.0])

    def test_empty(self):
        rs = RectSet.empty()
        assert len(rs) == 0
        with pytest.raises(ValueError):
            rs.mbr()


class TestStatistics:
    def test_mbr(self):
        rs = make_set([[0, 0, 1, 1], [5, -2, 6, 3]])
        assert rs.mbr().as_tuple() == (0, -2, 6, 3)

    def test_total_area(self):
        rs = make_set([[0, 0, 1, 1], [0, 0, 2, 3]])
        assert rs.total_area() == 7.0

    def test_avg_extents(self):
        rs = make_set([[0, 0, 2, 2], [0, 0, 4, 6]])
        assert rs.avg_width() == 3.0
        assert rs.avg_height() == 4.0

    def test_avg_extents_empty(self):
        assert RectSet.empty().avg_width() == 0.0
        assert RectSet.empty().avg_height() == 0.0

    def test_centers(self):
        rs = make_set([[0, 0, 2, 4]])
        np.testing.assert_array_equal(rs.centers(), [[1.0, 2.0]])


class TestQueries:
    def test_count_intersecting_matches_scalar(self, mixed_rects):
        query = Rect(200, 200, 600, 500)
        expected = sum(
            1 for r in mixed_rects if r.intersects(query)
        )
        assert mixed_rects.count_intersecting(query) == expected

    def test_touching_counts(self):
        rs = make_set([[0, 0, 1, 1]])
        assert rs.count_intersecting(Rect(1, 1, 2, 2)) == 1

    def test_select_mask(self):
        rs = make_set([[0, 0, 1, 1], [2, 2, 3, 3], [4, 4, 5, 5]])
        sub = rs.select(np.array([True, False, True]))
        assert len(sub) == 2
        assert sub[1].x1 == 4

    def test_sample_without_replacement(self, mixed_rects, rng):
        sample = mixed_rects.sample(100, rng)
        assert len(sample) == 100
        # all sampled rows exist in the source
        src = {tuple(row) for row in mixed_rects.coords}
        assert all(tuple(row) in src for row in sample.coords)

    def test_sample_larger_than_population(self, rng):
        rs = make_set([[0, 0, 1, 1]])
        assert len(rs.sample(10, rng)) == 1

    def test_sample_negative_raises(self, rng):
        with pytest.raises(ValueError):
            RectSet.empty().sample(-1, rng)

    def test_concat(self):
        a = make_set([[0, 0, 1, 1]])
        b = make_set([[2, 2, 3, 3]])
        c = a.concat(b)
        assert len(c) == 2
        assert c[1].x1 == 2

    def test_equality(self):
        a = make_set([[0, 0, 1, 1]])
        assert a == make_set([[0, 0, 1, 1]])
        assert a != make_set([[0, 0, 1, 2]])


class TestProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 40)),
            elements=st.floats(0, 100, allow_nan=False),
        ),
        st.integers(0, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_mask_consistent_with_count(self, xs, pad):
        n = len(xs)
        coords = np.column_stack((xs, xs, xs + pad, xs + pad + 1))
        rs = RectSet(coords)
        q = Rect(10, 10, 60, 60)
        assert rs.intersects_mask(q).sum() == rs.count_intersecting(q)

    @given(st.integers(1, 30), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_mbr_contains_all(self, n, seed):
        gen = np.random.default_rng(seed)
        rs = RectSet.from_centers(
            gen.uniform(0, 100, n),
            gen.uniform(0, 100, n),
            gen.uniform(0, 10, n),
            gen.uniform(0, 10, n),
        )
        mbr = rs.mbr()
        for r in rs:
            assert mbr.contains_rect(r)

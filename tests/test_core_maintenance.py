"""Tests for incremental summary maintenance."""

import numpy as np
import pytest

from repro.core import MaintainedHistogram, MinSkewPartitioner
from repro.counting import brute_force_counts
from repro.data import uniform_rects
from repro.estimators import BucketEstimator
from repro.geometry import Rect, RectSet
from repro.workload import range_queries


@pytest.fixture()
def hist(small_nj_road):
    return MaintainedHistogram(
        MinSkewPartitioner(25, n_regions=400), small_nj_road
    )


class TestBasics:
    def test_validation(self, small_nj_road):
        with pytest.raises(ValueError):
            MaintainedHistogram(
                MinSkewPartitioner(5, n_regions=100), small_nj_road,
                drift_threshold=0.0,
            )

    def test_initial_state(self, hist, small_nj_road):
        assert len(hist) == len(small_nj_road)
        assert hist.modifications_since_refresh == 0
        assert not hist.needs_refresh
        assert sum(b.count for b in hist.buckets) == len(small_nj_road)

    def test_insert_updates_count(self, hist):
        before = sum(b.count for b in hist.buckets)
        mbr = hist.current_data().mbr()
        cx, cy = mbr.center
        hist.insert(Rect.from_center(cx, cy, 5, 5))
        assert sum(b.count for b in hist.buckets) == before + 1
        assert len(hist) == before + 1

    def test_insert_outside_is_drift(self, hist):
        before = sum(b.count for b in hist.buckets)
        hist.insert(Rect(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert hist.uncovered_inserts == 1
        # bucket stats unchanged, raw data grew
        assert sum(b.count for b in hist.buckets) == before
        assert len(hist) == before + 1

    def test_delete_existing(self, hist, small_nj_road):
        victim = small_nj_road[0]
        assert hist.delete(victim)
        assert len(hist) == len(small_nj_road) - 1
        assert sum(b.count for b in hist.buckets) == \
            len(small_nj_road) - 1

    def test_delete_missing_is_noop(self, hist, small_nj_road):
        assert not hist.delete(Rect(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert len(hist) == len(small_nj_road)
        assert hist.modifications_since_refresh == 0

    def test_insert_then_delete_restores_counts(self, hist):
        baseline = [b.count for b in hist.buckets]
        mbr = hist.current_data().mbr()
        cx, cy = mbr.center
        r = Rect.from_center(cx, cy, 7, 3)
        hist.insert(r)
        assert hist.delete(r)
        assert [b.count for b in hist.buckets] == baseline


class TestDriftAndRefresh:
    def test_needs_refresh_after_many_changes(self, small_nj_road):
        hist = MaintainedHistogram(
            MinSkewPartitioner(10, n_regions=100), small_nj_road,
            drift_threshold=0.01,
        )
        mbr = small_nj_road.mbr()
        cx, cy = mbr.center
        for _ in range(int(0.02 * len(small_nj_road))):
            hist.insert(Rect.from_center(cx, cy, 2, 2))
        assert hist.needs_refresh

    def test_refresh_resets(self, small_nj_road):
        hist = MaintainedHistogram(
            MinSkewPartitioner(10, n_regions=100), small_nj_road,
            drift_threshold=0.01,
        )
        for i in range(200):
            hist.insert(Rect(1e6 + i, 1e6, 1e6 + i + 1, 1e6 + 1))
        assert hist.needs_refresh
        hist.refresh()
        assert not hist.needs_refresh
        assert hist.uncovered_inserts == 0
        # the rebuilt layout now covers the migrated data
        assert sum(b.count for b in hist.buckets) == len(hist)

    def test_refresh_to_empty(self):
        data = RectSet(np.array([[0.0, 0.0, 1.0, 1.0]]))
        hist = MaintainedHistogram(
            MinSkewPartitioner(2, n_regions=4), data
        )
        assert hist.delete(data[0])
        hist.refresh()
        assert hist.buckets == []
        assert hist.estimate(Rect(0, 0, 10, 10)) == 0.0


class TestAccuracyUnderChange:
    def test_estimates_track_inserts(self):
        """After inserting a new cluster, the maintained histogram is
        closer to the truth than the stale (unmaintained) one, and its
        global count is exact.  The improvement is bounded by layout
        staleness — counts move, boxes don't — which is why refresh()
        exists."""
        data = uniform_rects(4_000, seed=90)
        partitioner = MinSkewPartitioner(30, n_regions=400)
        hist = MaintainedHistogram(partitioner, data)
        stale = BucketEstimator.build(partitioner, data)

        # pour 2 000 new rectangles into one area
        gen = np.random.default_rng(91)
        for _ in range(2_000):
            cx, cy = gen.uniform(2_000, 3_000, 2)
            hist.insert(Rect.from_center(cx, cy, 100, 100))

        # global count tracks exactly
        full = hist.current_data().mbr()
        assert hist.estimate(full) == pytest.approx(6_000, rel=0.01)
        assert stale.estimate(full) == pytest.approx(4_000, rel=0.01)

        # locally, maintained beats stale (but not a fresh rebuild)
        query = Rect(1_800, 1_800, 3_200, 3_200)
        truth = float(
            brute_force_counts(
                hist.current_data(),
                RectSet(np.array([query.as_tuple()])),
            )[0]
        )
        maintained_err = abs(hist.estimate(query) - truth) / truth
        stale_err = abs(stale.estimate(query) - truth) / truth
        assert maintained_err < stale_err
        hist.refresh()
        refreshed_err = abs(hist.estimate(query) - truth) / truth
        assert refreshed_err < maintained_err

    def test_refresh_beats_maintained(self):
        """A full rebuild after heavy churn is at least as accurate as
        the incrementally maintained summary."""
        data = uniform_rects(4_000, seed=92)
        partitioner = MinSkewPartitioner(30, n_regions=400)
        hist = MaintainedHistogram(partitioner, data)
        gen = np.random.default_rng(93)
        for _ in range(3_000):
            cx, cy = gen.uniform(7_000, 9_500, 2)
            hist.insert(Rect.from_center(cx, cy, 50, 50))

        live = hist.current_data()
        queries = range_queries(live, 0.08, 300, seed=94)
        truth = brute_force_counts(live, queries)

        def total_err(buckets_estimate):
            est = np.array([buckets_estimate(q) for q in queries])
            return np.abs(truth - est).sum() / truth.sum()

        maintained = total_err(hist.estimate)
        hist.refresh()
        rebuilt = total_err(hist.estimate)
        assert rebuilt <= maintained * 1.05

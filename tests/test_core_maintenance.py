"""Tests for incremental summary maintenance."""

import numpy as np
import pytest

from repro.core import (
    MaintainedHistogram,
    MinSkewPartitioner,
    buckets_from_members,
)
from repro.counting import brute_force_counts
from repro.data import uniform_rects
from repro.estimators import BucketEstimator
from repro.geometry import Rect, RectSet
from repro.workload import range_queries


@pytest.fixture()
def hist(small_nj_road):
    return MaintainedHistogram(
        MinSkewPartitioner(25, n_regions=400), small_nj_road
    )


class TestBasics:
    def test_validation(self, small_nj_road):
        with pytest.raises(ValueError):
            MaintainedHistogram(
                MinSkewPartitioner(5, n_regions=100), small_nj_road,
                drift_threshold=0.0,
            )

    def test_initial_state(self, hist, small_nj_road):
        assert len(hist) == len(small_nj_road)
        assert hist.modifications_since_refresh == 0
        assert not hist.needs_refresh
        assert sum(b.count for b in hist.buckets) == len(small_nj_road)

    def test_insert_updates_count(self, hist):
        before = sum(b.count for b in hist.buckets)
        mbr = hist.current_data().mbr()
        cx, cy = mbr.center
        hist.insert(Rect.from_center(cx, cy, 5, 5))
        assert sum(b.count for b in hist.buckets) == before + 1
        assert len(hist) == before + 1

    def test_insert_outside_is_drift(self, hist):
        before = sum(b.count for b in hist.buckets)
        hist.insert(Rect(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert hist.uncovered_inserts == 1
        # bucket stats unchanged, raw data grew
        assert sum(b.count for b in hist.buckets) == before
        assert len(hist) == before + 1

    def test_delete_existing(self, hist, small_nj_road):
        victim = small_nj_road[0]
        assert hist.delete(victim)
        assert len(hist) == len(small_nj_road) - 1
        assert sum(b.count for b in hist.buckets) == \
            len(small_nj_road) - 1

    def test_delete_missing_is_noop(self, hist, small_nj_road):
        assert not hist.delete(Rect(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert len(hist) == len(small_nj_road)
        assert hist.modifications_since_refresh == 0

    def test_insert_then_delete_restores_counts(self, hist):
        baseline = [b.count for b in hist.buckets]
        mbr = hist.current_data().mbr()
        cx, cy = mbr.center
        r = Rect.from_center(cx, cy, 7, 3)
        hist.insert(r)
        assert hist.delete(r)
        assert [b.count for b in hist.buckets] == baseline


class TestDriftAndRefresh:
    def test_needs_refresh_after_many_changes(self, small_nj_road):
        hist = MaintainedHistogram(
            MinSkewPartitioner(10, n_regions=100), small_nj_road,
            drift_threshold=0.01,
        )
        mbr = small_nj_road.mbr()
        cx, cy = mbr.center
        for _ in range(int(0.02 * len(small_nj_road))):
            hist.insert(Rect.from_center(cx, cy, 2, 2))
        assert hist.needs_refresh

    def test_refresh_resets(self, small_nj_road):
        hist = MaintainedHistogram(
            MinSkewPartitioner(10, n_regions=100), small_nj_road,
            drift_threshold=0.01,
        )
        for i in range(200):
            hist.insert(Rect(1e6 + i, 1e6, 1e6 + i + 1, 1e6 + 1))
        assert hist.needs_refresh
        hist.refresh()
        assert not hist.needs_refresh
        assert hist.uncovered_inserts == 0
        # the rebuilt layout now covers the migrated data
        assert sum(b.count for b in hist.buckets) == len(hist)

    def test_refresh_to_empty(self):
        data = RectSet(np.array([[0.0, 0.0, 1.0, 1.0]]))
        hist = MaintainedHistogram(
            MinSkewPartitioner(2, n_regions=4), data
        )
        assert hist.delete(data[0])
        hist.refresh()
        assert hist.buckets == []
        assert hist.estimate(Rect(0, 0, 10, 10)) == 0.0

    def test_refresh_discards_running_average_drift(self):
        """Regression: the incremental running averages clamp at 0.0
        on the way down (:meth:`Bucket.with_deleted`), so a long
        insert/delete stream drifts them away from the exact
        ``from_members`` values.  ``refresh`` must not inherit that
        drift: after it, every bucket is bit-identical to one built
        fresh over the retained rows."""
        data = uniform_rects(600, seed=41)
        hist = MaintainedHistogram(
            MinSkewPartitioner(12, n_regions=144), data,
            drift_threshold=1.0,  # effectively never auto-trips
        )
        gen = np.random.default_rng(42)
        live = [data[i] for i in range(len(data))]
        mbr = data.mbr()
        for step in range(2_000):
            if live and gen.uniform() < 0.5:
                victim = live.pop(int(gen.integers(len(live))))
                assert hist.delete(victim)
            else:
                cx = gen.uniform(mbr.x1, mbr.x2)
                cy = gen.uniform(mbr.y1, mbr.y2)
                r = Rect.from_center(
                    cx, cy, gen.uniform(0, 9), gen.uniform(0, 9)
                )
                hist.insert(r)
                live.append(r)

        # the incremental summary really has drifted off the exact
        # values by now (this is what made the bug observable)
        retained = hist.current_data()
        boxes_now = [b.bbox for b in hist.buckets]
        assert hist.buckets != buckets_from_members(
            retained, boxes_now
        )

        hist.refresh()

        layout = [
            b.bbox
            for b in MinSkewPartitioner(
                12, n_regions=144
            ).partition(hist.current_data())
        ]
        fresh = buckets_from_members(hist.current_data(), layout)
        assert hist.buckets == fresh  # bit-for-bit


class TestEpoch:
    """The staleness contract: every accepted mutation moves the
    epoch, and nothing else does."""

    def test_starts_at_zero(self, hist):
        assert hist.epoch == 0

    def test_insert_bumps(self, hist):
        mbr = hist.current_data().mbr()
        cx, cy = mbr.center
        hist.insert(Rect.from_center(cx, cy, 5, 5))
        assert hist.epoch == 1

    def test_uncovered_insert_still_bumps(self, hist):
        # the raw data changed even though no bucket did; consumers
        # deriving from current_data() must see the move
        hist.insert(Rect(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert hist.epoch == 1

    def test_delete_hit_bumps_miss_does_not(
        self, hist, small_nj_road
    ):
        assert not hist.delete(Rect(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert hist.epoch == 0
        assert hist.delete(small_nj_road[0])
        assert hist.epoch == 1

    def test_refresh_bumps(self, hist):
        hist.refresh()
        assert hist.epoch == 1

    def test_queries_never_bump(self, hist):
        hist.estimate(Rect(0, 0, 100, 100))
        hist.current_data()
        assert hist.epoch == 0

    def test_epoch_is_monotone_over_mixed_sequence(
        self, hist, small_nj_road
    ):
        mbr = hist.current_data().mbr()
        cx, cy = mbr.center
        seen = [hist.epoch]
        hist.insert(Rect.from_center(cx, cy, 3, 3))
        seen.append(hist.epoch)
        hist.delete(small_nj_road[1])
        seen.append(hist.epoch)
        hist.refresh()
        seen.append(hist.epoch)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)


class TestDeleteLastMember:
    """Regression: removing a bucket's only rectangle must leave an
    empty bucket (count 0, zero averages), not raise
    ZeroDivisionError from the running-average update."""

    def test_delete_only_member_of_bucket(self):
        # two distant unit squares -> Min-Skew puts them in separate
        # buckets, each with exactly one member
        data = RectSet(np.array([
            [0.0, 0.0, 1.0, 1.0],
            [100.0, 100.0, 101.0, 101.0],
        ]))
        hist = MaintainedHistogram(
            MinSkewPartitioner(2, n_regions=16), data
        )
        assert hist.delete(data[0])
        counts = sorted(b.count for b in hist.buckets)
        assert counts[0] == 0
        empty = next(b for b in hist.buckets if b.count == 0)
        assert empty.avg_width == 0.0
        assert empty.avg_height == 0.0
        assert empty.avg_density == 0.0
        # the emptied bucket contributes nothing, the other still does
        assert hist.estimate(Rect(0, 0, 2, 2)) == 0.0
        assert hist.estimate(Rect(99, 99, 102, 102)) > 0.0

    def test_bucket_with_deleted_guards_empty(self):
        from repro.core.bucket import Bucket

        b = Bucket(Rect(0, 0, 10, 10), 1, avg_width=2.0,
                   avg_height=3.0, avg_density=0.04)
        emptied = b.with_deleted(Rect(4, 4, 6, 6))
        assert emptied.count == 0
        assert emptied.avg_width == 0.0
        assert emptied.avg_height == 0.0
        # deleting from an already-empty bucket is a no-op, not an
        # underflow
        assert emptied.with_deleted(Rect(4, 4, 6, 6)) is emptied

    def test_delete_all_members_one_by_one(self):
        rows = np.array([
            [float(i), 0.0, float(i) + 1.0, 1.0] for i in range(8)
        ])
        data = RectSet(rows)
        hist = MaintainedHistogram(
            MinSkewPartitioner(3, n_regions=16), data
        )
        for i in range(8):
            assert hist.delete(data[i])
        assert len(hist) == 0
        assert all(b.count == 0 for b in hist.buckets)
        assert hist.estimate(Rect(0, 0, 10, 10)) == 0.0


class TestAccuracyUnderChange:
    def test_estimates_track_inserts(self):
        """After inserting a new cluster, the maintained histogram is
        closer to the truth than the stale (unmaintained) one, and its
        global count is exact.  The improvement is bounded by layout
        staleness — counts move, boxes don't — which is why refresh()
        exists."""
        data = uniform_rects(4_000, seed=90)
        partitioner = MinSkewPartitioner(30, n_regions=400)
        hist = MaintainedHistogram(partitioner, data)
        stale = BucketEstimator.build(partitioner, data)

        # pour 2 000 new rectangles into one area
        gen = np.random.default_rng(91)
        for _ in range(2_000):
            cx, cy = gen.uniform(2_000, 3_000, 2)
            hist.insert(Rect.from_center(cx, cy, 100, 100))

        # global count tracks exactly
        full = hist.current_data().mbr()
        assert hist.estimate(full) == pytest.approx(6_000, rel=0.01)
        assert stale.estimate(full) == pytest.approx(4_000, rel=0.01)

        # locally, maintained beats stale (but not a fresh rebuild)
        query = Rect(1_800, 1_800, 3_200, 3_200)
        truth = float(
            brute_force_counts(
                hist.current_data(),
                RectSet(np.array([query.as_tuple()])),
            )[0]
        )
        maintained_err = abs(hist.estimate(query) - truth) / truth
        stale_err = abs(stale.estimate(query) - truth) / truth
        assert maintained_err < stale_err
        hist.refresh()
        refreshed_err = abs(hist.estimate(query) - truth) / truth
        assert refreshed_err < maintained_err

    def test_refresh_beats_maintained(self):
        """A full rebuild after heavy churn is at least as accurate as
        the incrementally maintained summary."""
        data = uniform_rects(4_000, seed=92)
        partitioner = MinSkewPartitioner(30, n_regions=400)
        hist = MaintainedHistogram(partitioner, data)
        gen = np.random.default_rng(93)
        for _ in range(3_000):
            cx, cy = gen.uniform(7_000, 9_500, 2)
            hist.insert(Rect.from_center(cx, cy, 50, 50))

        live = hist.current_data()
        queries = range_queries(live, 0.08, 300, seed=94)
        truth = brute_force_counts(live, queries)

        def total_err(buckets_estimate):
            est = np.array([buckets_estimate(q) for q in queries])
            return np.abs(truth - est).sum() / truth.sum()

        maintained = total_err(hist.estimate)
        hist.refresh()
        rebuilt = total_err(hist.estimate)
        assert rebuilt <= maintained * 1.05

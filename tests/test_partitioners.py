"""Tests for the Equi-Area, Equi-Count, and R-Tree partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet
from repro.partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    Partitioner,
    RTreePartitioner,
)

from .test_rtree_rstar import random_rectset

ALL_PARTITIONERS = [
    lambda beta: EquiAreaPartitioner(beta),
    lambda beta: EquiCountPartitioner(beta),
    lambda beta: RTreePartitioner(beta, method="str"),
]


class TestBase:
    def test_quota_validation(self):
        with pytest.raises(ValueError):
            EquiAreaPartitioner(0)

    def test_abstract(self):
        with pytest.raises(TypeError):
            Partitioner(5)  # type: ignore[abstract]


@pytest.mark.parametrize("factory", ALL_PARTITIONERS,
                         ids=["equi-area", "equi-count", "rtree"])
class TestCommonContract:
    """Invariants every grouping technique must satisfy."""

    def test_empty_input_raises(self, factory):
        with pytest.raises(ValueError):
            factory(5).partition(RectSet.empty())

    def test_quota_never_exceeded(self, factory, small_nj_road):
        for beta in (1, 10, 64):
            buckets = factory(beta).partition(small_nj_road)
            assert 1 <= len(buckets) <= beta

    def test_counts_partition_input(self, factory, small_nj_road):
        buckets = factory(32).partition(small_nj_road)
        assert sum(b.count for b in buckets) == len(small_nj_road)

    def test_boxes_cover_members(self, factory, small_charminar):
        """Every rectangle's center lies inside its bucket's box.

        (Bucket boxes may overlap for Equi-* and R-Tree; coverage of the
        assigned members is what estimation correctness needs.)"""
        buckets = factory(16).partition(small_charminar)
        # reconstruct: a center must be inside at least one bucket box
        centers = small_charminar.centers()
        for cx, cy in centers[:: max(1, len(centers) // 200)]:
            assert any(
                b.bbox.contains_point(cx, cy) for b in buckets
                if b.count > 0
            )

    def test_deterministic(self, factory, small_nj_road):
        a = factory(20).partition(small_nj_road)
        b = factory(20).partition(small_nj_road)
        assert [x.bbox for x in a] == [x.bbox for x in b]

    def test_single_bucket(self, factory, small_nj_road):
        buckets = factory(1).partition(small_nj_road)
        assert len(buckets) == 1
        assert buckets[0].count == len(small_nj_road)

    def test_identical_rects(self, factory):
        rs = RectSet(np.tile([[5.0, 5.0, 7.0, 7.0]], (40, 1)))
        buckets = factory(8).partition(rs)
        assert sum(b.count for b in buckets) == 40


class TestEquiArea:
    def test_areas_roughly_equal_on_uniform(self, small_uniform):
        buckets = EquiAreaPartitioner(16).partition(small_uniform)
        areas = np.array([b.bbox.area for b in buckets])
        # recomputed MBRs shrink boxes a little; allow slack
        assert areas.max() / areas.min() < 6.0

    def test_splits_longest_dimension_first(self):
        # a wide strip of two distant clusters: the first split must be
        # vertical (x), separating them
        gen = np.random.default_rng(50)
        left = RectSet.from_centers(
            gen.uniform(0, 100, 50), gen.uniform(0, 100, 50),
            np.full(50, 2.0), np.full(50, 2.0))
        right = RectSet.from_centers(
            gen.uniform(900, 1000, 50), gen.uniform(0, 100, 50),
            np.full(50, 2.0), np.full(50, 2.0))
        buckets = EquiAreaPartitioner(2).partition(left.concat(right))
        xs = sorted(b.bbox.center[0] for b in buckets)
        assert xs[0] < 200 and xs[1] > 800
        assert all(b.count == 50 for b in buckets)

    def test_colinear_centers(self):
        """All centers on a vertical line: only y-splits possible."""
        rs = RectSet.from_centers(
            np.full(30, 5.0), np.linspace(0, 100, 30),
            np.full(30, 1.0), np.full(30, 1.0),
        )
        buckets = EquiAreaPartitioner(4).partition(rs)
        assert len(buckets) == 4
        assert sum(b.count for b in buckets) == 30


class TestEquiCount:
    def test_counts_roughly_equal(self, small_charminar):
        buckets = EquiCountPartitioner(16).partition(small_charminar)
        counts = np.array([b.count for b in buckets])
        # median splits give near-perfect balance
        assert counts.max() <= 2.5 * max(counts.min(), 1)

    def test_denser_areas_get_smaller_buckets(self, small_charminar):
        """Equi-Count 'contains more buckets in the denser areas':
        with equalised counts, boxes in the dense corners are
        geometrically far smaller than interior boxes."""
        buckets = EquiCountPartitioner(32).partition(small_charminar)
        space = small_charminar.mbr()
        zone = 0.25 * space.width

        def in_corner(b):
            cx, cy = b.bbox.center
            return (
                (cx < space.x1 + zone or cx > space.x2 - zone)
                and (cy < space.y1 + zone or cy > space.y2 - zone)
            )

        corner_areas = [b.bbox.area for b in buckets if in_corner(b)]
        other_areas = [b.bbox.area for b in buckets if not in_corner(b)]
        assert corner_areas, "no buckets ended up in the corners"
        assert np.median(corner_areas) < 0.2 * np.median(other_areas)

    def test_unsplittable_degenerate(self):
        """All rects identical: no projected count above 1 anywhere."""
        rs = RectSet(np.tile([[0.0, 0.0, 1.0, 1.0]], (10, 1)))
        buckets = EquiCountPartitioner(4).partition(rs)
        assert len(buckets) == 1


class TestRTreePartitioner:
    def test_method_validation(self):
        with pytest.raises(ValueError):
            RTreePartitioner(10, method="quantum")

    def test_insert_method(self, small_nj_road):
        buckets = RTreePartitioner(20, method="insert").partition(
            small_nj_road
        )
        assert 1 <= len(buckets) <= 20
        assert sum(b.count for b in buckets) == len(small_nj_road)

    def test_close_to_quota(self, small_nj_road):
        """'close to the number we desired but ... never exceeded'."""
        for beta in (25, 100):
            buckets = RTreePartitioner(
                beta, method="str"
            ).partition(small_nj_road)
            assert len(buckets) <= beta
            assert len(buckets) >= beta / 8

    def test_explicit_fanout(self, small_nj_road):
        buckets = RTreePartitioner(
            50, method="str", max_entries=32
        ).partition(small_nj_road)
        assert 1 <= len(buckets) <= 50

    def test_bucket_boxes_cover_members_exactly(self, small_nj_road):
        """Node MBRs are tight around their subtree's rectangles."""
        buckets = RTreePartitioner(10, method="str").partition(
            small_nj_road
        )
        # bucket boxes jointly cover the dataset MBR corners
        mbr = small_nj_road.mbr()
        union_x1 = min(b.bbox.x1 for b in buckets)
        union_y1 = min(b.bbox.y1 for b in buckets)
        union_x2 = max(b.bbox.x2 for b in buckets)
        union_y2 = max(b.bbox.y2 for b in buckets)
        assert (union_x1, union_y1, union_x2, union_y2) == \
            pytest.approx(mbr.as_tuple())


class TestProperties:
    @given(st.integers(0, 10_000), st.integers(1, 25))
    @settings(max_examples=10, deadline=None)
    def test_random_inputs_all_partitioners(self, seed, beta):
        rs = random_rectset(int(np.random.default_rng(seed)
                                .integers(2, 120)), seed=seed)
        for factory in ALL_PARTITIONERS:
            buckets = factory(beta).partition(rs)
            assert 1 <= len(buckets) <= beta
            assert sum(b.count for b in buckets) == len(rs)

"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core import Bucket, MinSkewPartitioner
from repro.geometry import Rect, RectSet
from repro.grid import DensityGrid
from repro.viz_svg import (
    dataset_svg,
    density_svg,
    partition_svg,
    _heat_color,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestHeatColor:
    def test_endpoints(self):
        assert _heat_color(0.0) == "#ffffff"
        assert _heat_color(1.0) == "#a50026"

    def test_clipped(self):
        assert _heat_color(-5.0) == "#ffffff"
        assert _heat_color(7.0) == "#a50026"


class TestDatasetSvg:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dataset_svg(RectSet.empty())

    def test_valid_xml_with_rects(self, small_charminar):
        root = parse(dataset_svg(small_charminar, title="Figure 1"))
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) > 100
        titles = [t for t in root.findall(f"{SVG_NS}text")]
        assert any("Figure 1" in (t.text or "") for t in titles)

    def test_subsampling_cap(self, small_charminar):
        svg = dataset_svg(small_charminar, max_draw=50)
        root = parse(svg)
        # background + frame + <=50 data rects
        assert len(root.findall(f"{SVG_NS}rect")) <= 53


class TestDensitySvg:
    def test_cells_coloured(self):
        d = np.zeros((4, 4))
        d[1, 2] = 10.0
        grid = DensityGrid(d, Rect(0, 0, 100, 100))
        root = parse(density_svg(grid))
        fills = {
            r.get("fill") for r in root.findall(f"{SVG_NS}rect")
        }
        assert "#a50026" in fills  # the hot cell

    def test_empty_grid_renders(self):
        grid = DensityGrid(np.zeros((3, 3)), Rect(0, 0, 10, 10))
        root = parse(density_svg(grid))
        assert root.tag == f"{SVG_NS}svg"

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            DensityGrid(np.ones((2, 2)), Rect(0, 0, 0, 1))


class TestPartitionSvg:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            partition_svg([])

    def test_buckets_drawn(self, small_charminar):
        buckets = MinSkewPartitioner(
            12, n_regions=100
        ).partition(small_charminar)
        root = parse(partition_svg(buckets, small_charminar.mbr(),
                                   title="Figure 7"))
        rects = root.findall(f"{SVG_NS}rect")
        # background + frame + 12 buckets
        assert len(rects) == 14

    def test_annotations(self):
        buckets = [
            Bucket(Rect(0, 0, 50, 100), 7),
            Bucket(Rect(50, 0, 100, 100), 3),
        ]
        root = parse(partition_svg(buckets, Rect(0, 0, 100, 100),
                                   annotate=True))
        labels = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "7" in labels and "3" in labels

    def test_bounds_inferred(self):
        buckets = [Bucket(Rect(10, 10, 20, 20), 1)]
        root = parse(partition_svg(buckets))
        assert root.tag == f"{SVG_NS}svg"

    def test_aspect_ratio_preserved(self):
        buckets = [Bucket(Rect(0, 0, 200, 100), 1)]
        root = parse(partition_svg(buckets, Rect(0, 0, 200, 100),
                                   size=400))
        width = int(root.get("width"))
        height = int(root.get("height"))
        # content 400x200 plus margins
        assert width > height

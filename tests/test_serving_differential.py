"""Differential lockdown of the serving fast paths.

The serving layer promises that none of its accelerations changes a
single bit of output:

* every estimator's ``estimate_batch`` equals the scalar
  one-query-at-a-time loop to **exact float equality** (both routes
  run the same numpy kernels, scalar as a batch of one);
* serving through the engine's LRU cache equals serving without it,
  across repeated and duplicated queries;
* an ``evaluate_sweep`` with ``workers=4`` is byte-identical to
  ``workers=1`` — same summaries, same dict order, same merged
  counters.

Hypothesis drives the workloads; the dataset is fixed so estimator
construction is paid once per technique.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import charminar, uniform_rects
from repro.estimators.exact import ExactEstimator
from repro.eval import ALL_TECHNIQUES, ExperimentRunner, build_estimator
from repro.serving import BatchServingEngine
from repro.workload import point_queries, range_queries

DATA = charminar(1_200, seed=5)

#: Every technique, plus the exact oracle behind the same interface.
SERVED = tuple(ALL_TECHNIQUES) + ("Exact",)


def _build(technique):
    if technique == "Exact":
        return ExactEstimator(DATA)
    return build_estimator(technique, DATA, 16, n_regions=400)


@pytest.fixture(scope="module", params=SERVED)
def estimator(request):
    return _build(request.param)


def _scalar_loop(est, queries):
    return np.array([est.estimate(q) for q in queries],
                    dtype=np.float64)


class TestBatchEqualsScalar:
    @given(
        seed=st.integers(0, 10_000),
        qsize=st.floats(0.01, 0.3),
        n=st.integers(1, 50),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_scalar_loop_exactly(
        self, estimator, seed, qsize, n
    ):
        queries = range_queries(DATA, qsize, n, seed=seed)
        batch = estimator.estimate_batch(queries)
        scalar = _scalar_loop(estimator, queries)
        assert batch.dtype == np.float64
        assert batch.shape == (n,)
        # exact equality, not allclose: both paths must round
        # identically
        np.testing.assert_array_equal(batch, scalar)

    def test_point_queries_agree_exactly(self, estimator):
        queries = point_queries(DATA, 40, seed=3)
        np.testing.assert_array_equal(
            estimator.estimate_batch(queries),
            _scalar_loop(estimator, queries),
        )

    def test_empty_batch(self, estimator):
        from repro.geometry import RectSet

        out = estimator.estimate_batch(RectSet.empty())
        assert out.shape == (0,)
        assert out.dtype == np.float64


class TestCacheTransparency:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_cache_on_equals_cache_off(self, estimator, seed):
        queries = range_queries(DATA, 0.08, 30, seed=seed)
        reference = estimator.estimate_batch(queries)
        engine = BatchServingEngine(
            estimator, cache_size=64, auto_index=False
        )
        try:
            cold = engine.estimate_batch(queries)
            warm = engine.estimate_batch(queries)
        finally:
            engine.detach_indexes()
        np.testing.assert_array_equal(cold, reference)
        np.testing.assert_array_equal(warm, reference)
        assert engine.cache.hits >= len(queries)

    def test_duplicate_queries_within_one_batch(self, estimator):
        from repro.geometry import RectSet

        base = range_queries(DATA, 0.05, 20, seed=9)
        doubled = RectSet(np.vstack([base.coords, base.coords]))
        reference = estimator.estimate_batch(doubled)
        engine = BatchServingEngine(estimator, auto_index=False)
        np.testing.assert_array_equal(
            engine.estimate_batch(doubled), reference
        )
        # the second copy of each query is answered from the cache on
        # the next call
        np.testing.assert_array_equal(
            engine.estimate_batch(base), reference[:20]
        )

    def test_eviction_preserves_answers(self, estimator):
        queries = range_queries(DATA, 0.05, 40, seed=11)
        reference = estimator.estimate_batch(queries)
        engine = BatchServingEngine(
            estimator, cache_size=8, auto_index=False
        )
        for _ in range(3):
            np.testing.assert_array_equal(
                engine.estimate_batch(queries), reference
            )
        assert engine.cache.evictions > 0

    def test_scalar_path_uses_cache(self, estimator):
        queries = range_queries(DATA, 0.05, 10, seed=13)
        engine = BatchServingEngine(estimator, auto_index=False)
        first = [engine.estimate(q) for q in queries]
        hits_before = engine.cache.hits
        second = [engine.estimate(q) for q in queries]
        assert first == second
        assert engine.cache.hits == hits_before + len(queries)


class TestParallelSweepDeterminism:
    SWEEP_TECHNIQUES = ("Min-Skew", "Sample", "Uniform", "Fractal")

    def _sweep(self, workers, capture):
        data = uniform_rects(700, seed=21)
        queries = range_queries(data, 0.08, 120, seed=22)
        runner = ExperimentRunner(data)
        results, counters = capture(lambda: runner.evaluate_sweep(
            self.SWEEP_TECHNIQUES, queries, 12, n_regions=256,
            workers=workers,
        ))
        return results, counters

    def test_workers_4_byte_identical_to_workers_1(
        self, capture_counters
    ):
        serial, serial_counters = self._sweep(1, capture_counters)
        parallel, parallel_counters = self._sweep(4, capture_counters)
        assert list(serial) == list(parallel)
        for technique in self.SWEEP_TECHNIQUES:
            # dataclass equality compares every float field exactly
            assert serial[technique] == parallel[technique]
        assert serial_counters == parallel_counters

    def test_parallel_map_preserves_order(self):
        from repro.serving import parallel_map

        items = list(range(23))
        assert parallel_map(_double, items, workers=3) == [
            2 * i for i in items
        ]
        assert parallel_map(_double, [], workers=3) == []


def _double(x):
    return 2 * x

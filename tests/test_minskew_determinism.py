"""Regression test: Min-Skew partitioning is byte-for-byte deterministic.

The greedy split search breaks ties by position, the grid is a fixed
function of the data, and nothing in the pipeline consults a random
source — so repeated runs on the same input must produce *identical*
buckets, down to the last float bit.  The test also pins down two easy
ways to lose that property accidentally: turning on split tracing, and
turning on the observability layer (neither may perturb the result).
"""

import numpy as np
import pytest

from repro.core.minskew import MinSkewPartitioner
from repro.data import charminar
from repro.obs import OBS


def _bucket_bytes(buckets):
    """Serialise a bucket list to a canonical byte string."""
    rows = np.array(
        [
            (
                b.bbox.x1, b.bbox.y1, b.bbox.x2, b.bbox.y2,
                float(b.count), b.avg_width, b.avg_height,
                b.avg_density,
            )
            for b in buckets
        ],
        dtype=np.float64,
    )
    return rows.tobytes()


@pytest.fixture(scope="module")
def data():
    return charminar(3_000, seed=13)


@pytest.mark.parametrize("refinements", [0, 1])
def test_repeated_runs_are_byte_identical(data, refinements):
    make = lambda: MinSkewPartitioner(
        24, n_regions=1_024, refinements=refinements
    ).partition(data)
    baseline = _bucket_bytes(make())
    for _ in range(2):
        assert _bucket_bytes(make()) == baseline


def test_fresh_partitioner_matches_reused_partitioner(data):
    part = MinSkewPartitioner(24, n_regions=1_024)
    first = _bucket_bytes(part.partition(data))
    second = _bucket_bytes(part.partition(data))  # reuse: no state leak
    fresh = _bucket_bytes(
        MinSkewPartitioner(24, n_regions=1_024).partition(data)
    )
    assert first == second == fresh


def test_tracing_does_not_change_the_buckets(data):
    plain = MinSkewPartitioner(24, n_regions=1_024)
    traced = MinSkewPartitioner(24, n_regions=1_024, trace=True)
    result = traced.partition_full(data)
    assert _bucket_bytes(plain.partition(data)) == _bucket_bytes(
        result.buckets
    )
    assert len(result.trace) == 23  # one record per greedy split


def test_metrics_collection_does_not_change_the_buckets(data):
    part = MinSkewPartitioner(24, n_regions=1_024, refinements=1)
    assert not OBS.enabled
    disabled = _bucket_bytes(part.partition(data))
    try:
        with OBS.scope():
            enabled = _bucket_bytes(part.partition(data))
    finally:
        OBS.reset()
    assert disabled == enabled

"""Whole-program analysis tests: loader, call graph, rules, wiring.

Covers, in ISSUE order:

* **substrate**: module loading and symbol tables (aliased and
  relative imports, attribute inventories with pickle-hazard flags),
  call-graph construction over a fixture package (aliased imports,
  method resolution through the MRO, cycles);
* **dominance**: the path-sensitive revalidate-before-read analysis
  on straight-line code, branches, loops and try/except;
* **the five cross-module rules** on small fixture packages, each
  with a firing and a clean variant;
* **reporters**: JSON and SARIF round-trips through their validators;
* **baseline**: write/load/apply round-trip and corruption errors;
* **CLI**: the ``--project``/``--baseline``/``--sarif`` surface;
* **the real tree**: ``src/`` lints clean under the project pass;
* **mutation self-test**: deleting the ``_revalidate()`` call or the
  ``__setstate__`` hook from a copy of the serving package flips the
  project pass non-zero — proof the rules guard what they claim to.
"""

import ast
import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    PROJECT_RULES,
    RULES,
    apply_baseline,
    fingerprint,
    lint_json_dict,
    lint_project,
    load_baseline,
    load_project,
    sarif_dict,
    validate_lint_json,
    validate_sarif,
    write_baseline,
)
from repro.analysis.project import CallGraph, undominated_reads
from repro.analysis.project.dominance import EVENT_READ, \
    EVENT_REVALIDATE
from repro.cli import main
from repro.errors import ValidationError

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


# ----------------------------------------------------------------------
# fixture helpers
# ----------------------------------------------------------------------
def write_package(root, modules):
    """Materialise ``{relpath: source}`` under a ``repro`` package.

    The loader anchors module names at the last ``repro`` path
    component, so fixture trees live under ``tmp/repro/…`` and get
    real ``repro.…`` qualified names.
    """
    pkg = root / "repro"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for rel, source in modules.items():
        target = pkg / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        parent = target.parent
        while parent != pkg:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
        target.write_text(textwrap.dedent(source))
    return pkg


def project_of(root, modules):
    pkg = write_package(root, modules)
    project, parse_errors = load_project(
        sorted(pkg.rglob("*.py"))
    )
    assert not parse_errors
    return project


def rule_findings(code, project, config=DEFAULT_CONFIG):
    rule = PROJECT_RULES[code](project, config)
    return rule.run()


# ----------------------------------------------------------------------
# loader and symbol tables
# ----------------------------------------------------------------------
class TestLoader:
    def test_classes_functions_and_methods_indexed(self, tmp_path):
        project = project_of(tmp_path, {
            "core.py": """
                class Histogram:
                    def build(self):
                        return 1

                def top():
                    return 2
            """,
        })
        assert "repro.core.Histogram" in project.classes
        assert "repro.core.top" in project.functions
        assert "repro.core.Histogram.build" in project.functions
        info = project.classes["repro.core.Histogram"]
        assert info.defines("build")
        assert not info.defines("missing")

    def test_relative_and_aliased_imports_resolve(self, tmp_path):
        project = project_of(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    pass
            """,
            "serving/router.py": """
                from .engine import Engine as Eng
                import repro.serving.engine as eng_mod

                def make():
                    return Eng()
            """,
        })
        aliases = project.module_aliases["repro.serving.router"]
        assert aliases["Eng"] == "repro.serving.engine.Engine"
        assert aliases["eng_mod"] == "repro.serving.engine"
        resolved = project.resolve_dotted(
            "repro.serving.router", ["Eng"]
        )
        assert resolved == "repro.serving.engine.Engine"

    def test_reexport_canonicalization(self, tmp_path):
        project = project_of(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    pass
            """,
            "serving/__init__.py": """
                from .engine import Engine
            """,
            "app.py": """
                from repro.serving import Engine

                def make():
                    return Engine()
            """,
        })
        resolved = project.resolve_dotted("repro.app", ["Engine"])
        assert resolved == "repro.serving.engine.Engine"

    def test_attribute_inventory_flags_hazards(self, tmp_path):
        project = project_of(tmp_path, {
            "state.py": """
                import threading

                class Held:
                    pass

                class Carrier:
                    def __init__(self, est):
                        self._observed = {id(est): est}
                        self._lock = threading.Lock()
                        self._gen = (x for x in range(3))
                        self.child = Held()
                        self.plain = 4
            """,
        })
        info = project.classes["repro.state.Carrier"]
        attrs = info.attributes
        assert attrs["_observed"].id_keyed
        assert attrs["_lock"].lock
        assert attrs["_gen"].generator
        assert not attrs["plain"].risky
        assert attrs["child"].held_classes == {"repro.state.Held"}

    def test_mro_walks_project_bases(self, tmp_path):
        project = project_of(tmp_path, {
            "base.py": """
                class Base:
                    def sync(self):
                        pass
            """,
            "derived.py": """
                from .base import Base

                class Derived(Base):
                    pass
            """,
        })
        assert project.defines_or_inherits(
            "repro.derived.Derived", ("sync",)
        )
        method = project.find_method("repro.derived.Derived", "sync")
        assert method is not None
        assert method.qualname == "repro.base.Base.sync"


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_aliased_cross_module_edge(self, tmp_path):
        project = project_of(tmp_path, {
            "util.py": """
                def helper():
                    return 1
            """,
            "app.py": """
                from .util import helper as h

                def run():
                    return h()
            """,
        })
        graph = CallGraph.build(project)
        callees = [
            s.callee for s in graph.callees_of("repro.app.run")
        ]
        assert callees == ["repro.util.helper"]

    def test_self_method_resolution_through_mro(self, tmp_path):
        project = project_of(tmp_path, {
            "base.py": """
                class Base:
                    def shared(self):
                        return 0
            """,
            "app.py": """
                from .base import Base

                class App(Base):
                    def run(self):
                        return self.shared()
            """,
        })
        graph = CallGraph.build(project)
        callees = [
            s.callee
            for s in graph.callees_of("repro.app.App.run")
        ]
        assert callees == ["repro.base.Base.shared"]

    def test_constructor_edge_and_receiver_inference(self, tmp_path):
        project = project_of(tmp_path, {
            "engine.py": """
                class Engine:
                    def serve(self):
                        return 1
            """,
            "app.py": """
                from .engine import Engine

                def run():
                    engine = Engine()
                    return engine.serve()
            """,
        })
        graph = CallGraph.build(project)
        callees = {
            s.callee for s in graph.callees_of("repro.app.run")
        }
        assert callees == {
            "repro.engine.Engine",
            "repro.engine.Engine.serve",
        }

    def test_cyclic_calls_terminate(self, tmp_path):
        project = project_of(tmp_path, {
            "cyc.py": """
                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    return ping(n - 1)
            """,
        })
        graph = CallGraph.build(project)
        assert [
            s.callee for s in graph.callees_of("repro.cyc.ping")
        ] == ["repro.cyc.pong"]
        assert [
            s.callee for s in graph.callees_of("repro.cyc.pong")
        ] == ["repro.cyc.ping"]


# ----------------------------------------------------------------------
# dominance analysis
# ----------------------------------------------------------------------
def _dominance(body):
    source = "def probe(self):\n" + textwrap.indent(
        textwrap.dedent(body), "    "
    )
    node = ast.parse(source).body[0]

    def classify(call):
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "_revalidate":
                return EVENT_REVALIDATE
            if func.attr == "lookup":
                return EVENT_READ
        return None

    return undominated_reads(node, classify)


class TestDominance:
    def test_straight_line_dominated(self):
        assert _dominance("""
            self._revalidate()
            return self.cache.lookup(key)
        """) == []

    def test_read_before_revalidate_fires(self):
        assert len(_dominance("""
            value = self.cache.lookup(key)
            self._revalidate()
            return value
        """)) == 1

    def test_both_branches_must_revalidate(self):
        assert _dominance("""
            if fast:
                self._revalidate()
            else:
                self._revalidate()
            return self.cache.lookup(key)
        """) == []
        assert len(_dominance("""
            if fast:
                self._revalidate()
            return self.cache.lookup(key)
        """)) == 1

    def test_terminated_branch_excluded_from_join(self):
        assert _dominance("""
            if bad:
                raise ValueError("no")
            self._revalidate()
            return self.cache.lookup(key)
        """) == []

    def test_loop_revalidate_does_not_escape(self):
        # The loop body may run zero times.
        assert len(_dominance("""
            for item in items:
                self._revalidate()
            return self.cache.lookup(key)
        """)) == 1

    def test_try_body_must_not_be_assumed(self):
        assert len(_dominance("""
            try:
                self._revalidate()
            except RuntimeError:
                pass
            return self.cache.lookup(key)
        """)) == 1


# ----------------------------------------------------------------------
# EPOCH001
# ----------------------------------------------------------------------
_EPOCH_CLEAN = {
    "serving/engine.py": """
        class Engine:
            def _revalidate(self):
                self.epoch = 1

            def estimate(self, key):
                self._revalidate()
                return self.cache.lookup(key)

            def estimate_batch(self, keys):
                self._revalidate()
                return self._serve(keys)

            def _serve(self, keys):
                return self.cache.lookup_batch(keys)
    """,
}


class TestEpoch001:
    def test_clean_engine_passes(self, tmp_path):
        project = project_of(tmp_path, _EPOCH_CLEAN)
        assert rule_findings("EPOCH001", project) == []

    def test_undominated_public_read_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def _revalidate(self):
                        self.epoch = 1

                    def estimate(self, key):
                        return self.cache.lookup(key)
            """,
        })
        found = rule_findings("EPOCH001", project)
        assert len(found) == 1
        assert found[0].rule == "EPOCH001"
        assert "Engine.estimate" in found[0].message

    def test_undominated_call_to_needy_private_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def _revalidate(self):
                        self.epoch = 1

                    def estimate_batch(self, keys):
                        return self._serve(keys)

                    def _serve(self, keys):
                        return self.cache.lookup_batch(keys)
            """,
        })
        found = rule_findings("EPOCH001", project)
        assert len(found) == 1
        assert "_serve" in found[0].message

    def test_index_probe_needs_sync(self, tmp_path):
        project = project_of(tmp_path, {
            "estimators/bucket.py": """
                class BucketEstimator:
                    def sync(self):
                        self.epoch = 1

                    def probe(self, rect):
                        return self._index.candidates(rect)
            """,
        })
        found = rule_findings("EPOCH001", project)
        assert len(found) == 1
        assert "candidates" in found[0].message

    def test_out_of_scope_package_ignored(self, tmp_path):
        project = project_of(tmp_path, {
            "viz/plot.py": """
                class Plotter:
                    def _revalidate(self):
                        pass

                    def draw(self, key):
                        return self.cache.lookup(key)
            """,
        })
        assert rule_findings("EPOCH001", project) == []

    def test_nonself_bucket_store_fires_in_tuning(self, tmp_path):
        """``repro.tuning`` is in EPOCH001 scope: a tuner that swaps
        the summary directly instead of publishing through
        ``replace_buckets`` (the atomic epoch bump) is a finding."""
        project = project_of(tmp_path, {
            "tuning/feedback.py": """
                class Tuner:
                    def tune(self, hist, buckets):
                        hist.buckets = buckets
            """,
        })
        found = rule_findings("EPOCH001", project)
        assert len(found) == 1
        assert "replace_buckets" in found[0].message

    def test_bucket_store_via_attribute_chain_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "serving/shard.py": """
                class Shard:
                    def adopt(self, buckets):
                        self.hist.buckets = buckets
            """,
        })
        found = rule_findings("EPOCH001", project)
        assert len(found) == 1
        assert "epoch bump" in found[0].message

    def test_epoch_publish_path_is_clean(self, tmp_path):
        """Publishing through ``replace_buckets`` — and the owner's
        own ``self.buckets`` store inside it — is the sanctioned
        path."""
        project = project_of(tmp_path, {
            "tuning/feedback.py": """
                class Tuner:
                    def tune(self, hist, buckets):
                        hist.replace_buckets(buckets)
            """,
            "estimators/maintained.py": """
                class MaintainedEstimator:
                    def sync(self):
                        self.buckets = list(self._histogram.buckets)
            """,
        })
        assert rule_findings("EPOCH001", project) == []

    def test_bucket_store_outside_scope_ignored(self, tmp_path):
        project = project_of(tmp_path, {
            "viz/plot.py": """
                def restyle(hist, buckets):
                    hist.buckets = buckets
            """,
        })
        assert rule_findings("EPOCH001", project) == []


# ----------------------------------------------------------------------
# PICKLE001
# ----------------------------------------------------------------------
class TestPickle001:
    def test_one_sided_hook_pair_fires_anywhere(self, tmp_path):
        project = project_of(tmp_path, {
            "anywhere.py": """
                class Half:
                    def __getstate__(self):
                        return {}
            """,
        })
        found = rule_findings("PICKLE001", project)
        assert len(found) == 1
        assert "__setstate__" in found[0].message

    def test_reachable_risky_class_without_hooks_fires(
        self, tmp_path
    ):
        # Engine is never passed to the boundary directly — it is
        # reachable only as a held attribute of the pickled Shard.
        project = project_of(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def __init__(self, est):
                        self._observed = {id(est): est}
            """,
            "serving/shard.py": """
                from .engine import Engine

                class Shard:
                    def __init__(self):
                        self.engine = Engine(None)
            """,
            "serving/router.py": """
                import pickle
                from .shard import Shard

                def snapshot():
                    shard = Shard()
                    return pickle.dumps(shard)
            """,
        })
        found = rule_findings("PICKLE001", project)
        assert len(found) == 1
        assert "Engine" in found[0].message
        assert "id()-keyed dict" in found[0].message

    def test_hook_pair_silences_reachability(self, tmp_path):
        project = project_of(tmp_path, {
            "serving/engine.py": """
                import pickle

                class Engine:
                    def __init__(self, est):
                        self._observed = {id(est): est}

                    def __getstate__(self):
                        return {}

                    def __setstate__(self, state):
                        self._observed = {}

                def snapshot(engine):
                    engine = Engine(None)
                    return pickle.dumps(engine)
            """,
        })
        assert rule_findings("PICKLE001", project) == []


# ----------------------------------------------------------------------
# SEED001
# ----------------------------------------------------------------------
class TestSeed001:
    def test_module_global_seed_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "gen.py": """
                import numpy as np

                GLOBAL_SEED = 7

                def sample():
                    rng = np.random.default_rng(GLOBAL_SEED)
                    return rng
            """,
        })
        found = rule_findings("SEED001", project)
        assert len(found) == 1
        assert "GLOBAL_SEED" in found[0].message

    def test_explicit_none_seed_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "gen.py": """
                import numpy as np

                def sample():
                    return np.random.default_rng(None)
            """,
        })
        found = rule_findings("SEED001", project)
        assert len(found) == 1
        assert "None" in found[0].message

    def test_parameter_threaded_seed_is_clean(self, tmp_path):
        project = project_of(tmp_path, {
            "gen.py": """
                import numpy as np

                def sample(seed):
                    return np.random.default_rng(seed)

                def caller(seed=0):
                    return sample(seed)
            """,
        })
        assert rule_findings("SEED001", project) == []

    def test_call_omitting_none_default_seed_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "gen.py": """
                import numpy as np

                def sample(n, seed=None):
                    return np.random.default_rng(seed)

                def caller():
                    return sample(10)
            """,
        })
        found = rule_findings("SEED001", project)
        assert len(found) == 1
        assert "leaves seed parameter 'seed'" in found[0].message

    def test_global_passed_up_a_call_edge_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "gen.py": """
                import numpy as np

                ENTROPY = 13

                def sample(seed):
                    return np.random.default_rng(seed)

                def caller():
                    return sample(ENTROPY)
            """,
        })
        found = rule_findings("SEED001", project)
        assert len(found) == 1
        assert "ENTROPY" in found[0].message

    def test_literal_seed_is_clean(self, tmp_path):
        project = project_of(tmp_path, {
            "gen.py": """
                import numpy as np

                def sample():
                    return np.random.default_rng(42)
            """,
        })
        assert rule_findings("SEED001", project) == []


# ----------------------------------------------------------------------
# ORDER001
# ----------------------------------------------------------------------
class TestOrder001:
    def test_sum_over_set_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "core/acc.py": """
                def total(weights):
                    chosen = set(weights)
                    return sum(w for w in chosen)
            """,
        })
        found = rule_findings("ORDER001", project)
        assert len(found) == 1
        assert "sorted" in found[0].message

    def test_loop_accumulation_over_set_fires(self, tmp_path):
        project = project_of(tmp_path, {
            "estimators/acc.py": """
                def total(buckets):
                    acc = 0.0
                    for b in buckets | {1.5}:
                        acc += b
                    return acc
            """,
        })
        assert len(rule_findings("ORDER001", project)) == 1

    def test_sorted_iteration_is_clean(self, tmp_path):
        project = project_of(tmp_path, {
            "core/acc.py": """
                def total(weights):
                    chosen = set(weights)
                    return sum(w for w in sorted(chosen))
            """,
        })
        assert rule_findings("ORDER001", project) == []

    def test_outside_kernel_packages_ignored(self, tmp_path):
        project = project_of(tmp_path, {
            "viz/acc.py": """
                def total(weights):
                    return sum(w for w in set(weights))
            """,
        })
        assert rule_findings("ORDER001", project) == []


# ----------------------------------------------------------------------
# SUP001 and the lint_project driver
# ----------------------------------------------------------------------
class TestSup001AndDriver:
    def test_unused_suppression_is_a_finding(self, tmp_path):
        write_package(tmp_path, {
            "clean.py": """
                x = 1  # repro: noqa[DET001]
            """,
        })
        result = lint_project([tmp_path / "repro"])
        assert [v.rule for v in result.violations] == ["SUP001"]
        assert "DET001" in result.violations[0].message

    def test_used_suppression_is_clean_and_suppresses(self, tmp_path):
        write_package(tmp_path, {
            "timed.py": """
                import time

                def now():
                    return time.time()  # repro: noqa[DET001]
            """,
        })
        result = lint_project([tmp_path / "repro"])
        assert result.ok, [v.format() for v in result.violations]

    def test_noqa_text_in_docstring_is_not_a_suppression(
        self, tmp_path
    ):
        write_package(tmp_path, {
            "doc.py": '''
                def f():
                    """Write ``# repro: noqa[DET001]`` to waive."""
                    return 1
            ''',
        })
        result = lint_project([tmp_path / "repro"])
        assert result.ok, [v.format() for v in result.violations]

    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        write_package(tmp_path, {
            "bad.py": """
                def broken(:
            """,
            "good.py": """
                x = 1
            """,
        })
        result = lint_project([tmp_path / "repro"])
        assert [v.rule for v in result.violations] == ["PARSE"]


# ----------------------------------------------------------------------
# reporters: JSON and SARIF round-trips
# ----------------------------------------------------------------------
class TestReporters:
    def _result_with_findings(self, tmp_path):
        write_package(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def _revalidate(self):
                        self.epoch = 1

                    def estimate(self, key):
                        return self.cache.lookup(key)
            """,
        })
        return lint_project([tmp_path / "repro"])

    def test_json_round_trip(self, tmp_path):
        result = self._result_with_findings(tmp_path)
        doc = json.loads(json.dumps(lint_json_dict(result)))
        validate_lint_json(doc)
        assert doc["summary"]["by_rule"] == {"EPOCH001": 1}

    def test_sarif_round_trip(self, tmp_path):
        result = self._result_with_findings(tmp_path)
        doc = json.loads(json.dumps(sarif_dict(result)))
        validate_sarif(doc)
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [r["ruleId"] for r in run["results"]] == ["EPOCH001"]
        region = run["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_sarif_declares_every_fired_rule(self, tmp_path):
        result = self._result_with_findings(tmp_path)
        doc = sarif_dict(result)
        declared = {
            r["id"]
            for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        fired = {
            r["ruleId"] for r in doc["runs"][0]["results"]
        }
        assert fired <= declared


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_hides_baselined_findings(self, tmp_path):
        write_package(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def _revalidate(self):
                        self.epoch = 1

                    def estimate(self, key):
                        return self.cache.lookup(key)
            """,
        })
        result = lint_project([tmp_path / "repro"])
        assert not result.ok
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(result, baseline_path)
        assert count == 1
        prints = load_baseline(baseline_path)
        assert prints == {fingerprint(result.violations[0])}
        filtered = apply_baseline(result, prints)
        assert filtered.ok
        assert filtered.files_checked == result.files_checked

    def test_corrupt_baseline_raises_validation_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            load_baseline(bad)
        bad.write_text('{"version": 99, "fingerprints": []}')
        with pytest.raises(ValidationError):
            load_baseline(bad)
        with pytest.raises(ValidationError):
            load_baseline(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_project_pass_exits_on_findings(self, tmp_path, capsys):
        write_package(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def _revalidate(self):
                        self.epoch = 1

                    def estimate(self, key):
                        return self.cache.lookup(key)
            """,
        })
        code = main(["lint", "--project", str(tmp_path / "repro")])
        out = capsys.readouterr().out
        assert code == 1
        assert "EPOCH001" in out

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        write_package(tmp_path, {
            "serving/engine.py": """
                class Engine:
                    def _revalidate(self):
                        self.epoch = 1

                    def estimate(self, key):
                        return self.cache.lookup(key)
            """,
        })
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", "--project", str(tmp_path / "repro"),
            "--write-baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", "--project", str(tmp_path / "repro"),
            "--baseline", str(baseline),
        ]) == 0
        assert "clean" in capsys.readouterr().out

    def test_sarif_output_and_file(self, tmp_path, capsys):
        write_package(tmp_path, {"ok.py": "x = 1\n"})
        sarif_path = tmp_path / "out.sarif"
        assert main([
            "lint", "--project", str(tmp_path / "repro"),
            "--format", "sarif", "--sarif", str(sarif_path),
        ]) == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        validate_sarif(stdout_doc)
        validate_sarif(json.loads(sarif_path.read_text()))

    def test_list_rules_shows_both_registries(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in list(RULES) + list(PROJECT_RULES):
            assert code in out
        assert "[project]" in out


# ----------------------------------------------------------------------
# the real tree, and the mutation self-test
# ----------------------------------------------------------------------
class TestRealTree:
    def test_src_lints_clean_under_project_pass(self):
        result = lint_project([SRC])
        assert result.ok, "\n".join(
            v.format() for v in result.violations
        )

    def test_committed_baseline_is_empty(self):
        prints = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert prints == frozenset()


@pytest.fixture()
def tree_copy(tmp_path):
    target = tmp_path / "repro"
    shutil.copytree(SRC / "repro", target)
    return target


class TestMutationSelfTest:
    """Deleting a protocol obligation must flip the pass non-zero."""

    def test_unmutated_copy_is_clean(self, tree_copy):
        assert lint_project([tree_copy]).ok

    def test_removing_revalidate_call_fires_epoch001(self, tree_copy):
        engine = tree_copy / "serving" / "engine.py"
        source = engine.read_text()
        guarded = (
            "self._revalidate()\n"
            "            values = self._serve(queries)"
        )
        assert guarded in source, (
            "estimate_batch no longer matches the mutation template; "
            "update this test alongside the engine"
        )
        engine.write_text(source.replace(
            guarded, "values = self._serve(queries)"
        ))
        result = lint_project([tree_copy])
        assert any(
            v.rule == "EPOCH001" for v in result.violations
        ), "\n".join(v.format() for v in result.violations)

    def test_removing_setstate_fires_pickle001(self, tree_copy):
        engine = tree_copy / "serving" / "engine.py"
        source = engine.read_text()
        tree = ast.parse(source)
        span = None
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "__setstate__":
                span = (node.lineno, node.end_lineno)
                break
        assert span is not None
        lines = source.splitlines(keepends=True)
        del lines[span[0] - 1:span[1]]
        engine.write_text("".join(lines))
        result = lint_project([tree_copy])
        pickled = [
            v for v in result.violations if v.rule == "PICKLE001"
        ]
        assert pickled, "\n".join(
            v.format() for v in result.violations
        )
        # both the pair check and the reachability check fire
        assert any(
            "crosses a pickle boundary" in v.message for v in pickled
        )
        assert any(
            "without __setstate__" in v.message for v in pickled
        )

    def test_removing_deadline_check_fires_res002(self, tree_copy):
        parallel = tree_copy / "serving" / "parallel.py"
        source = parallel.read_text()
        guarded = (
            'deadline.check(f"reply from shard {shard_id}")\n'
        )
        assert guarded in source, (
            "_recv_reply no longer matches the mutation template; "
            "update this test alongside the worker pool"
        )
        parallel.write_text(source.replace(guarded, "pass\n"))
        result = lint_project([tree_copy])
        fired = [
            v for v in result.violations if v.rule == "RES002"
        ]
        assert fired, "\n".join(
            v.format() for v in result.violations
        )
        assert any(
            "not dominated by a deadline" in v.message
            for v in fired
        )
        assert main(["lint", "--project", str(tree_copy)]) == 1

    def test_bypassing_replace_buckets_fires_epoch001(
        self, tree_copy
    ):
        """Swapping the tuner's atomic publish for a direct
        ``hist.buckets = ...`` store must flip the pass."""
        feedback = tree_copy / "tuning" / "feedback.py"
        source = feedback.read_text()
        guarded = "hist.replace_buckets(buckets)"
        assert guarded in source, (
            "the tuner no longer matches the mutation template; "
            "update this test alongside the feedback tuner"
        )
        feedback.write_text(source.replace(
            guarded, "hist.buckets = list(buckets)"
        ))
        result = lint_project([tree_copy])
        fired = [
            v for v in result.violations if v.rule == "EPOCH001"
        ]
        assert fired, "\n".join(
            v.format() for v in result.violations
        )
        assert any(
            "replace_buckets" in v.message for v in fired
        )

    def test_cli_exits_nonzero_on_mutated_tree(self, tree_copy):
        engine = tree_copy / "serving" / "engine.py"
        source = engine.read_text()
        engine.write_text(source.replace(
            "self._revalidate()\n"
            "            values = self._serve(queries)",
            "values = self._serve(queries)",
        ))
        assert main(["lint", "--project", str(tree_copy)]) == 1

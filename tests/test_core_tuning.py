"""Tests for Min-Skew configuration tuning (the paper's open problem)."""

import pytest

from repro.core import MinSkewPartitioner, tune_min_skew
from repro.data import charminar
from repro.geometry import RectSet


class TestValidation:
    def test_empty_data(self):
        with pytest.raises(ValueError):
            tune_min_skew(RectSet.empty(), 10)

    def test_bad_truth_mode(self, small_nj_road):
        with pytest.raises(ValueError, match="truth"):
            tune_min_skew(small_nj_road, 10, truth="psychic")

    def test_empty_candidates(self, small_nj_road):
        with pytest.raises(ValueError, match="non-empty"):
            tune_min_skew(small_nj_road, 10, region_candidates=())


class TestTuning:
    def test_sweeps_all_candidates(self, small_nj_road):
        result = tune_min_skew(
            small_nj_road,
            20,
            region_candidates=(100, 400),
            refinement_candidates=(0, 1),
            n_queries=50,
            seed=3,
        )
        assert len(result.candidates) == 4
        assert result.error == min(c.error for c in result.candidates)
        assert result.n_regions in (100, 400)
        assert result.refinements in (0, 1)

    def test_make_partitioner(self, small_nj_road):
        result = tune_min_skew(
            small_nj_road, 20,
            region_candidates=(400,),
            refinement_candidates=(0,),
            n_queries=50,
        )
        partitioner = result.make_partitioner(20)
        assert isinstance(partitioner, MinSkewPartitioner)
        assert partitioner.n_regions == 400
        buckets = partitioner.partition(small_nj_road)
        assert len(buckets) == 20

    def test_sample_truth_close_to_exact(self, small_nj_road):
        """Sample-based truth should usually pick a config whose exact
        validation error is competitive with the exact-truth pick."""
        kwargs = dict(
            region_candidates=(100, 1_600),
            refinement_candidates=(0,),
            n_queries=100,
            seed=4,
        )
        exact = tune_min_skew(small_nj_road, 20, truth="exact",
                              **kwargs)
        sampled = tune_min_skew(small_nj_road, 20, truth="sample",
                                truth_sample_size=2_000, **kwargs)
        exact_by_config = {
            (c.n_regions, c.refinements): c.error
            for c in exact.candidates
        }
        chosen = exact_by_config[(sampled.n_regions,
                                  sampled.refinements)]
        assert chosen <= 2.0 * exact.error + 0.02

    def test_avoids_anomalous_config_on_charminar(self):
        """The tuner must not pick the pathological fine-grid/zero-
        refinement configuration the Figure 10(b) anomaly punishes —
        its chosen config must score clearly better on large queries
        than the worst candidate."""
        data = charminar(20_000, seed=77)
        result = tune_min_skew(
            data,
            50,
            region_candidates=(400, 30_000),
            refinement_candidates=(0, 4),
            qsizes=(0.25,),
            n_queries=200,
            seed=5,
        )
        worst = max(c.error for c in result.candidates)
        assert result.error < worst
        # and specifically not the known-bad corner of the grid
        assert not (
            result.n_regions == 30_000 and result.refinements == 0
        ) or result.error <= min(
            c.error for c in result.candidates
        ) + 1e-12

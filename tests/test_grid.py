"""Tests for density grids, integral images, and split search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet
from repro.grid import (
    BlockStats,
    DensityGrid,
    best_split_of_marginal,
    square_grid_shape,
)

from .test_rtree_rstar import random_rectset


class TestDensityGrid:
    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            DensityGrid(np.zeros(5), Rect(0, 0, 1, 1))
        with pytest.raises(ValueError, match="positive area"):
            DensityGrid(np.zeros((2, 2)), Rect(0, 0, 0, 1))
        with pytest.raises(ValueError, match="positive"):
            DensityGrid.from_rects(
                RectSet(np.array([[0.0, 0.0, 1.0, 1.0]])), 0, 5
            )

    def test_single_rect_single_cell(self):
        rs = RectSet(np.array([[0.0, 0.0, 10.0, 10.0]]))
        g = DensityGrid.from_rects(rs, 1, 1)
        assert g.densities[0, 0] == 1.0

    def test_densities_match_bruteforce(self):
        rs = random_rectset(800, seed=30)
        g = DensityGrid.from_rects(rs, 16, 12)
        for ix in range(0, 16, 5):
            for iy in range(0, 12, 4):
                cell = g.cell_rect(ix, iy)
                assert g.densities[ix, iy] == \
                    rs.count_intersecting(cell), (ix, iy)

    def test_rect_spanning_cells_counts_in_each(self):
        # one rect covering the full 4x4 grid: density 1 everywhere
        rs = RectSet(np.array([[0.0, 0.0, 100.0, 100.0]]))
        g = DensityGrid.from_rects(rs, 4, 4,
                                   bounds=Rect(0, 0, 100, 100))
        assert (g.densities == 1.0).all()

    def test_cell_geometry(self):
        rs = RectSet(np.array([[0.0, 0.0, 100.0, 50.0]]))
        g = DensityGrid.from_rects(rs, 10, 5)
        assert g.cell_width == 10.0
        assert g.cell_height == 10.0
        assert g.cell_rect(0, 0).as_tuple() == (0, 0, 10, 10)
        assert g.cell_rect(9, 4).as_tuple() == (90, 40, 100, 50)
        with pytest.raises(IndexError):
            g.cell_rect(10, 0)

    def test_block_rect(self):
        rs = RectSet(np.array([[0.0, 0.0, 100.0, 100.0]]))
        g = DensityGrid.from_rects(rs, 10, 10)
        assert g.block_rect(2, 4, 3, 5).as_tuple() == (20, 30, 50, 60)
        with pytest.raises(IndexError):
            g.block_rect(4, 2, 0, 0)  # ix0 > ix1

    def test_refined_doubles_resolution(self):
        rs = random_rectset(200, seed=31)
        g = DensityGrid.from_rects(rs, 8, 8)
        fine = g.refined()
        assert fine.shape() == (16, 16)
        # refined densities are recomputed, not subdivided: a coarse
        # cell's density is at most the sum of its fine children but at
        # least their max
        coarse = g.densities
        blocks = fine.densities.reshape(8, 2, 8, 2)
        child_max = blocks.max(axis=(1, 3))
        child_sum = blocks.sum(axis=(1, 3))
        assert (coarse >= child_max - 1e-9).all()
        assert (coarse <= child_sum + 1e-9).all()

    def test_refined_without_source_raises(self):
        g = DensityGrid(np.ones((2, 2)), Rect(0, 0, 1, 1))
        with pytest.raises(ValueError, match="source"):
            g.refined()

    def test_from_points(self):
        pts = np.array([[0.5, 0.5], [9.5, 9.5], [9.9, 9.9]])
        g = DensityGrid.from_points(pts, 2, 2, bounds=Rect(0, 0, 10, 10))
        assert g.densities[0, 0] == 1
        assert g.densities[1, 1] == 2
        assert g.total_density() == 3

    def test_total_density_at_least_n(self):
        rs = random_rectset(300, seed=32)
        g = DensityGrid.from_rects(rs, 20, 20)
        # every rect hits >= 1 cell
        assert g.total_density() >= 300


class TestSquareGridShape:
    def test_square_bounds(self):
        nx, ny = square_grid_shape(10_000, Rect(0, 0, 100, 100))
        assert nx == 100 and ny == 100

    def test_rectangular_bounds_keeps_cells_square(self):
        bounds = Rect(0, 0, 400, 100)
        nx, ny = square_grid_shape(10_000, bounds)
        cell_w = bounds.width / nx
        cell_h = bounds.height / ny
        assert cell_w == pytest.approx(cell_h, rel=0.1)
        assert abs(nx * ny - 10_000) < 0.1 * 10_000

    def test_tiny(self):
        assert square_grid_shape(1, Rect(0, 0, 1, 1)) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            square_grid_shape(0, Rect(0, 0, 1, 1))


class TestBlockStats:
    @pytest.fixture(scope="class")
    def values(self):
        gen = np.random.default_rng(33)
        return gen.integers(0, 50, (14, 9)).astype(float)

    @pytest.fixture(scope="class")
    def stats(self, values):
        return BlockStats(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockStats(np.zeros(4))

    @pytest.mark.parametrize(
        "block", [(0, 13, 0, 8), (0, 0, 0, 0), (3, 7, 2, 6), (13, 13, 8, 8)]
    )
    def test_block_aggregates(self, values, stats, block):
        ix0, ix1, iy0, iy1 = block
        sub = values[ix0:ix1 + 1, iy0:iy1 + 1]
        assert stats.block_sum(*block) == pytest.approx(sub.sum())
        assert stats.block_sumsq(*block) == pytest.approx((sub ** 2).sum())
        assert stats.block_mean(*block) == pytest.approx(sub.mean())
        assert stats.block_sse(*block) == pytest.approx(
            ((sub - sub.mean()) ** 2).sum(), abs=1e-6
        )
        assert stats.block_variance(*block) == pytest.approx(
            sub.var(), abs=1e-9
        )

    def test_marginals(self, values, stats):
        block = (2, 9, 1, 7)
        sub = values[2:10, 1:8]
        np.testing.assert_allclose(
            stats.marginal_x(*block), sub.sum(axis=1)
        )
        np.testing.assert_allclose(
            stats.marginal_y(*block), sub.sum(axis=0)
        )

    def test_sse_tiny_on_constant(self):
        """Float cancellation may leave epsilon SSE, never negative."""
        stats = BlockStats(np.full((6, 6), 3.7))
        sse = stats.block_sse(0, 5, 0, 5)
        assert 0.0 <= sse < 1e-9


class TestBestSplit:
    def test_too_short(self):
        assert best_split_of_marginal(np.array([5.0])) == (0, 0.0)
        assert best_split_of_marginal(np.array([])) == (0, 0.0)

    def test_obvious_step(self):
        k, red = best_split_of_marginal(
            np.array([1.0, 1.0, 1.0, 9.0, 9.0, 9.0])
        )
        assert k == 3
        assert red > 0

    def test_constant_gives_zero_reduction(self):
        k, red = best_split_of_marginal(np.full(10, 4.0))
        assert red == 0.0
        assert 1 <= k <= 9

    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=2,
                 max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_split_is_optimal(self, data):
        m = np.asarray(data)
        k, red = best_split_of_marginal(m)

        def sse(v):
            return ((v - v.mean()) ** 2).sum() if v.size else 0.0

        whole = sse(m)
        best_red = max(
            whole - sse(m[:j]) - sse(m[j:]) for j in range(1, len(m))
        )
        assert red == pytest.approx(max(best_red, 0.0), abs=1e-4)
        assert 1 <= k < len(m)

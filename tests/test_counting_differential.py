"""Differential test of the exact-counting oracles.

Three independent ways of counting rectangle intersections must agree
on every workload:

* ``brute_force_counts`` — the chunked vectorised scan (closed
  intersection by direct comparison);
* ``ExactCountOracle`` — inclusion–exclusion over miss classes, with
  the four 2-D terms answered by the Fenwick-tree dominance sweep;
* ``RStarTree.count`` — index traversal with contained-subtree
  shortcuts.

The randomized workloads deliberately include the places the
implementations could diverge: coordinates drawn from a tiny integer
lattice (massive ties, so every strict-vs-closed boundary decision is
exercised), degenerate data (points, horizontal/vertical segments,
duplicates), and degenerate queries (zero-area lines and points placed
exactly on data corners).
"""

import numpy as np
import pytest

from repro.counting import ExactCountOracle, brute_force_counts
from repro.geometry import RectSet
from repro.rtree import RStarTree


def _lattice_rects(rng, n, size):
    """Random rectangles on an integer lattice (ties everywhere);
    roughly a third collapse to segments or points."""
    x = np.sort(rng.integers(0, size, (n, 2)), axis=1)
    y = np.sort(rng.integers(0, size, (n, 2)), axis=1)
    collapse_x = rng.random(n) < 0.2
    collapse_y = rng.random(n) < 0.2
    x[collapse_x, 1] = x[collapse_x, 0]
    y[collapse_y, 1] = y[collapse_y, 0]
    coords = np.column_stack((x[:, 0], y[:, 0], x[:, 1], y[:, 1]))
    return RectSet(coords.astype(np.float64))


def _float_rects(rng, n, span):
    x = np.sort(rng.uniform(0, span, (n, 2)), axis=1)
    y = np.sort(rng.uniform(0, span, (n, 2)), axis=1)
    coords = np.column_stack((x[:, 0], y[:, 0], x[:, 1], y[:, 1]))
    return RectSet(coords)


def _degenerate_queries(data, rng, n):
    """Zero-area queries: points and axis-aligned lines, half of them
    pinned exactly onto data corner coordinates to force ties."""
    c = data.coords
    pick = rng.integers(0, len(data), n)
    x = np.where(rng.random(n) < 0.5, c[pick, 0], c[pick, 2])
    y = np.where(rng.random(n) < 0.5, c[pick, 1], c[pick, 3])
    jitter = rng.random(n) < 0.5
    x = np.where(jitter, x + rng.uniform(-1, 1, n), x)
    y = np.where(jitter, y + rng.uniform(-1, 1, n), y)
    kind = rng.integers(0, 3, n)  # 0 = point, 1 = h-line, 2 = v-line
    w = np.where(kind == 1, rng.uniform(0, 3, n), 0.0)
    h = np.where(kind == 2, rng.uniform(0, 3, n), 0.0)
    return RectSet(np.column_stack((x, y, x + w, y + h)))


def _rtree_counts(data, queries):
    tree = RStarTree.from_rectset(data, max_entries=8)
    return np.array(
        [tree.count(q) for q in queries], dtype=np.int64
    )


def _assert_all_agree(data, queries):
    brute = brute_force_counts(data, queries)
    fenwick = ExactCountOracle(data).counts(queries)
    rtree = _rtree_counts(data, queries)
    np.testing.assert_array_equal(
        brute, fenwick,
        err_msg="brute force vs Fenwick inclusion–exclusion",
    )
    np.testing.assert_array_equal(
        brute, rtree, err_msg="brute force vs R*-tree count"
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("lattice", [6, 40])
def test_oracles_agree_on_integer_lattice(seed, lattice):
    rng = np.random.default_rng(seed)
    data = _lattice_rects(rng, 300, lattice)
    area_queries = _lattice_rects(rng, 150, lattice)
    point_queries = _degenerate_queries(data, rng, 150)
    _assert_all_agree(data, area_queries.concat(point_queries))


@pytest.mark.parametrize("seed", [3, 4])
def test_oracles_agree_on_float_workloads(seed):
    rng = np.random.default_rng(seed)
    data = _float_rects(rng, 400, 1_000.0)
    queries = _float_rects(rng, 200, 1_000.0).concat(
        _degenerate_queries(data, rng, 100)
    )
    _assert_all_agree(data, queries)


def test_oracles_agree_on_all_point_data():
    """Every data rectangle is a point: the harshest degenerate input."""
    rng = np.random.default_rng(9)
    xy = rng.integers(0, 10, (200, 2)).astype(np.float64)
    data = RectSet(np.column_stack((xy[:, 0], xy[:, 1],
                                    xy[:, 0], xy[:, 1])))
    queries = _lattice_rects(rng, 100, 12).concat(
        _degenerate_queries(data, rng, 100)
    )
    _assert_all_agree(data, queries)


def test_oracles_agree_with_duplicate_rectangles():
    rng = np.random.default_rng(10)
    base = _lattice_rects(rng, 50, 8)
    data = base.concat(base).concat(base)  # every rect three times
    queries = _lattice_rects(rng, 120, 8)
    _assert_all_agree(data, queries)


def test_oracles_on_empty_inputs():
    rng = np.random.default_rng(11)
    data = _lattice_rects(rng, 50, 8)
    no_queries = RectSet.empty()
    assert brute_force_counts(data, no_queries).shape == (0,)
    assert ExactCountOracle(data).counts(no_queries).shape == (0,)

    no_data = RectSet.empty()
    queries = _lattice_rects(rng, 20, 8)
    np.testing.assert_array_equal(
        brute_force_counts(no_data, queries), np.zeros(20, np.int64)
    )
    np.testing.assert_array_equal(
        ExactCountOracle(no_data).counts(queries),
        np.zeros(20, np.int64),
    )

"""Tests for STR bulk loading."""

import numpy as np
import pytest

from repro.geometry import Rect, RectSet
from repro.rtree import RStarTree, str_bulk_load

from .test_rtree_rstar import random_rectset


class TestStrBulkLoad:
    def test_empty(self):
        tree = str_bulk_load(RectSet.empty(), 8)
        assert len(tree) == 0
        assert tree.count(Rect(0, 0, 1, 1)) == 0

    def test_single(self):
        rs = RectSet.from_centers([5.0], [5.0], [2.0], [2.0])
        tree = str_bulk_load(rs, 8)
        assert len(tree) == 1
        assert tree.search(Rect(4, 4, 6, 6)) == [0]

    def test_structure_valid(self):
        rs = random_rectset(1_000, seed=10)
        tree = str_bulk_load(rs, 16)
        tree.check_invariants(allow_underfull=True)

    def test_counts_match_bruteforce(self):
        rs = random_rectset(1_200, seed=11)
        tree = str_bulk_load(rs, 12)
        gen = np.random.default_rng(12)
        for _ in range(25):
            x, y = gen.uniform(0, 900, 2)
            q = Rect(x, y, x + gen.uniform(5, 400),
                     y + gen.uniform(5, 400))
            assert tree.count(q) == int(rs.intersects_mask(q).sum())

    def test_all_records_present(self):
        rs = random_rectset(500, seed=13)
        tree = str_bulk_load(rs, 8)
        assert sorted(tree.search(rs.mbr())) == list(range(500))

    def test_same_answers_as_dynamic_tree(self):
        rs = random_rectset(600, seed=14)
        bulk = str_bulk_load(rs, 8)
        dynamic = RStarTree.from_rectset(rs, max_entries=8)
        gen = np.random.default_rng(15)
        for _ in range(20):
            x, y = gen.uniform(0, 900, 2)
            q = Rect(x, y, x + gen.uniform(5, 300),
                     y + gen.uniform(5, 300))
            assert bulk.count(q) == dynamic.count(q)

    def test_leaf_packing_density(self):
        """STR should pack leaves nearly full (bulk-loading's point)."""
        rs = random_rectset(1_000, seed=16)
        tree = str_bulk_load(rs, 10)
        leaves = tree.nodes_at_level(0)
        assert len(leaves) <= int(np.ceil(1_000 / 10)) + 1

    def test_dynamic_insert_into_bulk_tree(self):
        rs = random_rectset(300, seed=17)
        tree = str_bulk_load(rs, 8)
        tree.insert(Rect(10, 10, 20, 20), 300)
        assert len(tree) == 301
        assert 300 in tree.search(Rect(0, 0, 30, 30))

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 63, 64, 65, 200])
    def test_boundary_sizes(self, n):
        rs = random_rectset(n, seed=18)
        tree = str_bulk_load(rs, 8)
        assert len(tree) == n
        assert tree.count(rs.mbr()) == n

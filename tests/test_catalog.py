"""Tests for the statistics catalog and summary serialisation."""

import numpy as np
import pytest

from repro.catalog import (
    StatisticsCatalog,
    buckets_from_json,
    buckets_to_json,
    pack_buckets,
    quantization_error,
    unpack_buckets,
)
from repro.core import Bucket, MinSkewPartitioner
from repro.estimators import BucketEstimator
from repro.geometry import Rect
from repro.workload import range_queries


@pytest.fixture()
def estimator(small_nj_road):
    return BucketEstimator.build(
        MinSkewPartitioner(25, n_regions=400), small_nj_road
    )


class TestBinaryFormat:
    def test_size_matches_paper_accounting(self, estimator):
        blob = pack_buckets(estimator.buckets)
        # 8 words x 4 bytes per bucket, + magic + count header
        assert len(blob) == 8 + 25 * 32

    def test_roundtrip(self, estimator):
        restored = unpack_buckets(pack_buckets(estimator.buckets))
        assert len(restored) == len(estimator.buckets)
        for a, b in zip(estimator.buckets, restored):
            assert a.count == b.count
            assert a.bbox.as_tuple() == pytest.approx(
                b.bbox.as_tuple(), rel=1e-6
            )
            assert a.avg_width == pytest.approx(b.avg_width, rel=1e-6)

    def test_empty_list(self):
        assert unpack_buckets(pack_buckets([])) == []

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            unpack_buckets(b"XXXX" + b"\x00" * 8)

    def test_truncated(self):
        blob = pack_buckets([Bucket(Rect(0, 0, 1, 1), 3)])
        with pytest.raises(ValueError, match="bytes"):
            unpack_buckets(blob[:-4])
        with pytest.raises(ValueError, match="truncated"):
            unpack_buckets(b"RS")

    def test_estimates_survive_roundtrip(self, estimator,
                                         small_nj_road):
        restored = BucketEstimator(
            unpack_buckets(pack_buckets(estimator.buckets))
        )
        queries = range_queries(small_nj_road, 0.1, 50, seed=5)
        np.testing.assert_allclose(
            restored.estimate_many(queries),
            estimator.estimate_many(queries),
            rtol=1e-4,
        )

    def test_quantization_error_small(self, estimator):
        assert quantization_error(estimator.buckets) < 1e-6


class TestJson:
    def test_roundtrip(self, estimator):
        restored = buckets_from_json(buckets_to_json(estimator.buckets))
        assert [b.count for b in restored] == \
            [b.count for b in estimator.buckets]

    def test_not_a_list(self):
        with pytest.raises(ValueError, match="array"):
            buckets_from_json('{"a": 1}')

    def test_bad_record(self):
        with pytest.raises(ValueError, match="index 0"):
            buckets_from_json('[{"count": 3}]')


class TestCatalog:
    def test_store_load(self, tmp_path, estimator, small_nj_road):
        catalog = StatisticsCatalog(tmp_path)
        written = catalog.store("roads.geom", estimator)
        assert written == 8 + 25 * 32
        loaded = catalog.load("roads.geom")
        assert loaded.name == "roads.geom"
        queries = range_queries(small_nj_road, 0.1, 20, seed=6)
        np.testing.assert_allclose(
            loaded.estimate_many(queries),
            estimator.estimate_many(queries),
            rtol=1e-4,
        )

    def test_names_and_sizes(self, tmp_path, estimator):
        catalog = StatisticsCatalog(tmp_path)
        catalog.store("a", estimator)
        catalog.store("b", estimator)
        assert catalog.names() == ["a", "b"]
        assert set(catalog.sizes_bytes()) == {"a", "b"}

    def test_missing(self, tmp_path):
        catalog = StatisticsCatalog(tmp_path)
        with pytest.raises(KeyError):
            catalog.load("nope")
        with pytest.raises(KeyError):
            catalog.drop("nope")

    def test_drop(self, tmp_path, estimator):
        catalog = StatisticsCatalog(tmp_path)
        catalog.store("a", estimator)
        catalog.drop("a")
        assert catalog.names() == []

    def test_invalid_name(self, tmp_path):
        catalog = StatisticsCatalog(tmp_path)
        with pytest.raises(ValueError):
            catalog._path("../escape")
        with pytest.raises(ValueError):
            catalog._path("")

"""Differential suite for the sharded scatter-gather serving tier.

The sharded tier's contract is *exact*: for any shard count, query
batch, and bucket layout, the router's answer equals the single-engine
reference (:class:`ShardUnionEstimator` — every shard kernel over the
full batch, partials accumulated in shard order) bit-for-bit.  The
suite also pins the routing behaviour itself: the router never
dispatches to a shard whose routing box misses every query, and the
``serving.shard.*`` fan-out counters match the intersection set
computed independently here.

The pickle regression rides along: a ``BatchServingEngine`` whose
epoch bookkeeping was keyed by object id silently resurrected its
stale cache after crossing a process (pickle) boundary; the worker
pool ships engines by pickle, so the fix is load-bearing for pooled
serving.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MaintainedHistogram, MinSkewPartitioner
from repro.data import charminar
from repro.estimators import BucketEstimator, MaintainedEstimator
from repro.geometry import Rect, RectSet
from repro.serving import (
    BatchServingEngine,
    ShardedHistogram,
    ShardPlan,
    ShardRouter,
    shard_quotas,
)
from repro.workload import live_workload, range_queries

DATA = charminar(1200, seed=17)


def _build(n_shards=4, n_buckets=24, **kwargs):
    return ShardedHistogram.build(
        DATA,
        n_shards=n_shards,
        n_buckets=n_buckets,
        n_regions=256,
        **kwargs,
    )


def _expected_dispatch(sharded, queries):
    """(dispatched shard ids, routed row count) computed from the
    routing boxes alone — the router must agree exactly."""
    coords = queries.coords
    dispatched = []
    routed = 0
    for shard in sharded.shards:
        box = shard.routing_box()
        if box is None:
            continue
        mask = (
            (coords[:, 0] <= box.x2)
            & (coords[:, 2] >= box.x1)
            & (coords[:, 1] <= box.y2)
            & (coords[:, 3] >= box.y1)
        )
        hits = int(mask.sum())
        if hits:
            dispatched.append(shard.shard_id)
            routed += hits
    return dispatched, routed


class TestShardPlan:
    def test_boxes_tile_the_data_mbr(self):
        plan = ShardPlan.build(DATA, 5)
        mbr = DATA.mbr()
        assert 1 <= plan.n_shards <= 5
        total = sum(b.area for b in plan.boxes)
        assert total == pytest.approx(mbr.area, rel=1e-9)
        for box in plan.boxes:
            assert box.x1 >= mbr.x1 - 1e-9
            assert box.x2 <= mbr.x2 + 1e-9

    def test_ownership_is_total_and_deterministic(self):
        plan = ShardPlan.build(DATA, 4)
        owners = plan.owners(DATA.centers())
        assert owners.shape == (len(DATA),)
        assert owners.min() >= 0
        assert owners.max() < plan.n_shards
        again = ShardPlan.build(DATA, 4)
        assert [b.as_tuple() for b in plan.boxes] == \
            [b.as_tuple() for b in again.boxes]
        np.testing.assert_array_equal(
            owners, again.owners(DATA.centers())
        )

    def test_out_of_bounds_points_are_clamped_to_a_shard(self):
        plan = ShardPlan.build(DATA, 3)
        mbr = DATA.mbr()
        assert 0 <= plan.owner(mbr.x2 + 10.0, mbr.y2 + 10.0) \
            < plan.n_shards

    def test_owner_matches_vectorised_owners(self):
        plan = ShardPlan.build(DATA, 4)
        centers = DATA.centers()[:50]
        owners = plan.owners(centers)
        for row, owner in zip(centers, owners):
            assert plan.owner(float(row[0]), float(row[1])) \
                == int(owner)


class TestShardQuotas:
    def test_budget_is_apportioned_exactly(self):
        assert sum(shard_quotas(40, [100, 200, 100])) == 40

    def test_empty_shards_get_zero_nonempty_at_least_one(self):
        quotas = shard_quotas(10, [1000, 0, 1])
        assert quotas[1] == 0
        assert quotas[2] >= 1
        assert quotas[0] > quotas[2]

    def test_tiny_budget_still_covers_every_nonempty_shard(self):
        quotas = shard_quotas(2, [10, 10, 10, 10])
        assert all(q >= 1 for q in quotas)


class TestShardedDifferentialProperty:
    @given(
        seed=st.integers(0, 10_000),
        n_shards=st.integers(1, 6),
        n_queries=st.integers(1, 40),
    )
    @settings(max_examples=12, deadline=None)
    def test_router_equals_union_bit_for_bit(
        self, seed, n_shards, n_queries
    ):
        sharded = _build(n_shards=n_shards)
        router = ShardRouter(sharded)
        queries = range_queries(
            DATA, 0.08, n_queries, seed=seed
        )
        np.testing.assert_array_equal(
            router.estimate_batch(queries),
            sharded.union_estimator().estimate_batch(queries),
        )

    @given(seed=st.integers(0, 10_000), n_ops=st.integers(5, 40))
    @settings(max_examples=10, deadline=None)
    def test_router_equals_union_after_random_maintenance(
        self, seed, n_ops
    ):
        """Interleaved mutations and serves leave stale caches and
        indexes behind; the next batch must still equal the fresh
        single-engine reference bit-for-bit."""
        sharded = _build()
        router = ShardRouter(sharded)
        queries = range_queries(DATA, 0.1, 15, seed=seed + 1)
        for op in live_workload(DATA, 0.1, n_ops, seed=seed):
            if op.kind == "query":
                router.estimate(op.rect)
            elif op.kind == "insert":
                router.insert(op.rect)
            else:
                router.delete(op.rect)
        np.testing.assert_array_equal(
            router.estimate_batch(queries),
            sharded.union_estimator().estimate_batch(queries),
        )

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=8, deadline=None)
    def test_scalar_path_is_exact_without_index(self, seed):
        """With index pruning off (pruning reorders the bucket sum),
        the scalar path is bit-exact against the union reference."""
        sharded = _build(n_shards=3, auto_index=False)
        router = ShardRouter(sharded)
        union = sharded.union_estimator()
        for q in range_queries(DATA, 0.08, 10, seed=seed):
            assert router.estimate(q) == union.estimate(q)


class TestRoutingBehaviour:
    def test_router_never_queries_a_missed_shard(self):
        """Every sub-batch a shard receives intersects that shard's
        routing box — recorded by spying on the dispatch entry
        point."""
        sharded = _build()
        router = ShardRouter(sharded)
        received = {}
        for shard in sharded.shards:
            original = shard.estimate_batch_coords

            def spy(coords, _sid=shard.shard_id, _orig=original):
                received.setdefault(_sid, []).append(coords)
                return _orig(coords)

            shard.estimate_batch_coords = spy
        queries = range_queries(DATA, 0.05, 200, seed=21)
        router.estimate_batch(queries)
        assert received  # something was dispatched
        for sid, batches in received.items():
            box = sharded.shards[sid].routing_box()
            assert box is not None
            for coords in batches:
                assert (
                    (coords[:, 0] <= box.x2)
                    & (coords[:, 2] >= box.x1)
                    & (coords[:, 1] <= box.y2)
                    & (coords[:, 3] >= box.y1)
                ).all()

    def test_fanout_counters_match_intersection_set(
        self, capture_counters
    ):
        sharded = _build()
        router = ShardRouter(sharded)
        queries = range_queries(DATA, 0.05, 300, seed=22)
        dispatched, routed = _expected_dispatch(sharded, queries)
        _, counters = capture_counters(
            lambda: router.estimate_batch(queries)
        )
        assert counters.get("serving.shard.requests") == 1
        assert counters.get("serving.shard.queries") == 300
        assert counters.get("serving.shard.fanout") \
            == len(dispatched)
        assert counters.get("serving.shard.subqueries") == routed
        assert counters.get("serving.shard.skipped", 0) \
            == sharded.n_shards - len(dispatched)

    def test_narrow_query_skips_far_shards(self, capture_counters):
        """A query inside one shard's box (and clear of every other
        routing box) fans out to exactly one shard."""
        sharded = _build()
        shard = sharded.shards[0]
        box = shard.routing_box()
        cx, cy = box.center
        tiny = Rect.from_center(
            cx, cy, box.width * 1e-6, box.height * 1e-6
        )
        others = [
            s for s in sharded.shards
            if s.shard_id != 0 and s.routing_box() is not None
            and s.routing_box().intersects(tiny)
        ]
        if others:
            pytest.skip("routing boxes overlap at this center")
        router = ShardRouter(sharded)
        queries = RectSet(np.array(
            [list(tiny.as_tuple())], dtype=np.float64
        ))
        _, counters = capture_counters(
            lambda: router.estimate_batch(queries)
        )
        assert counters.get("serving.shard.fanout") == 1
        assert counters.get("serving.shard.skipped") \
            == sharded.n_shards - 1

    def test_mutation_bumps_only_owning_shard_epoch(
        self, capture_counters
    ):
        sharded = _build()
        router = ShardRouter(sharded)
        queries = range_queries(DATA, 0.05, 20, seed=23)
        router.estimate_batch(queries)  # observe initial epochs
        rect = DATA[0]
        sid = sharded.owner_of(rect)
        before = sharded.epochs()

        def mutate_and_serve():
            router.insert(rect)
            router.estimate_batch(queries)

        _, counters = capture_counters(mutate_and_serve)
        after = sharded.epochs()
        for i, (b, a) in enumerate(zip(before, after)):
            assert (a != b) == (i == sid)
        assert counters.get("serving.shard.epoch_bumps") == 1
        assert counters.get(
            f"serving.shard.epoch_bumps.s{sid}"
        ) == 1
        for i in range(sharded.n_shards):
            if i != sid:
                assert (
                    f"serving.shard.epoch_bumps.s{i}"
                    not in counters
                )


class TestShardWorkerPool:
    def test_pooled_router_matches_inline_bit_for_bit(self):
        queries = range_queries(DATA, 0.05, 400, seed=31)
        inline = ShardRouter(_build())
        with ShardRouter(_build(), workers=2) as pooled:
            np.testing.assert_array_equal(
                pooled.estimate_batch(queries),
                inline.estimate_batch(queries),
            )

    def test_pooled_router_matches_inline_after_mutations(self):
        queries = range_queries(DATA, 0.05, 150, seed=32)
        inline = ShardRouter(_build())
        with ShardRouter(_build(), workers=2) as pooled:
            for op in live_workload(DATA, 0.08, 80, seed=33):
                if op.kind == "insert":
                    inline.insert(op.rect)
                    pooled.insert(op.rect)
                elif op.kind == "delete":
                    inline.delete(op.rect)
                    pooled.delete(op.rect)
            np.testing.assert_array_equal(
                pooled.estimate_batch(queries),
                inline.estimate_batch(queries),
            )

    def test_pooled_counter_totals_match_inline(
        self, capture_counters
    ):
        queries = range_queries(DATA, 0.05, 100, seed=34)

        def serve(router):
            _, counters = capture_counters(
                lambda: router.estimate_batch(queries)
            )
            return counters

        inline_counters = serve(ShardRouter(_build()))
        with ShardRouter(_build(), workers=2) as pooled:
            pooled_counters = serve(pooled)
        assert inline_counters == pooled_counters

    def test_worker_failure_surfaces_as_typed_error(self):
        from repro.errors import ShardWorkerError

        with ShardRouter(_build(), workers=2) as pooled:
            pool = pooled._pool
            with pytest.raises(ShardWorkerError, match="no_such"):
                pool.call(0, "no_such_method")
            # the worker survives a method-level failure and the pool
            # keeps serving healthy requests afterwards
            assert isinstance(pool.call(0, "state_digest"), str)


class TestEnginePickleRevalidation:
    """The satellite fix: epoch bookkeeping must survive pickling."""

    def _setup(self):
        data = charminar(500, seed=3)
        hist = MaintainedHistogram(
            MinSkewPartitioner(10, n_regions=144), data,
            drift_threshold=0.9,
        )
        engine = BatchServingEngine(MaintainedEstimator(hist))
        queries = range_queries(data, 0.15, 20, seed=4)
        return data, hist, engine, queries

    def test_unpickled_engine_does_not_serve_stale_cache(self):
        data, hist, engine, queries = self._setup()
        stale = engine.estimate_batch(queries)  # cache populated
        cx, cy = data.mbr().center
        for _ in range(5):
            hist.insert(Rect.from_center(cx, cy, 1.0, 1.0))
        # pickle *after* the mutation, *before* any revalidating
        # serve: exactly the worker-pool handoff window
        clone = pickle.loads(pickle.dumps(engine))
        fresh = BatchServingEngine(
            BucketEstimator(list(hist.buckets), name="fresh")
        ).estimate_batch(queries)
        got = clone.estimate_batch(queries)
        np.testing.assert_array_equal(got, fresh)
        assert not np.array_equal(got, stale)

    def test_unpickled_engine_flushes_and_reindexes(
        self, capture_counters
    ):
        _data, hist, engine, queries = self._setup()
        engine.estimate_batch(queries)
        hist.refresh()
        clone = pickle.loads(pickle.dumps(engine))
        _, counters = capture_counters(
            lambda: clone.estimate_batch(queries)
        )
        assert counters.get("serving.epoch.stale") == 1
        assert counters.get("serving.epoch.index_rebuilds") == 1
        assert counters.get("serving.cache.flushes") == 1
        assert clone.cache is not None and clone.cache.flushes == 1

    def test_detach_indexes_works_after_unpickling(self):
        _data, _hist, engine, queries = self._setup()
        engine.estimate_batch(queries)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.indexed  # the index crossed the boundary
        clone.detach_indexes()
        assert clone.indexed == []
        assert clone.auto_index is False
        assert all(
            est.index is None
            for est, _ in clone._observed.values()
        )


class TestEmptyAndDegenerateShards:
    def _cluster_data(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(0.0, 1.0, size=(80, 2))
        b = rng.uniform(100.0, 101.0, size=(80, 2))
        pts = np.vstack([a, b])
        coords = np.column_stack(
            [pts[:, 0], pts[:, 1], pts[:, 0] + 0.01,
             pts[:, 1] + 0.01]
        )
        return RectSet(coords)

    def test_shard_emptied_by_deletes_serves_zero_and_is_skipped(
        self
    ):
        data = self._cluster_data()
        sharded = ShardedHistogram.build(
            data, n_shards=2, n_buckets=8, n_regions=64,
            drift_threshold=1.0, auto_refresh=False,
        )
        victim = sharded.shards[0]
        assert len(victim) > 0
        for row in list(victim.hist.current_data()):
            assert sharded.delete(row)[1]
        victim.hist.refresh()
        assert victim.buckets == []
        assert victim.routing_box() is None
        router = ShardRouter(sharded)
        queries = range_queries(data, 0.2, 30, seed=12)
        np.testing.assert_array_equal(
            router.estimate_batch(queries),
            sharded.union_estimator().estimate_batch(queries),
        )

    def test_lazy_shard_creation_on_first_insert(self):
        data = self._cluster_data()
        plan = ShardPlan.build(data, 2, n_regions=64)
        owners = plan.owners(data.centers())
        keep = owners == 0
        sharded = ShardedHistogram.build(
            data.select(np.flatnonzero(keep)),
            plan=plan, n_buckets=8, n_regions=64,
        )
        empty = next(s for s in sharded.shards if len(s) == 0)
        assert empty.routing_box() is None
        epoch_before = empty.epoch
        rect = data[int(np.flatnonzero(~keep)[0])]
        sid = sharded.insert(rect)
        assert sid == empty.shard_id
        assert empty.epoch > epoch_before
        assert empty.routing_box() is not None
        router = ShardRouter(sharded)
        queries = range_queries(data, 0.2, 20, seed=13)
        np.testing.assert_array_equal(
            router.estimate_batch(queries),
            sharded.union_estimator().estimate_batch(queries),
        )

"""Front-door suite: micro-batcher contracts, wire protocol, SLOs.

Three layers, three promises:

* the sans-IO :class:`MicroBatcher` fires under exactly the dual
  trigger (size, deterministic logical wait) plus flush, treats every
  mutation as a FIFO barrier, resolves every reply exactly once (on
  success *and* error paths), and sheds with a typed retryable
  :class:`~repro.errors.OverloadedError` when the queue or the
  breaker says no;
* any interleaving of queries and mutations through the batcher —
  under any trigger pattern (size-fired, clock-fired, flush-on-close)
  — answers bit-for-bit like a sequential reference applying the same
  submission order (the hypothesis differential);
* the TCP front door serves those same answers over the wire: a
  pipelined client equals the direct engine exactly, mutations route
  through, protocol violations come back as typed error responses.

The parameterized ``served_engine`` fixture (conftest) closes the
loop: direct, sharded, pooled, and server stacks all answer the shared
workload bit-identically to the union reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MaintainedHistogram, MinSkewPartitioner
from repro.data import charminar
from repro.errors import OverloadedError, ReproError, ValidationError
from repro.estimators import BucketEstimator, MaintainedEstimator
from repro.geometry import Rect, RectSet
from repro.resilience import StepClock
from repro.serving import (
    BatchServingEngine,
    FrontDoorThread,
    MicroBatcher,
    PendingReply,
)
from repro.workload import live_workload, range_queries

DATA = charminar(600, seed=53)


class _Recorder:
    """Dispatch stub: records every batch; answers row sums."""

    def __init__(self, fail=None):
        self.batches = []
        self.fail = fail

    def __call__(self, coords):
        self.batches.append(coords.copy())
        if self.fail is not None:
            raise self.fail
        return coords.sum(axis=1)

    @property
    def sizes(self):
        return [len(b) for b in self.batches]


def _batcher(recorder, **kwargs):
    kwargs.setdefault("clock", StepClock())
    return MicroBatcher(recorder, **kwargs)


class TestMicroBatcherTriggers:
    def test_batch_of_one_fires_on_flush(self):
        recorder = _Recorder()
        batcher = _batcher(recorder, max_batch=8, max_wait_steps=4)
        reply = batcher.submit(0.0, 0.0, 1.0, 2.0)
        assert not reply.done
        assert recorder.sizes == []
        batcher.flush()
        assert reply.done
        assert reply.result() == 3.0
        assert recorder.sizes == [1]

    def test_exactly_max_size_fires_inline(self):
        recorder = _Recorder()
        batcher = _batcher(recorder, max_batch=4, max_wait_steps=0)
        replies = [
            batcher.submit(float(i), 0.0, float(i) + 1.0, 1.0)
            for i in range(4)
        ]
        # no tick, no flush: the size trigger alone fired the batch
        assert recorder.sizes == [4]
        assert [r.result() for r in replies] == [
            2.0 * i + 2.0 for i in range(4)
        ]
        assert batcher.pending == 0

    def test_overflow_splits_into_max_sized_batches(self):
        recorder = _Recorder()
        batcher = _batcher(recorder, max_batch=4, max_wait_steps=0)
        replies = [
            batcher.submit(float(i), 0.0, float(i) + 1.0, 1.0)
            for i in range(9)
        ]
        assert recorder.sizes == [4, 4]
        assert batcher.pending == 1
        batcher.flush()
        assert recorder.sizes == [4, 4, 1]
        assert all(r.done for r in replies)
        # FIFO: batch rows are the submission order, never reordered
        submitted = np.array(
            [[float(i), 0.0, float(i) + 1.0, 1.0] for i in range(9)]
        )
        np.testing.assert_array_equal(
            np.vstack(recorder.batches), submitted
        )

    def test_wait_trigger_fires_exactly_at_max_wait_steps(self):
        recorder = _Recorder()
        batcher = _batcher(recorder, max_batch=64, max_wait_steps=3)
        reply = batcher.submit(0.0, 0.0, 1.0, 1.0)
        batcher.tick()
        batcher.tick()
        assert not reply.done  # 2 steps: still within the bound
        batcher.tick()
        assert reply.done  # exactly 3: the partial batch fired
        assert recorder.sizes == [1]

    def test_wait_trigger_disabled_by_zero(self):
        recorder = _Recorder()
        batcher = _batcher(recorder, max_batch=64, max_wait_steps=0)
        reply = batcher.submit(0.0, 0.0, 1.0, 1.0)
        batcher.tick(1_000)
        assert not reply.done
        batcher.close()  # flush-on-close drains it
        assert reply.done

    def test_mutation_is_a_fifo_barrier(self):
        events = []

        def dispatch(coords):
            events.append(("batch", len(coords)))
            return coords.sum(axis=1)

        def apply_mutation(kind, rect):
            events.append(("mutation", kind))
            return {"applied": True}

        batcher = MicroBatcher(
            dispatch, apply_mutation, max_batch=64,
            max_wait_steps=0, clock=StepClock(),
        )
        q1 = batcher.submit(0.0, 0.0, 1.0, 1.0)
        q2 = batcher.submit(0.0, 0.0, 2.0, 2.0)
        mut = batcher.submit_mutation(
            "insert", Rect(0.0, 0.0, 1.0, 1.0)
        )
        # the barrier forced the pre-mutation queries out first, then
        # applied the mutation — regardless of size/wait triggers
        assert events == [("batch", 2), ("mutation", "insert")]
        assert q1.done and q2.done and mut.done
        q3 = batcher.submit(0.0, 0.0, 3.0, 3.0)
        assert not q3.done  # post-barrier query waits for its trigger
        batcher.flush()
        assert events == [
            ("batch", 2), ("mutation", "insert"), ("batch", 1),
        ]
        assert q3.result() == 6.0


class TestMicroBatcherReplies:
    def test_dispatch_failure_errors_every_reply_exactly_once(self):
        boom = RuntimeError("kernel exploded")
        recorder = _Recorder(fail=boom)
        batcher = _batcher(recorder, max_batch=3, max_wait_steps=0)
        replies = [
            batcher.submit(0.0, 0.0, 1.0, 1.0) for _ in range(3)
        ]
        assert batcher.dispatch_failures == 1
        for reply in replies:
            assert reply.error() is boom
            with pytest.raises(RuntimeError):
                reply.result()
            # exactly once: a second resolution is a programming error
            with pytest.raises(ValidationError):
                reply.set_result(1.0)
            with pytest.raises(ValidationError):
                reply.set_error(RuntimeError("again"))

    def test_shape_mismatch_is_a_dispatch_failure(self):
        batcher = MicroBatcher(
            lambda coords: np.zeros(len(coords) + 1),
            max_batch=2, max_wait_steps=0, clock=StepClock(),
        )
        replies = [
            batcher.submit(0.0, 0.0, 1.0, 1.0) for _ in range(2)
        ]
        assert batcher.dispatch_failures == 1
        for reply in replies:
            assert isinstance(reply.error(), ValidationError)

    def test_unresolved_reply_raises_on_result(self):
        reply = PendingReply()
        assert not reply.done
        with pytest.raises(ValidationError):
            reply.result()

    def test_done_callback_runs_immediately_when_resolved(self):
        reply = PendingReply()
        seen = []
        reply.add_done_callback(lambda r: seen.append(("a", r.done)))
        assert seen == []
        reply.set_result(7.0)
        assert seen == [("a", True)]
        reply.add_done_callback(lambda r: seen.append(("b", r.done)))
        assert seen == [("a", True), ("b", True)]

    def test_mutation_failure_sets_error_and_counts(self):
        def apply_mutation(kind, rect):
            raise RuntimeError("shard down")

        batcher = MicroBatcher(
            _Recorder(), apply_mutation, max_batch=8,
            max_wait_steps=0, clock=StepClock(),
        )
        reply = batcher.submit_mutation(
            "insert", Rect(0.0, 0.0, 1.0, 1.0)
        )
        assert isinstance(reply.error(), RuntimeError)
        assert batcher.dispatch_failures == 1

    def test_unknown_mutation_kind_rejected_before_queueing(self):
        batcher = _batcher(_Recorder())
        with pytest.raises(ValidationError):
            batcher.submit_mutation("upsert", Rect(0, 0, 1, 1))
        assert batcher.pending == 0


class TestAdmissionControl:
    def test_full_queue_sheds_with_typed_retryable_error(self):
        recorder = _Recorder()
        batcher = _batcher(
            recorder, max_batch=100, max_wait_steps=0, max_pending=2
        )
        batcher.submit(0.0, 0.0, 1.0, 1.0)
        batcher.submit(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(OverloadedError) as exc_info:
            batcher.submit(0.0, 0.0, 1.0, 1.0)
        assert exc_info.value.retryable
        assert batcher.shed == 1
        assert batcher.stats()["shed"] == 1.0
        # draining reopens admission
        batcher.flush()
        assert batcher.submit(0.0, 0.0, 1.0, 1.0) is not None

    def test_breaker_opens_after_failures_and_recovers(self):
        boom = RuntimeError("backend dead")
        recorder = _Recorder(fail=boom)
        batcher = _batcher(
            recorder, max_batch=1, max_wait_steps=0,
            failure_threshold=2, reset_after_steps=3,
        )
        # max_batch=1: every submit dispatches (and fails) inline
        assert batcher.submit(0.0, 0.0, 1.0, 1.0).error() is boom
        assert batcher.submit(0.0, 0.0, 1.0, 1.0).error() is boom
        with pytest.raises(OverloadedError):
            batcher.submit(0.0, 0.0, 1.0, 1.0)
        assert batcher.shed == 1
        # past the cooldown the breaker admits a trial; the healthy
        # backend closes the loop
        recorder.fail = None
        batcher.tick(4)
        reply = batcher.submit(0.0, 0.0, 1.0, 2.0)
        assert reply.result() == 3.0


def _live_engine():
    """A maintained histogram behind a serving engine + its handle."""
    hist = MaintainedHistogram(
        MinSkewPartitioner(8, n_regions=100), DATA,
        drift_threshold=0.9,
    )
    return hist, BatchServingEngine(MaintainedEstimator(hist))


class TestInterleavingDifferential:
    """The tentpole property: any interleaving == sequential reference.

    One batcher over a live engine, one plain engine driven
    sequentially in the identical submission order.  Hypothesis draws
    the workload seed *and* the trigger landscape — tiny max_batch
    (size-fired), tick cadence (clock-fired), and the final ``close``
    (flush trigger) — so every trigger path carries real traffic.
    """

    @given(
        seed=st.integers(0, 10_000),
        n_ops=st.integers(1, 40),
        max_batch=st.integers(1, 8),
        wait_steps=st.integers(0, 3),
        tick_every=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_interleaving_equals_sequential_reference(
        self, seed, n_ops, max_batch, wait_steps, tick_every
    ):
        hist_a, engine_a = _live_engine()
        hist_b, engine_b = _live_engine()

        def apply_mutation(kind, rect):
            return (
                hist_a.insert(rect) if kind == "insert"
                else hist_a.delete(rect)
            )

        batcher = MicroBatcher(
            lambda coords: engine_a.estimate_batch(
                RectSet(coords, copy=False, validate=False)
            ),
            apply_mutation,
            max_batch=max_batch,
            max_wait_steps=wait_steps,
            clock=StepClock(),
        )
        replies, expected = [], []
        for i, op in enumerate(
            live_workload(DATA, 0.1, n_ops, seed=seed)
        ):
            if op.kind == "query":
                rect = op.rect
                replies.append(batcher.submit(
                    rect.x1, rect.y1, rect.x2, rect.y2
                ))
                # the barrier contract: a query answers at the state
                # of its submission point, so the reference serves it
                # before any later mutation applies
                expected.append(engine_b.estimate(rect))
            elif op.kind == "insert":
                batcher.submit_mutation("insert", op.rect)
                hist_b.insert(op.rect)
            else:
                batcher.submit_mutation("delete", op.rect)
                hist_b.delete(op.rect)
            if tick_every and i % tick_every == 0:
                batcher.tick()
        batcher.close()
        got = [reply.result() for reply in replies]
        assert got == expected  # bit-for-bit float equality


class TestMidBatchMutationEpoch:
    """Satellite regression: a mutation landing *mid-batch*.

    The engine pins an epoch-read point before consulting the cache;
    if a mutation lands between the cache lookup and the kernel
    dispatch, mixing cached (pre-mutation) rows with fresh
    (post-mutation) rows would serve a batch that no single epoch ever
    produced.  The engine must detect the moved point, flush, and
    re-serve the whole batch at the new epoch.
    """

    def _mutating_once(self, hist, est, rect):
        inner = est.estimate_batch
        fired = {}

        def estimate_batch(queries):
            if "done" not in fired:
                fired["done"] = True
                hist.insert(rect)  # lands inside the serve window
            return inner(queries)

        return estimate_batch

    def test_batch_retries_at_the_new_epoch(self, capture_counters):
        hist, engine = _live_engine()
        est = engine.inner
        queries = range_queries(DATA, 0.1, 20, seed=3)
        engine.estimate_batch(
            RectSet(queries.coords[:10])
        )  # cache holds pre-mutation answers for half the batch
        cx, cy = DATA.mbr().center
        rect = Rect.from_center(cx, cy, 1.0, 1.0)
        est.estimate_batch = self._mutating_once(hist, est, rect)
        values, counters = capture_counters(
            lambda: engine.estimate_batch(queries)
        )
        assert counters.get("serving.epoch.midbatch_retries") == 1
        assert counters.get("serving.cache.flushes", 0) >= 1
        # the whole batch answers at the post-mutation epoch — no
        # pre-mutation cached rows leak through
        fresh = BatchServingEngine(
            BucketEstimator(list(hist.buckets), name="fresh")
        ).estimate_batch(queries)
        np.testing.assert_array_equal(values, fresh)

    def test_scalar_mid_serve_answer_is_not_cached(self):
        hist, engine = _live_engine()
        est = engine.inner
        query = range_queries(DATA, 0.1, 1, seed=5)[0]
        cx, cy = DATA.mbr().center
        rect = Rect.from_center(cx, cy, 1.0, 1.0)
        inner = est.estimate
        fired = {}

        def estimate(q):
            if "done" not in fired:
                fired["done"] = True
                hist.insert(rect)
            return inner(q)

        est.estimate = estimate
        first = engine.estimate(query)
        # the post-mutation answer stayed out of the cache: the pinned
        # epoch point moved between lookup and estimate
        assert len(engine.cache) == 0
        second = engine.estimate(query)
        assert second == first
        fresh = BatchServingEngine(
            BucketEstimator(list(hist.buckets), name="fresh")
        ).estimate(query)
        assert first == fresh


class TestFrontDoorWire:
    """End-to-end over TCP: the wire changes nothing."""

    def _door(self, **kwargs):
        hist, engine = _live_engine()

        def mutate(kind, rect):
            return (
                hist.insert(rect) if kind == "insert"
                else hist.delete(rect)
            )

        front = FrontDoorThread(
            engine, mutate=mutate, **kwargs
        ).start()
        return hist, front

    def test_pipelined_client_equals_direct_engine(self):
        hist, front = self._door(max_batch=8, max_wait_steps=2)
        try:
            queries = range_queries(DATA, 0.1, 40, seed=7)
            _, reference_engine = _live_engine()
            expected = reference_engine.estimate_batch(queries)
            responses = front.estimate_many(
                queries.coords, concurrency=4
            )
            assert all(r.get("ok", False) for r in responses)
            values = np.array(
                [r["value"] for r in responses], dtype=np.float64
            )
            np.testing.assert_array_equal(values, expected)
            stats = front.stats()
            assert stats["submitted"] == 40.0
            assert stats["batches"] >= 1.0
        finally:
            front.stop()

    def test_wire_mutations_change_answers_identically(self):
        hist, front = self._door(max_batch=4, max_wait_steps=1)
        try:
            hist_ref, engine_ref = _live_engine()
            query = range_queries(DATA, 0.15, 1, seed=9)[0]
            before = front.estimate(
                query.x1, query.y1, query.x2, query.y2
            )
            assert before == engine_ref.estimate(query)
            # inserting the query rectangle itself guarantees overlap,
            # so the answer must move
            rect = query
            for _ in range(5):
                front.mutate(
                    "insert", (rect.x1, rect.y1, rect.x2, rect.y2)
                )
                hist_ref.insert(rect)
            after = front.estimate(
                query.x1, query.y1, query.x2, query.y2
            )
            assert after == engine_ref.estimate(query)
            assert after != before
        finally:
            front.stop()

    def test_invalid_rect_gets_typed_error_response(self):
        _, front = self._door()
        try:
            response = front.call(
                "estimate", rect=(5.0, 5.0, 1.0, 1.0)
            )
            assert response["ok"] is False
            assert "error" in response and "message" in response
            # the connection survives the bad request
            good = front.call("estimate", rect=(0.0, 0.0, 1.0, 1.0))
            assert good["ok"] is True
        finally:
            front.stop()

    def test_unknown_op_gets_typed_error_response(self):
        _, front = self._door()
        try:
            response = front.call("bogus")
            assert response["ok"] is False
            assert front.call("ping")["ok"] is True
        finally:
            front.stop()

    def test_read_only_door_rejects_mutations(self):
        hist, _ = _live_engine()
        front = FrontDoorThread(
            BatchServingEngine(
                BucketEstimator(list(hist.buckets), name="ro"),
            )
        ).start()
        try:
            with pytest.raises(ReproError):
                front.mutate("insert", (0.0, 0.0, 1.0, 1.0))
        finally:
            front.stop()


class TestAllEngineKindsAgree:
    """The consolidation payoff: one suite, four serving stacks."""

    def test_batch_answers_equal_union_reference(
        self, served_engine, serving_queries
    ):
        np.testing.assert_array_equal(
            served_engine.estimate_batch(serving_queries),
            served_engine.reference(serving_queries),
        )

    def test_answers_track_mutations(
        self, served_engine, serving_dataset, serving_queries
    ):
        before = served_engine.estimate_batch(serving_queries)
        for op in live_workload(serving_dataset, 0.1, 12, seed=91):
            if op.kind == "insert":
                served_engine.insert(op.rect)
            elif op.kind == "delete":
                served_engine.delete(op.rect)
        after = served_engine.estimate_batch(serving_queries)
        np.testing.assert_array_equal(
            after, served_engine.reference(serving_queries)
        )
        assert not np.array_equal(after, before)


class TestServerBenchSmoke:
    """The bench's ``engine="server"`` cell end-to-end, small scale."""

    def test_server_cell_matches_and_validates(self):
        from repro.obs.bench import SERVER_CONFIG, run_bench
        from repro.obs.schema import validate_bench

        config = SERVER_CONFIG.replace(
            datasets=(("charminar", 800),),
            n_buckets=12,
            n_regions=1_000,
            n_queries=600,
            concurrency=2,
            server_max_batch=16,
            server_window=16,
        )
        doc = run_bench(config)
        validate_bench(doc)
        cell = doc["datasets"][0]["techniques"][0]
        server = cell["server"]
        assert server["server_matches"] is True
        assert server["requests"] == 600
        assert server["batches"] >= 1
        assert server["p99_ms"] >= server["p50_ms"] >= 0.0
        assert server["single_qps"] > 0.0 and server["batched_qps"] > 0.0

"""Adversarial-input properties: every estimator either raises a typed
:mod:`repro.errors` error or returns a finite, non-negative estimate —
no NaN propagation, no crashes, no unhandled exceptions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import uniform_rects
from repro.errors import EmptyInputError, GeometryError, ValidationError
from repro.estimators import (
    BucketEstimator,
    FractalEstimator,
    SampleEstimator,
    UniformEstimator,
)
from repro.eval import ALL_TECHNIQUES, build_estimator
from repro.geometry import Rect, RectSet
from repro.resilience import build_fallback_chain

#: Shared input distribution for estimator construction.
DATA = uniform_rects(400, seed=17)

#: One prebuilt estimator per technique (construction is the slow part).
ESTIMATORS = [
    build_estimator(t, DATA, 8, n_regions=256, rtree_method="str")
    for t in ALL_TECHNIQUES
]
ESTIMATORS.append(build_fallback_chain(DATA, 8, n_regions=256))

finite_coord = st.floats(
    min_value=-1e9, max_value=1e9,
    allow_nan=False, allow_infinity=False,
)
bad_coord = st.sampled_from([
    float("nan"), float("inf"), float("-inf"),
])
any_coord = finite_coord | bad_coord


def make_valid_rect(x1, y1, x2, y2):
    """Order the corners so the rectangle is valid (maybe zero-area)."""
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestDegenerateRectangles:
    @given(any_coord, any_coord, any_coord, any_coord)
    @settings(max_examples=200, deadline=None)
    def test_rect_constructor_is_total(self, x1, y1, x2, y2):
        """Rect() either builds a valid rectangle or raises the typed
        GeometryError (a ValueError) — never anything else."""
        finite = all(math.isfinite(v) for v in (x1, y1, x2, y2))
        valid = finite and x2 >= x1 and y2 >= y1
        if valid:
            rect = Rect(x1, y1, x2, y2)
            assert rect.width >= 0.0 and rect.height >= 0.0
        else:
            with pytest.raises(GeometryError) as err:
                Rect(x1, y1, x2, y2)
            assert isinstance(err.value, ValueError)

    @given(st.integers(0, 3), st.integers(0, 3), bad_coord)
    @settings(max_examples=60, deadline=None)
    def test_rectset_rejects_poisoned_rows(self, row, col, bad):
        coords = np.ones((4, 4), dtype=np.float64)
        coords[:, 2:] = 2.0
        coords[row, col] = bad
        with pytest.raises(GeometryError):
            RectSet(coords)

    def test_rectset_rejects_inverted_rows(self):
        coords = np.array([[0.0, 0.0, 1.0, 1.0],
                           [5.0, 0.0, 1.0, 1.0]])
        with pytest.raises(GeometryError) as err:
            RectSet(coords)
        assert "rectangle 1" in str(err.value)

    def test_zero_area_rectangles_are_valid(self):
        point = Rect(3.0, 4.0, 3.0, 4.0)
        assert point.area == 0.0
        for estimator in ESTIMATORS:
            value = estimator.estimate(point)
            assert np.isfinite(value) and value >= 0.0


class TestEstimatorTotality:
    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    @settings(max_examples=60, deadline=None)
    def test_any_valid_query_gets_a_finite_estimate(
        self, x1, y1, x2, y2
    ):
        """Estimates stay finite and non-negative for every valid
        query, however far outside the data space it lies."""
        query = make_valid_rect(x1, y1, x2, y2)
        for estimator in ESTIMATORS:
            value = estimator.estimate(query)
            assert np.isfinite(value), estimator.name
            assert value >= 0.0, estimator.name

    @given(st.lists(
        st.tuples(finite_coord, finite_coord, finite_coord,
                  finite_coord),
        min_size=1, max_size=10,
    ))
    @settings(max_examples=25, deadline=None)
    def test_batch_estimates_are_finite(self, corners):
        rows = [
            (min(a, c), min(b, d), max(a, c), max(b, d))
            for a, b, c, d in corners
        ]
        queries = RectSet(np.asarray(rows, dtype=np.float64))
        for estimator in ESTIMATORS:
            values = np.asarray(estimator.estimate_many(queries))
            assert values.shape == (len(queries),), estimator.name
            assert np.isfinite(values).all(), estimator.name
            assert (values >= 0.0).all(), estimator.name

    @given(any_coord, any_coord, any_coord, any_coord)
    @settings(max_examples=100, deadline=None)
    def test_invalid_queries_never_reach_estimators(
        self, x1, y1, x2, y2
    ):
        """An invalid query cannot even be constructed, so estimators
        need no per-call defence — the helper is the single gate."""
        finite = all(math.isfinite(v) for v in (x1, y1, x2, y2))
        if finite and x2 >= x1 and y2 >= y1:
            return  # valid; covered above
        with pytest.raises(ValidationError):
            Rect(x1, y1, x2, y2)


class TestEmptyInputs:
    def test_every_estimator_rejects_empty_data(self):
        empty = RectSet.empty()
        for build in (
            lambda: UniformEstimator(empty),
            lambda: SampleEstimator(empty, 4),
            lambda: FractalEstimator(empty),
            lambda: BucketEstimator([]),
        ):
            with pytest.raises(EmptyInputError) as err:
                build()
            assert isinstance(err.value, ValueError)

    def test_bucket_techniques_reject_empty_data(self):
        empty = RectSet.empty()
        for technique in ALL_TECHNIQUES:
            with pytest.raises(ValueError):
                build_estimator(technique, empty, 4, n_regions=16)

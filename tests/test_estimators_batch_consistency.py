"""Property test: ``estimate_many`` must agree with per-query
``estimate`` for every technique.

The batched paths are separate vectorised implementations of the same
formulas (numpy blocks in :func:`repro.core.bucket.estimate_many`, the
chunked brute-force scan in Sample, the inclusion–exclusion oracle in
Exact), so elementwise agreement with the scalar path is the invariant
that keeps the experiment harness honest.  Hypothesis drives arbitrary
query rectangles — inside, outside, and straddling the data MBR, plus
degenerate zero-area and point queries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import charminar
from repro.estimators import ExactEstimator
from repro.eval import ALL_TECHNIQUES, build_estimator
from repro.geometry import RectSet

#: One shared small dataset: big enough for every technique to build a
#: non-trivial summary, small enough that the R*-tree build stays fast.
_DATA = charminar(800, seed=7)
_MBR = _DATA.mbr()

_ESTIMATORS = {
    technique: build_estimator(
        technique, _DATA, 25, n_regions=256, seed=3
    )
    for technique in ALL_TECHNIQUES
}
_ESTIMATORS["Exact"] = ExactEstimator(_DATA)

# coordinates reach one MBR-width beyond the data on every side, so
# queries can lie fully outside the summarised region
_SPAN_X = _MBR.width
_SPAN_Y = _MBR.height
_coord_x = st.floats(
    _MBR.x1 - _SPAN_X, _MBR.x2 + _SPAN_X,
    allow_nan=False, allow_infinity=False,
)
_coord_y = st.floats(
    _MBR.y1 - _SPAN_Y, _MBR.y2 + _SPAN_Y,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def query_rects(draw):
    """One query rectangle; degenerate extents occur naturally when the
    two draws coincide and are also forced with explicit examples."""
    xa, xb = draw(_coord_x), draw(_coord_x)
    ya, yb = draw(_coord_y), draw(_coord_y)
    if draw(st.booleans()):
        xb = xa  # force a zero-width (segment/point) query
    if draw(st.booleans()):
        yb = ya
    return (min(xa, xb), min(ya, yb), max(xa, xb), max(ya, yb))


@pytest.mark.parametrize("technique", sorted(_ESTIMATORS))
@settings(max_examples=25, deadline=None)
@given(rows=st.lists(query_rects(), min_size=1, max_size=20))
def test_estimate_many_matches_scalar_estimate(technique, rows):
    estimator = _ESTIMATORS[technique]
    queries = RectSet(np.asarray(rows, dtype=np.float64))

    batched = estimator.estimate_many(queries)
    scalar = np.array(
        [estimator.estimate(q) for q in queries], dtype=np.float64
    )

    assert batched.shape == scalar.shape
    np.testing.assert_allclose(
        batched, scalar, rtol=1e-9, atol=1e-6,
        err_msg=f"{technique}: batched and scalar estimates diverge",
    )
    assert (batched >= 0).all()
    assert np.isfinite(batched).all()


@pytest.mark.parametrize("technique", sorted(_ESTIMATORS))
def test_estimate_many_on_empty_workload(technique):
    estimator = _ESTIMATORS[technique]
    empty = RectSet.empty()
    result = estimator.estimate_many(empty)
    assert result.shape == (0,)

"""The query-feedback self-tuning loop (``repro.tuning``).

Covers the collector's deterministic sampling, the tuner's three
invariants (bucket quota, exact count conservation, exactly one epoch
bump per applied pass), the monotone in-sample error guarantee of the
hill-climbing accept rule, and the differential gates: after a tuning
pass every serving stack — direct, sharded, pooled, and the TCP front
door — answers bit-identically to a freshly built engine over the
tuned buckets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import assign_by_center
from repro.core.maintenance import MaintainedHistogram
from repro.core.minskew import MinSkewPartitioner
from repro.estimators import BucketEstimator, MaintainedEstimator
from repro.geometry import Rect, RectSet
from repro.serving import BatchServingEngine
from repro.tuning import FeedbackCollector, FeedbackTuner
from repro.workload import live_workload, range_queries


def random_dataset(seed: int, n_min: int = 30, n_max: int = 300):
    gen = np.random.default_rng(seed)
    n = int(gen.integers(n_min, n_max))
    k = int(gen.integers(1, 5))
    centers = gen.uniform(100, 900, (k, 2))
    pick = gen.integers(0, k, n)
    cx = np.clip(centers[pick, 0] + gen.normal(0, 60, n), 0, 1_000)
    cy = np.clip(centers[pick, 1] + gen.normal(0, 60, n), 0, 1_000)
    w = gen.uniform(0, 40, n)
    h = gen.uniform(0, 40, n)
    return RectSet.from_centers(cx, cy, w, h)


def build_hist(data, n_buckets=12):
    return MaintainedHistogram(
        MinSkewPartitioner(n_buckets, n_regions=64), data
    )


# ----------------------------------------------------------------------
# collector
# ----------------------------------------------------------------------
class TestFeedbackCollector:
    def test_records_everything_at_stride_one(self):
        coll = FeedbackCollector(sample_every=1)
        queries = RectSet(
            np.array([[0, 0, i + 1.0, i + 1.0] for i in range(5)])
        )
        served = np.arange(5, dtype=np.float64)
        coll.observe_batch(queries, served)
        got_q, got_v = coll.drain()
        assert np.array_equal(got_q.coords, queries.coords)
        assert np.array_equal(got_v, served)
        assert coll.seen == 5

    def test_drain_clears(self):
        coll = FeedbackCollector()
        coll.observe(Rect(0, 0, 1, 1), 2.0)
        assert len(coll.drain()[0]) == 1
        assert len(coll.drain()[0]) == 0
        assert coll.seen == 1  # seen survives drains

    def test_batch_observation_matches_scalar_stride(self):
        """observe_batch is the same modular sample as N observe
        calls — the scalar and batch serving paths feed one stream."""
        queries = RectSet(
            np.array([[0, 0, i + 1.0, i + 1.0] for i in range(17)])
        )
        served = np.arange(17, dtype=np.float64)
        scalar = FeedbackCollector(sample_every=3)
        for rect, value in zip(queries, served):
            scalar.observe(rect, float(value))
        batched = FeedbackCollector(sample_every=3)
        batched.observe_batch(queries, served)
        sq, sv = scalar.drain()
        bq, bv = batched.drain()
        assert np.array_equal(sq.coords, bq.coords)
        assert np.array_equal(sv, bv)

    def test_split_batches_match_one_batch(self):
        queries = RectSet(
            np.array([[0, 0, i + 1.0, i + 1.0] for i in range(20)])
        )
        served = np.arange(20, dtype=np.float64)
        whole = FeedbackCollector(sample_every=4)
        whole.observe_batch(queries, served)
        split = FeedbackCollector(sample_every=4)
        split.observe_batch(
            RectSet(queries.coords[:7]), served[:7]
        )
        split.observe_batch(
            RectSet(queries.coords[7:]), served[7:]
        )
        wq, wv = whole.drain()
        pq, pv = split.drain()
        assert np.array_equal(wq.coords, pq.coords)
        assert np.array_equal(wv, pv)

    def test_capacity_bounds_retention(self):
        coll = FeedbackCollector(capacity=3)
        for i in range(10):
            coll.observe(Rect(0, 0, i + 1.0, i + 1.0), float(i))
        queries, _ = coll.drain()
        assert len(queries) == 3
        assert coll.seen == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackCollector(sample_every=0)
        with pytest.raises(ValueError):
            FeedbackCollector(capacity=0)


# ----------------------------------------------------------------------
# tuner invariants
# ----------------------------------------------------------------------
class TestTunerInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_quota_conservation_and_epoch(self, seed):
        """Any data/feedback: the bucket quota is unchanged, counts
        still sum to exactly the covered rows, and the pass is one
        atomic epoch bump."""
        data = random_dataset(seed)
        hist = build_hist(data)
        queries = range_queries(data, 0.15, 25, seed=seed + 1)
        n_before = len(hist.buckets)
        epoch_before = hist.epoch

        report = FeedbackTuner(hist).tune(queries)

        assert report.applied
        assert len(hist.buckets) == n_before
        assert hist.epoch == epoch_before + 1
        boxes = [b.bbox for b in hist.buckets]
        covered = int((assign_by_center(data, boxes) >= 0).sum())
        total = sum(b.count for b in hist.buckets)
        assert total == pytest.approx(covered, abs=1e-9)
        assert report.mean_abs_error_after <= \
            report.mean_abs_error_before + 1e-12

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_served_equals_fresh_rebuild(self, seed):
        """After a pass, the long-lived engine answers bit-identically
        to a fresh engine over the tuned buckets."""
        data = random_dataset(seed)
        hist = build_hist(data)
        engine = BatchServingEngine(
            MaintainedEstimator(hist, name="tuned")
        )
        check = range_queries(data, 0.2, 30, seed=seed + 2)
        engine.estimate_batch(check)  # warm pre-tune snapshot

        FeedbackTuner(hist).tune(
            range_queries(data, 0.15, 25, seed=seed + 1)
        )

        served = engine.estimate_batch(check)
        fresh = BatchServingEngine(
            BucketEstimator(list(hist.buckets), name="tuned")
        ).estimate_batch(check)
        assert np.array_equal(served, fresh)

    def test_empty_feedback_is_a_noop(self):
        data = random_dataset(3)
        hist = build_hist(data)
        epoch = hist.epoch
        report = FeedbackTuner(hist).tune(
            RectSet(np.empty((0, 4), dtype=np.float64))
        )
        assert not report.applied
        assert report.scored == 0
        assert hist.epoch == epoch

    def test_repeated_passes_reach_a_fixpoint(self):
        """Re-tuning on the same feedback converges instead of
        oscillating: once no pair improves, the layout is stable."""
        data = random_dataset(7, n_min=150, n_max=151)
        hist = build_hist(data)
        queries = range_queries(data, 0.15, 40, seed=8)
        tuner = FeedbackTuner(hist)
        for _ in range(6):
            before = [b.bbox for b in hist.buckets]
            report = tuner.tune(queries)
            if report.splits == 0:
                break
        report = tuner.tune(queries)
        assert report.splits == 0
        after = [b.bbox for b in hist.buckets]
        assert after == before

    def test_tuning_after_maintenance_stream(self):
        """The loop end to end: drift the data through maintenance,
        collect feedback off the served batch, tune, and serve
        bit-identically to a fresh rebuild."""
        data = random_dataset(11, n_min=200, n_max=201)
        hist = build_hist(data)
        coll = FeedbackCollector()
        engine = BatchServingEngine(
            MaintainedEstimator(hist, name="tuned"), feedback=coll
        )
        for op in live_workload(data, 0.1, 300, seed=13,
                                drift=(0.06, 0.05)):
            if op.kind == "query":
                engine.estimate(op.rect)
            elif op.kind == "insert":
                hist.insert(op.rect)
            else:
                hist.delete(op.rect)
        queries, _ = coll.drain()
        assert len(queries) > 0
        epoch = hist.epoch
        FeedbackTuner(hist).tune(queries)
        assert hist.epoch == epoch + 1

        check = range_queries(
            hist.current_data(), 0.2, 40, seed=14
        )
        served = engine.estimate_batch(check)
        fresh = BatchServingEngine(
            BucketEstimator(list(hist.buckets), name="tuned")
        ).estimate_batch(check)
        assert np.array_equal(served, fresh)


# ----------------------------------------------------------------------
# every serving stack picks up a tuned shard bit-for-bit
# ----------------------------------------------------------------------
def test_every_engine_serves_tuned_state(served_engine,
                                         serving_dataset,
                                         serving_queries):
    """Tune the shards underneath a live stack (direct, sharded,
    pooled, or the TCP front door) and the very next batch must match
    the union reference over the tuned buckets bit-for-bit — the
    tuning pass is just another epoch bump to every consumer."""
    before = served_engine.estimate_batch(serving_queries)
    assert np.array_equal(
        before, served_engine.reference(serving_queries)
    )

    for i in range(10):
        served_engine.insert(serving_dataset[i])
    reports = served_engine.tune(serving_queries)
    assert any(r is not None and r.applied for r in reports)

    after = served_engine.estimate_batch(serving_queries)
    assert np.array_equal(
        after, served_engine.reference(serving_queries)
    )

"""Tests for the estimator layer: interface, bucket estimator, Uniform,
Sample, Fractal, and the exact oracle wrapper."""

import numpy as np
import pytest

from repro.core import MinSkewPartitioner
from repro.counting import brute_force_counts
from repro.data import uniform_rects
from repro.estimators import (
    WORDS_PER_BUCKET,
    WORDS_PER_SAMPLE,
    BucketEstimator,
    ExactEstimator,
    FractalEstimator,
    SampleEstimator,
    UniformEstimator,
    correlation_dimension,
    reservoir_sample,
)
from repro.geometry import Rect, RectSet
from repro.workload import range_queries

from .test_rtree_rstar import random_rectset


class TestBucketEstimator:
    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            BucketEstimator([])

    def test_build_from_partitioner(self, small_charminar):
        est = BucketEstimator.build(
            MinSkewPartitioner(20, n_regions=400), small_charminar
        )
        assert est.name == "Min-Skew"
        assert est.n_buckets == 20
        assert est.total_count() == len(small_charminar)

    def test_size_words(self, small_charminar):
        est = BucketEstimator.build(
            MinSkewPartitioner(25, n_regions=400), small_charminar
        )
        assert est.size_words() == 25 * WORDS_PER_BUCKET

    def test_estimate_many_matches_scalar(self, small_charminar):
        est = BucketEstimator.build(
            MinSkewPartitioner(15, n_regions=400), small_charminar
        )
        queries = range_queries(small_charminar, 0.1, 50, seed=1)
        fast = est.estimate_many(queries)
        slow = np.array([est.estimate(q) for q in queries])
        np.testing.assert_allclose(fast, slow, rtol=1e-9)

    def test_full_space_estimate_is_n(self, small_charminar):
        est = BucketEstimator.build(
            MinSkewPartitioner(15, n_regions=400), small_charminar
        )
        assert est.estimate(small_charminar.mbr()) == pytest.approx(
            len(small_charminar)
        )

    def test_selectivity(self, small_charminar):
        est = BucketEstimator.build(
            MinSkewPartitioner(15, n_regions=400), small_charminar
        )
        sel = est.selectivity(small_charminar.mbr(),
                              len(small_charminar))
        assert sel == pytest.approx(1.0)
        with pytest.raises(ValueError):
            est.selectivity(small_charminar.mbr(), 0)


class TestUniform:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            UniformEstimator(RectSet.empty())

    def test_exact_on_uniform_data(self):
        """Uniform data is the one case Uniform approximates well."""
        data = uniform_rects(20_000, seed=60)
        est = UniformEstimator(data)
        queries = range_queries(data, 0.2, 200, seed=61)
        truth = brute_force_counts(data, queries)
        rel = np.abs(est.estimate_many(queries) - truth) / truth
        assert np.median(rel) < 0.1

    def test_constant_space(self):
        data = uniform_rects(5_000, seed=62)
        assert UniformEstimator(data).size_words() == WORDS_PER_BUCKET

    def test_point_query_is_average_density(self):
        data = uniform_rects(10_000, seed=63)
        est = UniformEstimator(data)
        expected = data.total_area() / data.mbr().area
        got = est.estimate(Rect.point(5_000, 5_000))
        assert got == pytest.approx(expected, rel=0.01)


class TestSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            SampleEstimator(RectSet.empty(), 10)
        data = random_rectset(100, seed=64)
        with pytest.raises(ValueError):
            SampleEstimator(data, 0)

    def test_scaling(self):
        data = random_rectset(1_000, seed=65)
        est = SampleEstimator(data, 100, seed=66)
        # the whole space: every sample rect matches -> estimate = N
        assert est.estimate(data.mbr()) == pytest.approx(1_000)

    def test_size_words(self):
        data = random_rectset(500, seed=67)
        est = SampleEstimator(data, 50, seed=68)
        assert est.size_words() == 50 * WORDS_PER_SAMPLE

    def test_estimate_many_matches_scalar(self):
        data = random_rectset(800, seed=69)
        est = SampleEstimator(data, 80, seed=70)
        queries = range_queries(data, 0.2, 60, seed=71)
        fast = est.estimate_many(queries)
        slow = np.array([est.estimate(q) for q in queries])
        np.testing.assert_allclose(fast, slow)

    def test_unbiased_on_average(self):
        """Mean of many sampled estimates ≈ the true count."""
        data = random_rectset(2_000, seed=72)
        q = Rect(200, 200, 700, 700)
        truth = data.count_intersecting(q)
        estimates = [
            SampleEstimator(data, 200, seed=s).estimate(q)
            for s in range(40)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_reservoir_sample(self):
        gen = np.random.default_rng(73)
        stream = [Rect(i, i, i + 1, i + 1) for i in range(1_000)]
        sample = reservoir_sample(iter(stream), 50, gen)
        assert len(sample) == 50
        assert len({r.x1 for r in sample}) == 50  # distinct
        # shorter stream than k
        assert len(reservoir_sample(iter(stream[:10]), 50, gen)) == 10
        with pytest.raises(ValueError):
            reservoir_sample(iter(stream), -1, gen)


class TestFractal:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FractalEstimator(RectSet.empty())

    def test_dimension_of_uniform_points_near_2(self):
        gen = np.random.default_rng(74)
        pts = gen.uniform(0, 1_000, (20_000, 2))
        d2, _, _ = correlation_dimension(
            pts, Rect(0, 0, 1_000, 1_000), max_level=6
        )
        assert 1.7 < d2 <= 2.0

    def test_dimension_of_line_near_1(self):
        gen = np.random.default_rng(75)
        t = gen.uniform(0, 1_000, 20_000)
        pts = np.column_stack((t, t))
        d2, _, _ = correlation_dimension(
            pts, Rect(0, 0, 1_000, 1_000), max_level=6
        )
        assert 0.8 < d2 < 1.3

    def test_dimension_of_single_point_zero(self):
        pts = np.zeros((100, 2))
        d2, _, _ = correlation_dimension(
            pts, Rect(0, 0, 10, 10), max_level=5
        )
        assert d2 == pytest.approx(0.0, abs=0.05)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            correlation_dimension(np.zeros((0, 2)), Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            correlation_dimension(np.zeros((5, 2)), Rect(0, 0, 1, 1),
                                  min_level=3, max_level=2)

    def test_estimates_bounded(self):
        data = random_rectset(2_000, seed=76)
        est = FractalEstimator(data)
        queries = range_queries(data, 0.15, 100, seed=77)
        out = est.estimate_many(queries)
        assert (out >= 0).all()
        assert (out <= len(data)).all()

    def test_reasonable_on_uniform_data(self):
        """On uniform data D2≈2 and the power law is near-exact."""
        data = uniform_rects(20_000, seed=78)
        est = FractalEstimator(data)
        assert est.d2 > 1.7
        queries = range_queries(data, 0.2, 200, seed=79)
        truth = brute_force_counts(data, queries)
        rel = np.abs(est.estimate_many(queries) - truth) / truth
        assert np.median(rel) < 0.35

    def test_constant_space(self):
        data = random_rectset(500, seed=80)
        assert FractalEstimator(data).size_words() == 8

    def test_estimate_many_matches_scalar(self):
        data = random_rectset(700, seed=81)
        est = FractalEstimator(data)
        queries = range_queries(data, 0.1, 50, seed=82)
        np.testing.assert_allclose(
            est.estimate_many(queries),
            [est.estimate(q) for q in queries],
            rtol=1e-9,
        )


class TestExact:
    def test_matches_bruteforce(self):
        data = random_rectset(800, seed=83)
        est = ExactEstimator(data)
        queries = range_queries(data, 0.1, 80, seed=84)
        np.testing.assert_array_equal(
            est.estimate_many(queries),
            brute_force_counts(data, queries).astype(float),
        )

    def test_scalar(self):
        data = random_rectset(100, seed=85)
        est = ExactEstimator(data)
        q = data.mbr()
        assert est.estimate(q) == 100.0

    def test_size_is_full_data(self):
        data = random_rectset(100, seed=86)
        assert ExactEstimator(data).size_words() == 400

"""Tests for the query workload generators (paper Section 5.2)."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.workload import (
    PAPER_N_QUERIES,
    PAPER_QSIZES,
    point_queries,
    range_queries,
)


class TestRangeQueries:
    def test_validation(self, small_nj_road):
        from repro.geometry import RectSet

        with pytest.raises(ValueError):
            range_queries(RectSet.empty(), 0.1)
        with pytest.raises(ValueError):
            range_queries(small_nj_road, 0.0)
        with pytest.raises(ValueError):
            range_queries(small_nj_road, 1.5)
        with pytest.raises(ValueError):
            range_queries(small_nj_road, 0.1, 0)

    def test_count_and_default(self, small_nj_road):
        q = range_queries(small_nj_road, 0.05, 123, seed=1)
        assert len(q) == 123
        assert PAPER_N_QUERIES == 10_000
        assert PAPER_QSIZES[0] == 0.02 and PAPER_QSIZES[-1] == 0.25

    def test_queries_inside_mbr(self, small_nj_road):
        q = range_queries(small_nj_road, 0.25, 500, seed=2)
        mbr = small_nj_road.mbr()
        for rect in q:
            assert mbr.contains_rect(rect)

    def test_average_extent_matches_qsize(self, small_uniform):
        """On uniformly-placed data (little boundary clipping) the mean
        query extent tracks QSize × MBR side."""
        qsize = 0.10
        q = range_queries(small_uniform, qsize, 4_000, seed=3)
        mbr = small_uniform.mbr()
        assert q.widths.mean() == pytest.approx(
            qsize * mbr.width, rel=0.15
        )
        assert q.heights.mean() == pytest.approx(
            qsize * mbr.height, rel=0.15
        )

    def test_extent_distribution_is_pm_50pct(self, small_uniform):
        """Sides are U[0.5·mean, 1.5·mean]; boundary clipping can only
        shrink them, never grow them."""
        qsize = 0.05
        q = range_queries(small_uniform, qsize, 4_000, seed=4)
        mean_w = qsize * small_uniform.mbr().width
        assert q.widths.max() <= 1.5 * mean_w + 1e-6
        # most queries are unclipped on uniform data
        assert np.median(q.widths) >= 0.5 * mean_w - 1e-6

    def test_corner_queries_are_clipped(self, small_charminar):
        """Queries centered near the MBR boundary lose extent to the
        clipping, so the corner-heavy Charminar workload has a smaller
        mean width than QSize × MBR width."""
        qsize = 0.10
        q = range_queries(small_charminar, qsize, 4_000, seed=3)
        mbr = small_charminar.mbr()
        assert q.widths.mean() < qsize * mbr.width

    def test_centers_follow_data(self, small_charminar):
        """Query centers are drawn from input centers, so most queries
        land in the dense corners."""
        q = range_queries(small_charminar, 0.02, 2_000, seed=5)
        centers = q.centers()
        space = small_charminar.mbr()
        zone = 0.2 * space.width
        in_corner = (
            ((centers[:, 0] < zone) | (centers[:, 0] > space.x2 - zone))
            & ((centers[:, 1] < zone) | (centers[:, 1] > space.y2 - zone))
        )
        assert in_corner.mean() > 0.4

    def test_rarely_empty_results(self, small_nj_road):
        """The biased workload makes empty answers rare (the error
        metric needs Σr > 0)."""
        from repro.counting import brute_force_counts

        q = range_queries(small_nj_road, 0.05, 500, seed=6)
        counts = brute_force_counts(small_nj_road, q)
        assert (counts > 0).mean() > 0.95

    def test_deterministic(self, small_nj_road):
        a = range_queries(small_nj_road, 0.1, 100, seed=7)
        b = range_queries(small_nj_road, 0.1, 100, seed=7)
        assert a == b

    def test_center_mode_validation(self, small_nj_road):
        with pytest.raises(ValueError, match="center_mode"):
            range_queries(small_nj_road, 0.1, 10, center_mode="magic")

    def test_uniform_center_mode_unbiased(self, small_charminar):
        """Uniform centers ignore the data distribution: far fewer
        queries land in the corners than with the paper's data mode."""
        data_centered = range_queries(
            small_charminar, 0.02, 2_000, seed=11, center_mode="data"
        )
        uniform_centered = range_queries(
            small_charminar, 0.02, 2_000, seed=11, center_mode="uniform"
        )
        space = small_charminar.mbr()
        zone = 0.2 * space.width

        def corner_rate(queries):
            c = queries.centers()
            mask = (
                ((c[:, 0] < zone) | (c[:, 0] > space.x2 - zone))
                & ((c[:, 1] < zone) | (c[:, 1] > space.y2 - zone))
            )
            return mask.mean()

        assert corner_rate(uniform_centered) < \
            0.5 * corner_rate(data_centered)

    def test_uniform_center_mode_inside_mbr(self, small_nj_road):
        q = range_queries(small_nj_road, 0.25, 300, seed=12,
                          center_mode="uniform")
        mbr = small_nj_road.mbr()
        for rect in q:
            assert mbr.contains_rect(rect)


class TestPointQueries:
    def test_validation(self, small_nj_road):
        from repro.geometry import RectSet

        with pytest.raises(ValueError):
            point_queries(RectSet.empty())
        with pytest.raises(ValueError):
            point_queries(small_nj_road, 0)

    def test_degenerate_rectangles(self, small_nj_road):
        q = point_queries(small_nj_road, 200, seed=8)
        assert np.allclose(q.widths, 0.0)
        assert np.allclose(q.heights, 0.0)

    def test_inside_mbr(self, small_nj_road):
        q = point_queries(small_nj_road, 200, seed=9)
        mbr = small_nj_road.mbr()
        for rect in q:
            assert mbr.contains_rect(rect)

    def test_points_land_in_dense_areas(self, small_charminar):
        q = point_queries(small_charminar, 1_000, seed=10)
        centers = q.centers()
        space = small_charminar.mbr()
        zone = 0.2 * space.width
        in_corner = (
            ((centers[:, 0] < zone) | (centers[:, 0] > space.x2 - zone))
            & ((centers[:, 1] < zone) | (centers[:, 1] > space.y2 - zone))
        )
        assert in_corner.mean() > 0.4

"""Tests for the fixed-grid control partitioner."""

import numpy as np
import pytest

from repro.core import MinSkewPartitioner
from repro.estimators import BucketEstimator
from repro.eval import ExperimentRunner, build_estimator
from repro.geometry import RectSet
from repro.partitioners import FixedGridPartitioner
from repro.workload import range_queries


class TestFixedGrid:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FixedGridPartitioner(4).partition(RectSet.empty())

    def test_quota_never_exceeded(self, small_nj_road):
        for beta in (1, 7, 50, 120):
            buckets = FixedGridPartitioner(beta).partition(
                small_nj_road
            )
            assert 1 <= len(buckets) <= beta

    def test_counts_partition_input(self, small_nj_road):
        buckets = FixedGridPartitioner(36).partition(small_nj_road)
        assert sum(b.count for b in buckets) == len(small_nj_road)

    def test_tiles_are_uniform_and_disjoint(self, small_uniform):
        buckets = FixedGridPartitioner(25).partition(small_uniform)
        areas = {round(b.bbox.area, 6) for b in buckets}
        assert len(areas) == 1  # equal tiles
        total = sum(b.bbox.area for b in buckets)
        assert total == pytest.approx(small_uniform.mbr().area)

    def test_extreme_aspect_ratio(self):
        """A very wide space must not collapse the y-resolution to 0."""
        gen = np.random.default_rng(0)
        rs = RectSet.from_centers(
            gen.uniform(0, 1e6, 50), gen.uniform(0, 10, 50),
            np.full(50, 1.0), np.full(50, 0.1),
        )
        for beta in (1, 3, 10):
            buckets = FixedGridPartitioner(beta).partition(rs)
            assert 1 <= len(buckets) <= beta
            assert sum(b.count for b in buckets) == 50

    def test_degenerate_space(self):
        rs = RectSet(np.tile([[1.0, 1.0, 1.0, 1.0]], (5, 1)))
        buckets = FixedGridPartitioner(9).partition(rs)
        assert len(buckets) == 1
        assert buckets[0].count == 5

    def test_available_through_runner(self, small_nj_road):
        est = build_estimator("Grid", small_nj_road, 36)
        assert est.name == "Grid"
        queries = range_queries(small_nj_road, 0.1, 30, seed=1)
        assert (est.estimate_many(queries) >= 0).all()

    def test_minskew_beats_grid_on_skewed_data(self, small_charminar):
        """The control's purpose: same bucket shape, no skew awareness —
        Min-Skew must clearly win on skewed data."""
        runner = ExperimentRunner(small_charminar)
        queries = range_queries(small_charminar, 0.05, 400, seed=2)
        grid_est = BucketEstimator.build(
            FixedGridPartitioner(49), small_charminar
        )
        minskew_est = BucketEstimator.build(
            MinSkewPartitioner(49, n_regions=2_500), small_charminar
        )
        grid_err = runner.evaluate(
            grid_est, queries
        ).average_relative_error
        minskew_err = runner.evaluate(
            minskew_est, queries
        ).average_relative_error
        assert minskew_err < 0.7 * grid_err

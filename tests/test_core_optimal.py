"""Tests for the dynamic-programming optimal BSP."""

import numpy as np
import pytest

from repro.core import MinSkewPartitioner, OptimalBSP, \
    grouping_skew_on_grid
from repro.geometry import Rect, RectSet
from repro.grid import DensityGrid


def grid_from(values):
    values = np.asarray(values, dtype=float)
    return DensityGrid(values, Rect(0, 0, values.shape[0] * 10.0,
                                    values.shape[1] * 10.0))


class TestOptimalBSP:
    def test_validation(self):
        g = grid_from(np.ones((2, 2)))
        with pytest.raises(ValueError):
            OptimalBSP(g, max_buckets=0)
        with pytest.raises(ValueError):
            OptimalBSP(g).optimal_skew(0)
        with pytest.raises(ValueError):
            OptimalBSP(g, max_buckets=2).optimal_skew(3)
        big = DensityGrid(np.ones((80, 80)), Rect(0, 0, 1, 1))
        with pytest.raises(ValueError, match="exponential"):
            OptimalBSP(big)

    def test_single_bucket_is_whole_sse(self):
        values = np.array([[1.0, 5.0], [2.0, 8.0]])
        g = grid_from(values)
        expected = ((values - values.mean()) ** 2).sum()
        assert OptimalBSP(g).optimal_skew(1) == pytest.approx(expected)

    def test_enough_buckets_zero_skew(self):
        g = grid_from(np.arange(9, dtype=float).reshape(3, 3))
        opt = OptimalBSP(g)
        assert opt.optimal_skew(9) == pytest.approx(0.0, abs=1e-9)
        blocks = opt.optimal_blocks(9)
        assert len(blocks) == 9

    def test_quota_clamped_to_cells(self):
        g = grid_from(np.ones((2, 2)))
        blocks = OptimalBSP(g, max_buckets=10).optimal_blocks(10)
        assert len(blocks) <= 4

    def test_obvious_two_way_split(self):
        # left half all 1s, right half all 9s: two buckets suffice
        values = np.ones((4, 4))
        values[2:, :] = 9.0
        g = grid_from(values)
        opt = OptimalBSP(g)
        assert opt.optimal_skew(2) == pytest.approx(0.0, abs=1e-9)
        blocks = opt.optimal_blocks(2)
        assert sorted(blocks) == [(0, 1, 0, 3), (2, 3, 0, 3)]

    def test_monotone_in_budget(self):
        gen = np.random.default_rng(44)
        g = grid_from(gen.integers(0, 20, (5, 5)))
        opt = OptimalBSP(g)
        skews = [opt.optimal_skew(k) for k in range(1, 8)]
        assert skews == sorted(skews, reverse=True)

    def test_blocks_tile_grid(self):
        gen = np.random.default_rng(45)
        g = grid_from(gen.integers(0, 20, (6, 4)))
        blocks = OptimalBSP(g).optimal_blocks(5)
        covered = np.zeros((6, 4), dtype=int)
        for ix0, ix1, iy0, iy1 in blocks:
            covered[ix0:ix1 + 1, iy0:iy1 + 1] += 1
        assert (covered == 1).all()

    def test_blocks_skew_equals_reported_optimum(self):
        gen = np.random.default_rng(46)
        g = grid_from(gen.integers(0, 30, (6, 6)))
        opt = OptimalBSP(g)
        for k in (1, 3, 6):
            blocks = opt.optimal_blocks(k)
            assert grouping_skew_on_grid(g, blocks) == pytest.approx(
                opt.optimal_skew(k), abs=1e-6
            )

    def test_greedy_minskew_close_to_optimal(self):
        """The headline sanity check: the greedy construction's skew is
        within a small factor of the DP optimum on small instances."""
        gen = np.random.default_rng(47)
        n = 400
        rs = RectSet.from_centers(
            gen.uniform(0, 100, n) ** 1.3 % 100,
            gen.uniform(0, 100, n),
            gen.uniform(1, 5, n),
            gen.uniform(1, 5, n),
        )
        for beta in (4, 8):
            result = MinSkewPartitioner(
                beta, n_regions=64, split_policy="exact"
            ).partition_full(rs)
            greedy_skew = grouping_skew_on_grid(
                result.grid, result.blocks
            )
            optimal = OptimalBSP(result.grid).optimal_skew(
                min(beta, 32)
            )
            assert greedy_skew <= 2.0 * optimal + 1e-9, (
                beta, greedy_skew, optimal
            )
            assert greedy_skew >= optimal - 1e-6

"""Stateful property tests (hypothesis RuleBasedStateMachine).

Two long-lived structures get exercised with random operation
sequences, with a naive in-memory model as the oracle:

* the R*-tree under interleaved inserts and searches;
* the maintained histogram under inserts, deletes, and refreshes.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import MaintainedHistogram, MinSkewPartitioner
from repro.geometry import Rect, RectSet
from repro.rtree import RStarTree

COORD = st.integers(0, 200)
SIDE = st.integers(0, 30)


def make_rect(x, y, w, h):
    return Rect(float(x), float(y), float(x + w), float(y + h))


class RTreeMachine(RuleBasedStateMachine):
    """R*-tree vs a plain list under inserts and range counts."""

    def __init__(self):
        super().__init__()
        self.tree = RStarTree(max_entries=4)
        self.model = []

    @rule(x=COORD, y=COORD, w=SIDE, h=SIDE)
    def insert(self, x, y, w, h):
        rect = make_rect(x, y, w, h)
        self.tree.insert(rect, len(self.model))
        self.model.append(rect)

    @rule(x=COORD, y=COORD, w=SIDE, h=SIDE)
    def count_query(self, x, y, w, h):
        query = make_rect(x, y, w, h)
        expected = sum(1 for r in self.model if r.intersects(query))
        assert self.tree.count(query) == expected

    @rule(x=COORD, y=COORD, w=SIDE, h=SIDE)
    def search_query(self, x, y, w, h):
        query = make_rect(x, y, w, h)
        expected = {
            i for i, r in enumerate(self.model) if r.intersects(query)
        }
        assert set(self.tree.search(query)) == expected

    @invariant()
    def size_consistent(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        if self.model:
            self.tree.check_invariants()


class MaintainedHistogramMachine(RuleBasedStateMachine):
    """Maintained histogram vs the live data under churn."""

    @initialize()
    def setup(self):
        gen = np.random.default_rng(99)
        base = RectSet.from_centers(
            gen.uniform(20, 180, 60),
            gen.uniform(20, 180, 60),
            gen.uniform(1, 10, 60),
            gen.uniform(1, 10, 60),
        )
        self.hist = MaintainedHistogram(
            MinSkewPartitioner(6, n_regions=36), base,
            drift_threshold=0.5,
        )
        self.inserted = []

    @rule(x=COORD, y=COORD, w=SIDE, h=SIDE)
    def insert(self, x, y, w, h):
        rect = make_rect(x, y, w, h)
        self.hist.insert(rect)
        self.inserted.append(rect)

    @rule()
    def delete_one(self):
        if self.inserted:
            rect = self.inserted.pop()
            assert self.hist.delete(rect)

    @rule()
    def refresh(self):
        self.hist.refresh()
        assert not self.hist.needs_refresh

    @invariant()
    def size_matches_live_data(self):
        assert len(self.hist) == len(self.hist.current_data())

    @invariant()
    def estimates_non_negative(self):
        assert self.hist.estimate(Rect(0, 0, 250, 250)) >= 0.0

    @invariant()
    def full_space_estimate_after_refresh_is_exact(self):
        # bucket counts always sum to <= live size (uncovered inserts
        # are not in any bucket until refresh)
        total = sum(b.count for b in self.hist.buckets)
        assert total <= len(self.hist)


TestRTreeMachine = RTreeMachine.TestCase
TestRTreeMachine.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)

TestMaintainedHistogramMachine = MaintainedHistogramMachine.TestCase
TestMaintainedHistogramMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)

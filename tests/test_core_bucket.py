"""Tests for buckets and the uniformity-assumption formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bucket,
    MinSkewPartitioner,
    assign_by_center,
    buckets_from_assignment,
    estimate_many,
    owner_of_center,
)
from repro.data import charminar
from repro.geometry import Rect, RectSet


def uniform_bucket(n=1_000, side=10.0, space=1_000.0, seed=0):
    gen = np.random.default_rng(seed)
    rs = RectSet.from_centers(
        gen.uniform(side / 2, space - side / 2, n),
        gen.uniform(side / 2, space - side / 2, n),
        np.full(n, side),
        np.full(n, side),
    )
    return Bucket.from_members(Rect(0, 0, space, space), rs), rs


class TestBucketConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Bucket(Rect(0, 0, 1, 1), -1)
        with pytest.raises(ValueError):
            Bucket(Rect(0, 0, 1, 1), 1, avg_width=-2.0)

    def test_from_members(self):
        rs = RectSet(np.array([[0.0, 0.0, 2.0, 2.0],
                               [1.0, 1.0, 5.0, 7.0]]))
        b = Bucket.from_members(Rect(0, 0, 10, 10), rs)
        assert b.count == 2
        assert b.avg_width == 3.0
        assert b.avg_height == 4.0
        assert b.avg_density == pytest.approx((4 + 24) / 100.0)

    def test_from_empty_members(self):
        b = Bucket.from_members(Rect(0, 0, 1, 1), RectSet.empty())
        assert b.count == 0
        assert b.estimate(Rect(0, 0, 1, 1)) == 0.0


class TestEstimation:
    def test_full_cover_returns_count(self):
        b, _ = uniform_bucket()
        assert b.estimate(Rect(0, 0, 1_000, 1_000)) == pytest.approx(
            1_000
        )

    def test_oversized_query_clamped(self):
        b, _ = uniform_bucket()
        assert b.estimate(Rect(-500, -500, 2_000, 2_000)) == \
            pytest.approx(1_000)

    def test_disjoint_far_query_zero(self):
        b, _ = uniform_bucket()
        assert b.estimate(Rect(5_000, 5_000, 6_000, 6_000)) == 0.0

    def test_uniform_accuracy_range(self):
        """On truly uniform data the formula is close to the truth."""
        b, rs = uniform_bucket(n=20_000, seed=1)
        gen = np.random.default_rng(2)
        for _ in range(10):
            x, y = gen.uniform(100, 700, 2)
            q = Rect(x, y, x + 200, y + 200)
            true = rs.count_intersecting(q)
            assert b.estimate(q) == pytest.approx(true, rel=0.1)

    def test_uniform_accuracy_point(self):
        """Point query ≈ TA / Area (Section 3.1)."""
        b, rs = uniform_bucket(n=20_000, seed=3)
        expected = rs.total_area() / Rect(0, 0, 1_000, 1_000).area
        got = b.estimate(Rect.point(500, 500))
        assert got == pytest.approx(expected, rel=0.01)

    def test_extension_matters(self):
        """A zero-area query still catches rectangles that straddle it."""
        b, _ = uniform_bucket(n=1_000, side=100.0)
        assert b.estimate(Rect.point(500, 500)) > 0.0

    def test_degenerate_bucket_box(self):
        b = Bucket(Rect(5, 5, 5, 5), 10)
        assert b.estimate(Rect(0, 0, 10, 10)) == 10.0
        assert b.estimate(Rect(6, 6, 7, 7)) == 0.0

    def test_estimate_never_negative_nor_above_count(self):
        b, _ = uniform_bucket()
        gen = np.random.default_rng(4)
        for _ in range(50):
            x, y = gen.uniform(-200, 1_200, 2)
            q = Rect(x, y, x + gen.uniform(0, 500),
                     y + gen.uniform(0, 500))
            est = b.estimate(q)
            assert 0.0 <= est <= b.count


class TestEstimateMany:
    def test_matches_scalar(self):
        buckets = []
        gen = np.random.default_rng(5)
        for i in range(6):
            x, y = gen.uniform(0, 800, 2)
            box = Rect(x, y, x + 150, y + 150)
            buckets.append(
                Bucket(box, int(gen.integers(1, 100)),
                       avg_width=float(gen.uniform(1, 20)),
                       avg_height=float(gen.uniform(1, 20)))
            )
        buckets.append(Bucket(Rect(3, 3, 3, 3), 5))  # degenerate
        queries = RectSet.from_centers(
            gen.uniform(0, 1_000, 200),
            gen.uniform(0, 1_000, 200),
            gen.uniform(0, 400, 200),
            gen.uniform(0, 400, 200),
        )
        fast = estimate_many(buckets, queries, chunk_size=17)
        slow = np.array(
            [sum(b.estimate(q) for b in buckets) for q in queries]
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_empty_inputs(self):
        assert estimate_many([], RectSet.empty()).shape == (0,)
        q = RectSet(np.array([[0.0, 0.0, 1.0, 1.0]]))
        assert estimate_many([], q).tolist() == [0.0]


class TestAssignment:
    def test_assign_by_center(self):
        rs = RectSet.from_centers(
            [1.0, 5.0, 9.0], [1.0, 5.0, 9.0],
            [1.0, 1.0, 1.0], [1.0, 1.0, 1.0],
        )
        boxes = [Rect(0, 0, 4, 4), Rect(4, 4, 10, 10)]
        assignment = assign_by_center(rs, boxes)
        assert assignment.tolist() == [0, 1, 1]

    def test_unassigned_is_minus_one(self):
        rs = RectSet.from_centers([100.0], [100.0], [1.0], [1.0])
        assignment = assign_by_center(rs, [Rect(0, 0, 1, 1)])
        assert assignment.tolist() == [-1]

    def test_overlapping_boxes_first_wins(self):
        rs = RectSet.from_centers([5.0], [5.0], [1.0], [1.0])
        boxes = [Rect(0, 0, 10, 10), Rect(4, 4, 6, 6)]
        assert assign_by_center(rs, boxes).tolist() == [0]

    def test_buckets_from_assignment(self):
        rs = RectSet(np.array([
            [0.0, 0.0, 2.0, 2.0],
            [1.0, 1.0, 3.0, 3.0],
            [8.0, 8.0, 9.0, 9.0],
        ]))
        boxes = [Rect(0, 0, 5, 5), Rect(5, 5, 10, 10),
                 Rect(20, 20, 30, 30)]
        assignment = assign_by_center(rs, boxes)
        buckets = buckets_from_assignment(rs, boxes, assignment)
        assert [b.count for b in buckets] == [2, 1, 0]
        assert buckets[0].avg_width == 2.0
        assert buckets[1].avg_width == 1.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_counts_partition(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(1, 100))
        rs = RectSet.from_centers(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n),
            gen.uniform(0, 5, n), gen.uniform(0, 5, n),
        )
        # 2x2 disjoint cover of the space
        boxes = [
            Rect(0, 0, 50, 50), Rect(50, 0, 100, 50),
            Rect(0, 50, 50, 100), Rect(50, 50, 100, 100),
        ]
        assignment = assign_by_center(rs, boxes)
        buckets = buckets_from_assignment(rs, boxes, assignment)
        assert sum(b.count for b in buckets) == n


class TestCenterTieBreaking:
    """Regression: centers lying *exactly* on split coordinates.

    The documented rule (``owner_of_center``): boxes are half-open,
    ``[x1, x2) × [y1, y2)``, closed only along the global max edges.
    Before the rule, a center on a shared edge satisfied the closed
    containment test of both neighbours and ownership silently fell
    to whichever box came first in list order."""

    SPLIT_BOXES = [Rect(0, 0, 5, 10), Rect(5, 0, 10, 10)]

    def test_center_on_shared_split_goes_to_upper_box(self):
        rs = RectSet.from_centers([5.0], [5.0], [2.0], [2.0])
        assert assign_by_center(rs, self.SPLIT_BOXES).tolist() == [1]

    def test_ownership_is_independent_of_list_order(self):
        rs = RectSet.from_centers([5.0], [5.0], [2.0], [2.0])
        forward = assign_by_center(rs, self.SPLIT_BOXES)
        swapped = assign_by_center(rs, self.SPLIT_BOXES[::-1])
        assert self.SPLIT_BOXES[forward[0]] == \
            self.SPLIT_BOXES[::-1][swapped[0]]

    def test_global_max_edges_stay_covered(self):
        # closed only at the layout's outer boundary: the corner and
        # max-edge centers still land in the upper/right box
        rs = RectSet.from_centers(
            [10.0, 5.0, 10.0], [5.0, 10.0, 10.0],
            [1.0, 1.0, 1.0], [1.0, 1.0, 1.0],
        )
        boxes = [
            Rect(0, 0, 5, 5), Rect(5, 0, 10, 5),
            Rect(0, 5, 5, 10), Rect(5, 5, 10, 10),
        ]
        assert assign_by_center(rs, boxes).tolist() == [3, 3, 3]

    def test_scalar_probe_agrees_with_vector_assignment(self):
        boxes = [
            Rect(0, 0, 5, 5), Rect(5, 0, 10, 5),
            Rect(0, 5, 5, 10), Rect(5, 5, 10, 10),
        ]
        # every lattice point, including the split lines and max edges
        coords = [float(v) for v in range(11)]
        cx = np.array([x for x in coords for _ in coords])
        cy = np.array([y for _ in coords for y in coords])
        n = len(cx)
        rs = RectSet.from_centers(cx, cy, np.ones(n), np.ones(n))
        assignment = assign_by_center(rs, boxes)
        for i in range(n):
            owner = owner_of_center(cx[i], cy[i], boxes)
            expected = -1 if owner is None else owner
            assert assignment[i] == expected
        # a BSP cover assigns every interior center exactly once
        assert (assignment >= 0).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_split_centers_partition_exactly_once(self, seed):
        """Centers snapped onto split coordinates never double-count
        and never drop: counts still partition the input."""
        gen = np.random.default_rng(seed)
        n = int(gen.integers(1, 80))
        # centers drawn from the split lattice itself
        cx = gen.choice([0.0, 25.0, 50.0, 75.0, 100.0], n)
        cy = gen.choice([0.0, 25.0, 50.0, 75.0, 100.0], n)
        rs = RectSet.from_centers(
            cx, cy, gen.uniform(0, 5, n), gen.uniform(0, 5, n)
        )
        edges = [0.0, 25.0, 50.0, 75.0, 100.0]
        boxes = [
            Rect(edges[i], edges[j], edges[i + 1], edges[j + 1])
            for i in range(4)
            for j in range(4)
        ]
        assignment = assign_by_center(rs, boxes)
        assert (assignment >= 0).all()
        buckets = buckets_from_assignment(rs, boxes, assignment)
        assert sum(b.count for b in buckets) == n


class TestAssignmentSummaryHoist:
    def test_bit_identical_to_per_statistic_masking(self):
        """Regression for the ``buckets_from_assignment`` hoist: the
        single precomputed ``assigned`` mask must reproduce the old
        recompute-per-statistic form bit-for-bit on real data."""
        data = charminar(2_000, seed=5)
        boxes = [
            b.bbox
            for b in MinSkewPartitioner(
                16, n_regions=256
            ).partition(data)
        ]
        assignment = assign_by_center(data, boxes)
        hoisted = buckets_from_assignment(data, boxes, assignment)

        # the pre-hoist form: mask recomputed for every column
        n_boxes = len(boxes)
        counts = np.bincount(
            assignment[assignment >= 0], minlength=n_boxes
        ).astype(np.int64)
        sum_w = np.bincount(
            assignment[assignment >= 0],
            weights=data.widths[assignment >= 0],
            minlength=n_boxes,
        )
        sum_h = np.bincount(
            assignment[assignment >= 0],
            weights=data.heights[assignment >= 0],
            minlength=n_boxes,
        )
        sum_area = np.bincount(
            assignment[assignment >= 0],
            weights=data.areas[assignment >= 0],
            minlength=n_boxes,
        )
        reference = []
        for i, box in enumerate(boxes):
            c = int(counts[i])
            if c == 0:
                reference.append(Bucket(box, 0))
                continue
            area = box.area
            reference.append(
                Bucket(
                    box,
                    c,
                    avg_width=float(sum_w[i] / c),
                    avg_height=float(sum_h[i] / c),
                    avg_density=float(sum_area[i] / area)
                    if area > 0 else float(c),
                )
            )
        assert hoisted == reference

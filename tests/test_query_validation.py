"""Batch query validation regressions.

Every batch entry point routes its query block through
:func:`repro.geometry.validate.validate_coords_array` before any kernel
runs, so a :class:`~repro.geometry.RectSet` constructed with
``validate=False`` cannot smuggle NaN, infinite, or inverted rectangles
into an estimator, the serving engine, or the resilience chain.  These
tests build exactly such hostile batches and assert the
:class:`~repro.errors.GeometryError` fires — and that a rejected batch
leaves the serving cache untouched.
"""

import numpy as np
import pytest

from repro.data import charminar
from repro.errors import GeometryError
from repro.estimators.exact import ExactEstimator
from repro.eval import ALL_TECHNIQUES, build_estimator
from repro.geometry import RectSet
from repro.obs import OBS
from repro.resilience import build_fallback_chain
from repro.serving import BatchServingEngine
from repro.workload import range_queries

DATA = charminar(400, seed=7)


def _hostile_batches():
    base = range_queries(DATA, 0.1, 5, seed=1).coords.copy()
    nan = base.copy()
    nan[2, 1] = np.nan
    inf = base.copy()
    inf[0, 3] = np.inf
    inverted_x = base.copy()
    inverted_x[4, [0, 2]] = inverted_x[4, [2, 0]] + [1.0, -1.0]
    inverted_y = base.copy()
    inverted_y[1, 1] = inverted_y[1, 3] + 5.0
    return {
        "nan": nan,
        "inf": inf,
        "inverted_x": inverted_x,
        "inverted_y": inverted_y,
    }


HOSTILE = _hostile_batches()


def _rectset(kind):
    return RectSet(HOSTILE[kind], validate=False)


@pytest.fixture(scope="module", params=tuple(ALL_TECHNIQUES) + ("Exact",))
def estimator(request):
    if request.param == "Exact":
        return ExactEstimator(DATA)
    return build_estimator(request.param, DATA, 8, n_regions=100)


class TestEstimatorBatchValidation:
    @pytest.mark.parametrize("kind", sorted(HOSTILE))
    def test_hostile_batch_rejected(self, estimator, kind):
        with pytest.raises(GeometryError):
            estimator.estimate_batch(_rectset(kind))

    def test_error_names_offending_row(self, estimator):
        with pytest.raises(GeometryError, match="query 2"):
            estimator.estimate_batch(_rectset("nan"))

    def test_rectset_constructor_rejects_by_default(self):
        with pytest.raises(GeometryError):
            RectSet(HOSTILE["nan"])
        with pytest.raises(GeometryError):
            RectSet(HOSTILE["inverted_x"])


class TestEngineValidation:
    def test_rejected_batch_leaves_cache_untouched(self):
        est = build_estimator("Min-Skew", DATA, 8, n_regions=100)
        engine = BatchServingEngine(est, auto_index=False)
        try:
            for kind in sorted(HOSTILE):
                with pytest.raises(GeometryError):
                    engine.estimate_batch(_rectset(kind))
            assert len(engine.cache) == 0
            assert engine.cache.hits == 0
            assert engine.cache.misses == 0
            # the engine still serves valid work afterwards
            good = range_queries(DATA, 0.1, 10, seed=2)
            np.testing.assert_array_equal(
                engine.estimate_batch(good), est.estimate_batch(good)
            )
        finally:
            engine.detach_indexes()

    def test_zero_area_queries_are_valid(self):
        est = build_estimator("Grid", DATA, 8)
        engine = BatchServingEngine(est, auto_index=False)
        coords = np.tile(
            np.array([[10.0, 10.0, 10.0, 10.0]]), (3, 1)
        )
        out = engine.estimate_batch(RectSet(coords))
        assert out.shape == (3,)
        assert np.isfinite(out).all()


def _hostile_rect(x1, y1, x2, y2):
    """A Rect carrying coordinates its constructor would reject.

    ``Rect.__post_init__`` validates, so a NaN/inverted scalar query
    can only reach the engine through an object that skipped it — the
    same trust boundary a ``RectSet(validate=False)`` batch crosses.
    """
    from repro.geometry import Rect

    rect = object.__new__(Rect)
    object.__setattr__(rect, "x1", x1)
    object.__setattr__(rect, "y1", y1)
    object.__setattr__(rect, "x2", x2)
    object.__setattr__(rect, "y2", y2)
    return rect


HOSTILE_SCALARS = {
    "nan": (0.0, float("nan"), 1.0, 1.0),
    "inf": (0.0, 0.0, float("inf"), 1.0),
    "inverted_x": (5.0, 0.0, 1.0, 1.0),
    "inverted_y": (0.0, 5.0, 1.0, 1.0),
}


class TestEngineScalarValidation:
    """The scalar path must reject exactly what the batch path
    rejects — before the cache sees the query (a NaN key could never
    hit and would grow the cache forever)."""

    @pytest.mark.parametrize("kind", sorted(HOSTILE_SCALARS))
    def test_hostile_scalar_rejected(self, kind):
        est = build_estimator("Min-Skew", DATA, 8, n_regions=100)
        engine = BatchServingEngine(est, auto_index=False)
        with pytest.raises(GeometryError):
            engine.estimate(_hostile_rect(*HOSTILE_SCALARS[kind]))
        assert len(engine.cache) == 0
        assert engine.cache.misses == 0

    @pytest.mark.parametrize("kind", sorted(HOSTILE_SCALARS))
    def test_scalar_and_batch_paths_agree_on_rejection(self, kind):
        est = build_estimator("Grid", DATA, 8)
        engine = BatchServingEngine(est, auto_index=False)
        coords = np.array([HOSTILE_SCALARS[kind]], dtype=np.float64)
        with pytest.raises(GeometryError):
            engine.estimate_batch(RectSet(coords, validate=False))
        with pytest.raises(GeometryError):
            engine.estimate(_hostile_rect(*HOSTILE_SCALARS[kind]))

    def test_valid_scalar_still_served_and_cached(self):
        est = build_estimator("Grid", DATA, 8)
        engine = BatchServingEngine(est, auto_index=False)
        query = next(iter(range_queries(DATA, 0.1, 1, seed=3)))
        value = engine.estimate(query)
        assert value == est.estimate(query)
        assert len(engine.cache) == 1


class TestGuardedChainValidation:
    def test_rejected_before_entering_chain(self):
        chain = build_fallback_chain(DATA, 8, n_regions=100)
        with OBS.scope():
            OBS.reset()
            for kind in sorted(HOSTILE):
                with pytest.raises(GeometryError):
                    chain.estimate_batch(_rectset(kind))
            counters = dict(OBS.snapshot()["counters"])
            OBS.reset()
        # validation failed fast: no link was ever consulted
        assert not any(
            key.startswith(("resilience.link_failures",
                            "resilience.served"))
            for key in counters
        )

"""Tests for paged storage, the buffer pool, and external builders."""

import numpy as np
import pytest

from repro.core import MinSkewPartitioner
from repro.estimators import BucketEstimator
from repro.geometry import Rect, RectSet
from repro.grid import DensityGrid, square_grid_shape
from repro.storage import (
    BufferPool,
    PageFile,
    external_density_grid,
    external_mbr,
    external_min_skew,
    external_reservoir_sample,
    multipass_equi_area,
)


@pytest.fixture()
def pagefile(small_nj_road):
    return PageFile.from_rectset(small_nj_road, capacity=128)


class TestPageFile:
    def test_validation(self, small_nj_road):
        with pytest.raises(ValueError):
            PageFile.from_rectset(small_nj_road, capacity=0)

    def test_packing(self, small_nj_road, pagefile):
        assert pagefile.n_records == len(small_nj_road)
        assert pagefile.n_pages == int(np.ceil(len(small_nj_road) / 128))

    def test_read_counts(self, pagefile):
        pagefile.reset_counters()
        pagefile.read_page(0)
        pagefile.read_page(0)
        assert pagefile.reads == 2
        with pytest.raises(IndexError):
            pagefile.read_page(pagefile.n_pages)

    def test_scan_counts_one_sweep(self, pagefile):
        pagefile.reset_counters()
        pages = list(pagefile.scan())
        assert len(pages) == pagefile.n_pages
        assert pagefile.reads == pagefile.n_pages

    def test_roundtrip(self, small_nj_road, pagefile):
        assert pagefile.to_rectset() == small_nj_road


class TestBufferPool:
    def test_validation(self, pagefile):
        with pytest.raises(ValueError):
            BufferPool(pagefile, 0)

    def test_hits_and_misses(self, pagefile):
        pagefile.reset_counters()
        pool = BufferPool(pagefile, capacity=2)
        pool.read_page(0)
        pool.read_page(0)
        pool.read_page(1)
        pool.read_page(2)  # evicts page 0 (LRU)
        pool.read_page(0)
        assert pool.hits == 1
        assert pool.misses == 4
        assert pagefile.reads == 4
        assert 0.0 < pool.hit_rate < 1.0

    def test_lru_keeps_hot_page(self, pagefile):
        pool = BufferPool(pagefile, capacity=2)
        pool.read_page(0)
        pool.read_page(1)
        pool.read_page(0)  # 0 becomes most-recent
        pool.read_page(2)  # evicts 1
        pool.read_page(0)
        assert pool.hits == 2


class TestExternalBuilders:
    def test_external_mbr(self, small_nj_road, pagefile):
        assert external_mbr(pagefile) == small_nj_road.mbr()

    def test_external_mbr_empty(self):
        with pytest.raises(ValueError):
            external_mbr(PageFile.from_rectset(RectSet.empty()))

    def test_density_grid_matches_in_memory(self, small_nj_road,
                                            pagefile):
        bounds = small_nj_road.mbr()
        ext = external_density_grid(pagefile, 20, 20, bounds)
        mem = DensityGrid.from_rects(small_nj_road, 20, 20,
                                     bounds=bounds)
        np.testing.assert_allclose(ext.densities, mem.densities)

    def test_density_grid_is_one_sweep(self, pagefile):
        pagefile.reset_counters()
        external_density_grid(pagefile, 20, 20,
                              external_mbr_cached(pagefile))
        # exactly one sequential sweep (the cached-MBR helper used none)
        assert pagefile.reads == pagefile.n_pages

    def test_reservoir_sample(self, pagefile):
        rng = np.random.default_rng(1)
        pagefile.reset_counters()
        sample = external_reservoir_sample(pagefile, 100, rng)
        assert len(sample) == 100
        assert pagefile.reads == pagefile.n_pages

    def test_external_min_skew_matches_in_memory(self, small_nj_road,
                                                 pagefile):
        buckets, _ = external_min_skew(
            pagefile, 20, n_regions=400,
            bounds=small_nj_road.mbr(),
        )
        mem = MinSkewPartitioner(20, n_regions=400).partition(
            small_nj_road
        )
        assert len(buckets) == len(mem)
        assert sorted(b.bbox.as_tuple() for b in buckets) == \
            sorted(b.bbox.as_tuple() for b in mem)
        assert sorted(b.count for b in buckets) == \
            sorted(b.count for b in mem)

    def test_external_min_skew_sweep_count(self, small_nj_road,
                                           pagefile):
        """Plain build: 1 density sweep + 1 assignment sweep; each
        refinement adds one density sweep."""
        bounds = small_nj_road.mbr()
        for refinements, sweeps in ((0, 2), (2, 4)):
            pagefile.reset_counters()
            external_min_skew(
                pagefile, 12, n_regions=1_600,
                refinements=refinements, bounds=bounds,
            )
            assert pagefile.reads == sweeps * pagefile.n_pages, \
                refinements

    def test_external_min_skew_estimates(self, small_nj_road,
                                         pagefile):
        from repro.eval import ExperimentRunner
        from repro.workload import range_queries

        buckets, _ = external_min_skew(pagefile, 25, n_regions=400)
        est = BucketEstimator(buckets, name="Min-Skew/external")
        runner = ExperimentRunner(small_nj_road)
        queries = range_queries(small_nj_road, 0.1, 200, seed=6)
        err = runner.evaluate(est, queries).average_relative_error
        assert err < 0.35

    def test_multipass_equi_area(self, small_nj_road, pagefile):
        pagefile.reset_counters()
        buckets = multipass_equi_area(pagefile, 8)
        assert 1 <= len(buckets) <= 8
        assert sum(b.count for b in buckets) == len(small_nj_road)
        # several passes: at least one sweep per split plus the stats
        # sweep — far more than Min-Skew's constant sweep count
        assert pagefile.reads >= (len(buckets) - 1) * pagefile.n_pages

    def test_multipass_equi_area_degenerate(self):
        rs = RectSet(np.tile([[1.0, 1.0, 2.0, 2.0]], (10, 1)))
        pf = PageFile.from_rectset(rs, capacity=4)
        buckets = multipass_equi_area(pf, 4)
        assert sum(b.count for b in buckets) == 10


def external_mbr_cached(pagefile):
    """Compute the MBR without touching the counters under test."""
    before = pagefile.reads
    bounds = external_mbr(pagefile)
    pagefile.reads = before
    return bounds


class TestRTreeIoCounters:
    def test_counters_grow_with_inserts(self, small_nj_road):
        from repro.rtree import RStarTree

        tree = RStarTree(8)
        for i in range(200):
            tree.insert(small_nj_road[i], i)
        assert tree.node_reads > 200  # at least one node per insert
        assert tree.node_writes > 0
        tree.reset_io_counters()
        assert tree.node_reads == 0

    def test_per_insert_cost_grows_with_height(self, small_nj_road):
        """O(log N) node reads per insert: deeper trees cost more."""
        from repro.rtree import RStarTree

        costs = {}
        for n in (100, 2_000):
            tree = RStarTree(8)
            for i in range(n):
                tree.insert(small_nj_road[i], i)
            costs[n] = tree.node_reads / n
        assert costs[2_000] > costs[100]

"""Unit tests for the resilience layer: clock, faults, retry, chain."""

import numpy as np
import pytest

from repro.data import uniform_rects
from repro.errors import (
    ArtifactCorruptError,
    DeadlineError,
    FallbackExhaustedError,
    InjectedFault,
    TransientIOError,
)
from repro.geometry import Rect
from repro.obs import OBS
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    StepClock,
    active_injector,
    build_fallback_chain,
    fire,
    installed,
    sites_from_rates,
    with_retry,
)


# ----------------------------------------------------------------------
# logical clock and deadlines
# ----------------------------------------------------------------------
class TestStepClock:
    def test_advance_and_now(self):
        clock = StepClock()
        assert clock.now() == 0
        assert clock.advance(3) == 3
        assert clock.advance() == 4

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            StepClock().advance(-1)

    def test_deadline_expires_and_raises(self):
        clock = StepClock()
        deadline = Deadline(clock, 2)
        deadline.check()
        clock.advance(2)
        assert deadline.expired()
        with pytest.raises(DeadlineError):
            deadline.check("unit test")

    def test_unlimited_deadline_never_expires(self):
        clock = StepClock()
        deadline = Deadline(clock, None)
        clock.advance(10_000)
        assert not deadline.expired()
        assert deadline.remaining() is None
        deadline.check()


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
def _injection_trace(plan, sites):
    """Booleans: did firing each site in sequence inject a fault?"""
    injector = FaultInjector(plan)
    trace = []
    for site in sites:
        try:
            injector.fire(site)
            trace.append(False)
        except Exception:
            trace.append(True)
    return trace, injector


class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("x", kind="nope")
        with pytest.raises(ValueError):
            FaultSpec("x", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("x", start_step=-1)

    def test_kinds_raise_typed_errors(self):
        for kind, exc in (
            ("io", TransientIOError),
            ("corrupt", ArtifactCorruptError),
            ("fail", InjectedFault),
        ):
            injector = FaultInjector(
                FaultPlan(0, (FaultSpec("s", kind=kind),))
            )
            with pytest.raises(exc):
                injector.fire("s")

    def test_slow_fault_advances_clock_without_raising(self):
        clock = StepClock()
        injector = FaultInjector(
            FaultPlan(0, (FaultSpec("s", kind="slow", slow_steps=7),)),
            clock=clock,
        )
        injector.fire("s")
        assert clock.now() == 7

    def test_same_seed_same_injections(self):
        plan = FaultPlan(123, (FaultSpec("a", probability=0.3),
                               FaultSpec("b", probability=0.6)))
        sites = ["a", "b", "a", "a", "b"] * 40
        trace1, inj1 = _injection_trace(plan, sites)
        trace2, inj2 = _injection_trace(plan, sites)
        assert trace1 == trace2
        assert inj1.stats() == inj2.stats()
        assert True in trace1 and False in trace1

    def test_spec_streams_independent_of_other_sites(self):
        # Removing site-b invocations must not change site-a decisions.
        spec_a = FaultSpec("a", probability=0.5)
        with_b = FaultPlan(9, (spec_a, FaultSpec("b", probability=0.5)))
        without_b = FaultPlan(9, (spec_a,))
        mixed = ["a", "b"] * 50
        only_a = [s for s in mixed if s == "a"]
        trace_mixed, _ = _injection_trace(with_b, mixed)
        trace_only, _ = _injection_trace(without_b, only_a)
        assert [t for s, t in zip(mixed, trace_mixed) if s == "a"] \
            == trace_only

    def test_prefix_matching(self):
        spec = FaultSpec("estimator.*")
        assert spec.matches("estimator.Min-Skew")
        assert spec.matches("estimator.build.Sample")
        assert not spec.matches("storage.read")

    def test_step_schedule_window(self):
        plan = FaultPlan(
            0, (FaultSpec("s", start_step=2, stop_step=4),)
        )
        trace, _ = _injection_trace(plan, ["s"] * 6)
        assert trace == [False, False, True, True, False, False]

    def test_transient_then_recover(self):
        plan = FaultPlan(0, (FaultSpec("s", recover_after=2),))
        trace, injector = _injection_trace(plan, ["s"] * 5)
        assert trace == [True, True, False, False, False]
        assert injector.stats()["injected"] == {"s": 2}
        assert injector.stats()["fired"] == {"s": 5}

    def test_installed_restores_previous(self):
        assert active_injector() is None
        fire("anything")  # no-op without an injector
        outer = FaultInjector(FaultPlan(0))
        inner = FaultInjector(FaultPlan(1))
        with installed(outer):
            assert active_injector() is outer
            with installed(inner):
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_sites_from_rates(self):
        specs = sites_from_rates({"b": 0.5, "a": 0.1}, kind="fail")
        assert [s.site for s in specs] == ["a", "b"]
        assert all(s.kind == "fail" for s in specs)


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_retries_retryable_until_success(self):
        clock = StepClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError("flap")
            return "ok"

        assert with_retry(flaky, RetryPolicy(max_attempts=3), clock) \
            == "ok"
        assert len(calls) == 3
        # backoff 1 after attempt 1, 2 after attempt 2
        assert clock.now() == 3

    def test_gives_up_after_max_attempts(self):
        def always():
            raise TransientIOError("flap")

        with pytest.raises(TransientIOError):
            with_retry(always, RetryPolicy(max_attempts=2), StepClock())

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def poisoned():
            calls.append(1)
            raise ArtifactCorruptError("bad checksum")

        with pytest.raises(ArtifactCorruptError):
            with_retry(poisoned, RetryPolicy(max_attempts=5),
                       StepClock())
        assert len(calls) == 1


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        clock = StepClock()
        breaker = CircuitBreaker(clock, failure_threshold=2,
                                 reset_after_steps=5)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5)
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = StepClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 reset_after_steps=4)
        breaker.record_failure()
        clock.advance(4)
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"


# ----------------------------------------------------------------------
# the guarded fallback chain
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chain_data():
    return uniform_rects(300, seed=5)


def _fresh_chain(chain_data, **kwargs):
    return build_fallback_chain(chain_data, 10, n_regions=256, **kwargs)


class TestGuardedEstimator:
    def test_no_faults_serves_primary(self, chain_data):
        chain = _fresh_chain(chain_data)
        with OBS.scope():
            OBS.reset()
            value = chain.estimate(Rect(0.0, 0.0, 500.0, 500.0))
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert np.isfinite(value) and value >= 0.0
        assert counters.get("resilience.served.Min-Skew") == 1
        assert "resilience.degraded" not in counters

    def test_poisoned_primary_degrades_to_sample(self, chain_data):
        chain = _fresh_chain(chain_data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        query = Rect(0.0, 0.0, 500.0, 500.0)
        with OBS.scope():
            OBS.reset()
            with installed(FaultInjector(plan, clock=chain.clock)):
                value = chain.estimate(query)
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert np.isfinite(value)
        assert counters.get("resilience.served.Sample") == 1
        assert counters.get("resilience.degraded") == 1
        assert counters.get("resilience.link_failures.Min-Skew") == 1

    def test_transient_fault_is_retried_not_degraded(self, chain_data):
        chain = _fresh_chain(chain_data)
        plan = FaultPlan(
            0,
            (FaultSpec("estimator.Min-Skew", kind="io",
                       recover_after=1),),
        )
        with OBS.scope():
            OBS.reset()
            with installed(FaultInjector(plan, clock=chain.clock)):
                chain.estimate(Rect(0.0, 0.0, 500.0, 500.0))
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert counters.get("resilience.retries") == 1
        assert counters.get("resilience.served.Min-Skew") == 1
        assert "resilience.degraded" not in counters

    def test_all_links_failing_returns_last_resort(self, chain_data):
        chain = _fresh_chain(chain_data)
        plan = FaultPlan(0, (FaultSpec("estimator.build.*",
                                       kind="corrupt"),))
        with OBS.scope():
            OBS.reset()
            with installed(FaultInjector(plan, clock=chain.clock)):
                value = chain.estimate(Rect(0.0, 0.0, 1.0, 1.0))
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert value == 0.0
        assert counters.get("resilience.last_resort") == 1

    def test_exhausted_chain_raises_without_last_resort(
        self, chain_data
    ):
        chain = _fresh_chain(chain_data)
        chain.last_resort = None
        plan = FaultPlan(0, (FaultSpec("estimator.build.*",
                                       kind="corrupt"),))
        with installed(FaultInjector(plan, clock=chain.clock)):
            with pytest.raises(FallbackExhaustedError):
                chain.estimate(Rect(0.0, 0.0, 1.0, 1.0))

    def test_breaker_stops_hammering_poisoned_link(self, chain_data):
        chain = _fresh_chain(chain_data, failure_threshold=2,
                             reset_after_steps=10_000)
        plan = FaultPlan(0, (FaultSpec("estimator.build.Min-Skew",
                                       kind="corrupt"),))
        injector = FaultInjector(plan, clock=chain.clock)
        with OBS.scope():
            OBS.reset()
            with installed(injector):
                for _ in range(6):
                    chain.estimate(Rect(0.0, 0.0, 500.0, 500.0))
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert counters.get("resilience.link_failures.Min-Skew") == 2
        assert counters.get("resilience.skipped.Min-Skew") == 4
        assert counters.get("resilience.served.Sample") == 6

    def test_slow_faults_trip_the_deadline(self, chain_data):
        # A slow fault stalls the failing primary long enough that the
        # per-call budget is gone before the next link is tried: the
        # call short-circuits to the last resort instead of blowing
        # the budget further.
        chain = _fresh_chain(chain_data, call_budget_steps=3)
        plan = FaultPlan(0, (
            FaultSpec("estimator.*", kind="slow", slow_steps=50),
            FaultSpec("estimator.build.Min-Skew", kind="corrupt"),
        ))
        with OBS.scope():
            OBS.reset()
            with installed(FaultInjector(plan, clock=chain.clock)):
                value = chain.estimate(Rect(0.0, 0.0, 1.0, 1.0))
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert np.isfinite(value)
        assert counters.get("resilience.deadline_exceeded", 0) >= 1
        assert counters.get("resilience.last_resort", 0) >= 1

    def test_estimate_many_degrades_whole_batch(self, chain_data):
        chain = _fresh_chain(chain_data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        queries = uniform_rects(20, seed=8)
        with installed(FaultInjector(plan, clock=chain.clock)):
            values = chain.estimate_many(queries)
        assert values.shape == (20,)
        assert np.isfinite(values).all()

    def test_invalid_query_is_callers_bug(self):
        # Degenerate inputs never reach the chain: the Rect constructor
        # (the single validation helper) rejects them first.
        with pytest.raises(ValueError):
            Rect(float("nan"), 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

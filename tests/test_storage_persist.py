"""Crash-safe persistence: atomic writes, checksummed artifacts,
checkpoint stores, and the guarded dataset loader."""

import json

import numpy as np
import pytest

from repro.data import load_rects, save_csv, save_npy, uniform_rects
from repro.errors import (
    ArtifactCorruptError,
    ArtifactMissingError,
    CheckpointError,
)
from repro.eval import ExperimentRunner
from repro.geometry import RectSet
from repro.partitioners import FixedGridPartitioner
from repro.storage import (
    CheckpointStore,
    atomic_write_text,
    config_fingerprint,
    load_buckets,
    load_rectset,
    read_artifact,
    save_buckets,
    save_rectset,
    write_artifact,
)
from repro.workload import range_queries


# ----------------------------------------------------------------------
# atomic writes and checksummed envelopes
# ----------------------------------------------------------------------
class TestAtomicArtifacts:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_atomic_write_replaces_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_artifact_roundtrip(self, tmp_path):
        path = tmp_path / "a.json"
        payload = {"x": [1, 2, 3], "y": "z"}
        write_artifact(path, payload, kind="unit")
        assert read_artifact(path, kind="unit") == payload

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactMissingError):
            read_artifact(tmp_path / "nope.json", kind="unit")

    def test_kind_mismatch_is_corrupt(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, {}, kind="buckets")
        with pytest.raises(ArtifactCorruptError):
            read_artifact(path, kind="rectset")

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, {"count": 5}, kind="unit")
        doc = json.loads(path.read_text())
        doc["payload"]["count"] = 6
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactCorruptError):
            read_artifact(path, kind="unit")

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, {"x": list(range(100))}, kind="unit")
        path.write_text(path.read_text()[:40])  # simulate a torn write
        with pytest.raises(ArtifactCorruptError):
            read_artifact(path, kind="unit")

    def test_non_envelope_json_is_corrupt(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text('{"just": "json"}')
        with pytest.raises(ArtifactCorruptError):
            read_artifact(path, kind="unit")


# ----------------------------------------------------------------------
# domain artifacts: histograms and rect sets
# ----------------------------------------------------------------------
class TestDomainArtifacts:
    def test_bucket_histogram_roundtrip(self, tmp_path):
        data = uniform_rects(400, seed=3)
        buckets = FixedGridPartitioner(9).partition(data)
        path = tmp_path / "hist.json"
        save_buckets(path, buckets)
        loaded = load_buckets(path)
        assert len(loaded) == len(buckets)
        for a, b in zip(buckets, loaded):
            assert a.bbox == b.bbox
            assert a.count == b.count
            query = a.bbox
            assert a.estimate(query) == pytest.approx(b.estimate(query))

    def test_rectset_roundtrip(self, tmp_path):
        data = uniform_rects(50, seed=4)
        path = tmp_path / "rects.json"
        save_rectset(path, data)
        loaded = load_rectset(path)
        np.testing.assert_array_equal(loaded.coords, data.coords)

    def test_empty_rectset_roundtrip(self, tmp_path):
        path = tmp_path / "empty.json"
        save_rectset(path, RectSet.empty())
        assert len(load_rectset(path)) == 0


# ----------------------------------------------------------------------
# the guarded dataset loader
# ----------------------------------------------------------------------
class TestLoadRects:
    def test_npy_and_csv_roundtrip(self, tmp_path):
        data = uniform_rects(60, seed=6)
        npy, csv_path = tmp_path / "d.npy", tmp_path / "d.csv"
        save_npy(data, npy)
        save_csv(data, csv_path)
        np.testing.assert_array_equal(load_rects(npy).coords,
                                      data.coords)
        np.testing.assert_allclose(load_rects(csv_path).coords,
                                   data.coords)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactMissingError):
            load_rects(tmp_path / "ghost.npy")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "d.parquet"
        path.write_text("")
        with pytest.raises(ArtifactMissingError):
            load_rects(path)

    def test_corrupt_csv(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("x1,y1,x2,y2\n1,2,not-a-number,4\n")
        with pytest.raises(ArtifactCorruptError):
            load_rects(path)

    def test_invalid_rectangles_are_corrupt(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("5,5,1,1\n")  # inverted extent
        with pytest.raises(ArtifactCorruptError):
            load_rects(path)


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp1")
        assert store.load("cell") is None
        store.save("cell", {"value": 3})
        assert store.load("cell") == {"value": 3}
        assert store.keys() == ["cell"]

    def test_corrupt_cell_counts_as_missing(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp1")
        store.save("cell", {"value": 3})
        (cell_file,) = tmp_path.glob("cell-*.json")
        cell_file.write_text(cell_file.read_text()[:25])
        assert store.load("cell") is None
        assert store.keys() == []

    def test_fingerprint_mismatch_raises(self, tmp_path):
        CheckpointStore(tmp_path, "fp1").save("cell", 1)
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path, "fp2")

    def test_corrupt_meta_clears_the_store(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp1")
        store.save("cell", 1)
        (tmp_path / "meta.json").write_text("garbage")
        reopened = CheckpointStore(tmp_path, "fp1")
        assert reopened.load("cell") is None

    def test_keys_survive_reopen(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp1")
        store.save("a/b c", 1)
        store.save("d", 2)
        reopened = CheckpointStore(tmp_path, "fp1")
        assert sorted(reopened.keys()) == ["a/b c", "d"]
        assert reopened.load("a/b c") == 1

    def test_config_fingerprint_stable_and_sensitive(self):
        a = config_fingerprint({"x": 1, "y": [2, 3]})
        b = config_fingerprint({"y": [2, 3], "x": 1})
        c = config_fingerprint({"x": 2, "y": [2, 3]})
        assert a == b
        assert a != c


# ----------------------------------------------------------------------
# checkpointed evaluation sweep
# ----------------------------------------------------------------------
class TestEvaluateSweepResume:
    def test_resume_serves_from_cache(self, tmp_path, monkeypatch):
        data = uniform_rects(300, seed=9)
        queries = range_queries(data, 0.1, 30, seed=1)
        runner = ExperimentRunner(data)
        techniques = ("Grid", "Uniform")
        first = runner.evaluate_sweep(
            techniques, queries, 9, checkpoint_dir=tmp_path
        )

        def boom(*args, **kwargs):
            raise AssertionError("cache miss: technique re-evaluated")

        monkeypatch.setattr(ExperimentRunner, "evaluate_technique",
                            boom)
        second = runner.evaluate_sweep(
            techniques, queries, 9, checkpoint_dir=tmp_path
        )
        assert first == second

    def test_different_sweep_config_is_rejected(self, tmp_path):
        data = uniform_rects(200, seed=9)
        queries = range_queries(data, 0.1, 10, seed=1)
        runner = ExperimentRunner(data)
        runner.evaluate_sweep(("Uniform",), queries, 9,
                              checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointError):
            runner.evaluate_sweep(("Uniform",), queries, 12,
                                  checkpoint_dir=tmp_path)


# ----------------------------------------------------------------------
# CLI error contract: exit 1 + one actionable line, never a traceback
# ----------------------------------------------------------------------
def _one_error_line(capsys):
    err = capsys.readouterr().err
    lines = err.strip().splitlines()
    assert len(lines) == 1, err
    assert lines[0].startswith("repro-spatial: error:")
    assert "Traceback" not in err
    return lines[0]


class TestCliErrorMessages:
    def test_missing_dataset_file(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["show", "--dataset-file",
                     str(tmp_path / "ghost.npy")])
        assert code == 1
        line = _one_error_line(capsys)
        assert "not found" in line and "hint:" in line

    def test_corrupt_dataset_file(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.csv"
        bad.write_text("1,2,three,4\n")
        code = main(["evaluate", "--dataset-file", str(bad),
                     "--queries", "5"])
        assert code == 1
        assert "corrupt dataset file" in _one_error_line(capsys)

    def test_missing_histogram_file(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["evaluate", "--histogram",
                     str(tmp_path / "ghost.json"),
                     "--n", "100", "--queries", "5"])
        assert code == 1
        assert "hint:" in _one_error_line(capsys)

    def test_corrupt_histogram_file(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "hist.json"
        bad.write_text('{"not": "an artifact"}')
        code = main(["evaluate", "--histogram", str(bad),
                     "--n", "100", "--queries", "5"])
        assert code == 1
        assert "corrupt" in _one_error_line(capsys)

    def test_save_histogram_roundtrips_through_cli(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        hist = tmp_path / "hist.json"
        assert main(["partition", "--n", "500", "--buckets", "8",
                     "--regions", "256", "--save-histogram",
                     str(hist)]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--n", "500", "--queries", "20",
                     "--histogram", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "histogram" in out and "8 buckets" in out

"""Shared fixtures: small deterministic datasets and workloads."""

import numpy as np
import pytest

from repro.data import charminar, nj_road_like, uniform_rects
from repro.geometry import Rect, RectSet


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_uniform():
    """2 000 identical rectangles placed uniformly."""
    return uniform_rects(2_000, seed=11)


@pytest.fixture(scope="session")
def small_charminar():
    """A scaled-down Charminar set (4 000 rects)."""
    return charminar(4_000, seed=22)


@pytest.fixture(scope="session")
def small_nj_road():
    """A scaled-down simulated NJ-Road set (8 000 segment MBRs)."""
    return nj_road_like(8_000, seed=33)


@pytest.fixture(scope="session")
def mixed_rects(rng):
    """A messy mixture: varied sizes, includes degenerate rectangles."""
    n = 1_500
    cx = rng.uniform(0, 1_000, n)
    cy = rng.uniform(0, 1_000, n)
    w = rng.uniform(0, 80, n)
    h = rng.uniform(0, 80, n)
    w[:50] = 0.0  # vertical segments
    h[50:100] = 0.0  # horizontal segments
    w[100:150] = 0.0
    h[100:150] = 0.0  # points
    return RectSet.from_centers(cx, cy, w, h)


@pytest.fixture()
def unit_square():
    return Rect(0.0, 0.0, 1.0, 1.0)

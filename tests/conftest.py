"""Shared fixtures: datasets, workloads, and the serving-tier factory.

The serving suites (differential, sharded, live, chaos, front door)
all serve the same architecture through different entry points; the
``served_engine`` factory here builds any of the four kinds — direct,
sharded, pooled, server — behind one facade so a test parameterizes
over engine kind instead of hand-rolling each stack's setup and
teardown.
"""

import numpy as np
import pytest

from repro.data import charminar, nj_road_like, uniform_rects
from repro.geometry import Rect, RectSet

#: Every way the serving tier can answer a query batch.
SERVING_ENGINE_KINDS = ("direct", "sharded", "pooled", "server")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_uniform():
    """2 000 identical rectangles placed uniformly."""
    return uniform_rects(2_000, seed=11)


@pytest.fixture(scope="session")
def small_charminar():
    """A scaled-down Charminar set (4 000 rects)."""
    return charminar(4_000, seed=22)


@pytest.fixture(scope="session")
def small_nj_road():
    """A scaled-down simulated NJ-Road set (8 000 segment MBRs)."""
    return nj_road_like(8_000, seed=33)


@pytest.fixture(scope="session")
def mixed_rects(rng):
    """A messy mixture: varied sizes, includes degenerate rectangles."""
    n = 1_500
    cx = rng.uniform(0, 1_000, n)
    cy = rng.uniform(0, 1_000, n)
    w = rng.uniform(0, 80, n)
    h = rng.uniform(0, 80, n)
    w[:50] = 0.0  # vertical segments
    h[50:100] = 0.0  # horizontal segments
    w[100:150] = 0.0
    h[100:150] = 0.0  # points
    return RectSet.from_centers(cx, cy, w, h)


@pytest.fixture()
def unit_square():
    return Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture(scope="session")
def serving_dataset():
    """The dataset every serving-tier suite serves (1 200 rects)."""
    return charminar(1_200, seed=17)


@pytest.fixture(scope="session")
def serving_queries(serving_dataset):
    from repro.workload import range_queries

    return range_queries(serving_dataset, 0.08, 60, seed=71)


class ServedEngine:
    """One serving stack behind a uniform facade.

    ``estimate_batch`` answers a :class:`RectSet`; ``insert`` /
    ``delete`` route a mutation through the stack's own entry point;
    ``tune`` runs one feedback pass through the stack's own entry
    point (the router's in pooled mode, so worker replicas adopt the
    tuned layout); ``reference`` is the single-engine union answer
    over the *current* shard state (so it tracks mutations and
    tuning).  The building fixture owns ``close``.
    """

    def __init__(self, kind, sharded, estimate_batch, insert,
                 delete, close, tune):
        self.kind = kind
        self.sharded = sharded
        self.estimate_batch = estimate_batch
        self.insert = insert
        self.delete = delete
        self.close = close
        self.tune = tune

    def reference(self, queries):
        return self.sharded.union_estimator().estimate_batch(queries)


def _build_served_engine(kind, data, *, n_shards=3, n_buckets=16,
                         n_regions=256, max_batch=16, wait_steps=2):
    from repro.serving import (
        BatchServingEngine,
        FrontDoorThread,
        ShardedHistogram,
        ShardRouter,
    )

    sharded = ShardedHistogram.build(
        data, n_shards=n_shards, n_buckets=n_buckets,
        n_regions=n_regions,
    )
    if kind == "direct":
        # the union reference itself behind a batch engine, rebuilt
        # per serve so mutations are always visible; cache off keeps
        # it stateless
        def serve(queries):
            return BatchServingEngine(
                sharded.union_estimator(), cache_size=0,
                auto_index=False,
            ).estimate_batch(queries)

        return ServedEngine(
            kind, sharded, serve,
            insert=sharded.insert, delete=sharded.delete,
            close=lambda: None, tune=sharded.tune,
        )
    router = ShardRouter(
        sharded, workers=2 if kind == "pooled" else 0
    )
    if kind in ("sharded", "pooled"):
        return ServedEngine(
            kind, sharded, router.estimate_batch,
            insert=router.insert, delete=router.delete,
            close=router.close, tune=router.tune,
        )
    if kind != "server":
        raise ValueError(f"unknown served-engine kind {kind!r}")
    front = FrontDoorThread(
        router, max_batch=max_batch, max_wait_steps=wait_steps
    ).start()

    def serve_wire(queries):
        responses = front.estimate_many(queries.coords)
        bad = [r for r in responses if not r.get("ok", False)]
        assert not bad, f"front door errored: {bad[0]}"
        return np.array(
            [float(r["value"]) for r in responses],
            dtype=np.float64,
        )

    def close():
        front.stop()
        router.close()

    return ServedEngine(
        kind, sharded, serve_wire,
        insert=lambda rect: front.mutate(
            "insert", (rect.x1, rect.y1, rect.x2, rect.y2)
        ),
        delete=lambda rect: front.mutate(
            "delete", (rect.x1, rect.y1, rect.x2, rect.y2)
        ),
        close=close, tune=router.tune,
    )


@pytest.fixture(scope="session")
def serving_engine_factory(serving_dataset):
    """Factory: build a :class:`ServedEngine` of the requested kind.

    The caller closes what it builds; the parameterized
    ``served_engine`` fixture below does that automatically.
    """

    def factory(kind, **overrides):
        return _build_served_engine(kind, serving_dataset, **overrides)

    return factory


@pytest.fixture(params=SERVING_ENGINE_KINDS)
def served_engine(request, serving_engine_factory):
    engine = serving_engine_factory(request.param)
    yield engine
    engine.close()


@pytest.fixture()
def capture_counters():
    """Run a callable under a fresh OBS scope.

    Returns ``(result, counters)`` — the shared pattern the serving
    suites previously each hand-rolled with ``OBS.scope`` /
    ``OBS.reset`` / ``OBS.snapshot``.
    """
    from repro.obs import OBS

    def run(fn):
        with OBS.scope():
            OBS.reset()
            try:
                result = fn()
                counters = dict(OBS.snapshot()["counters"])
            finally:
                OBS.reset()
        return result, counters

    return run

"""Unit and property tests for the dynamic R*-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet
from repro.rtree import Entry, Node, RStarTree


def random_rectset(n, seed, extent=1_000.0, max_side=40.0):
    gen = np.random.default_rng(seed)
    return RectSet.from_centers(
        gen.uniform(0, extent, n),
        gen.uniform(0, extent, n),
        gen.uniform(0, max_side, n),
        gen.uniform(0, max_side, n),
    )


class TestEntry:
    def test_requires_exactly_one_payload(self):
        r = Rect(0, 0, 1, 1)
        with pytest.raises(ValueError):
            Entry(r)
        with pytest.raises(ValueError):
            Entry(r, record_id=1, child=Node(0))

    def test_leaf_entry(self):
        e = Entry(Rect(0, 0, 1, 1), record_id=7)
        assert e.is_leaf_entry


class TestNode:
    def test_empty_mbr_raises(self):
        with pytest.raises(ValueError):
            Node(0).mbr()

    def test_mbr_covers_entries(self):
        node = Node(0)
        node.add(Entry(Rect(0, 0, 1, 1), record_id=0))
        node.add(Entry(Rect(5, 5, 6, 7), record_id=1))
        assert node.mbr().as_tuple() == (0, 0, 6, 7)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RStarTree(3)
        with pytest.raises(ValueError):
            RStarTree(8, min_fill=0.9)
        with pytest.raises(ValueError):
            RStarTree(8, reinsert_fraction=1.5)

    def test_empty_tree(self):
        tree = RStarTree(8)
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 1, 1)) == []
        assert tree.count(Rect(0, 0, 1, 1)) == 0

    def test_single_insert(self):
        tree = RStarTree(8)
        tree.insert(Rect(0, 0, 1, 1), 42)
        assert len(tree) == 1
        assert tree.search(Rect(0.5, 0.5, 2, 2)) == [42]

    def test_invariants_small(self):
        rs = random_rectset(200, seed=1)
        tree = RStarTree.from_rectset(rs, max_entries=6)
        tree.check_invariants()
        assert len(tree) == 200

    def test_invariants_medium(self):
        rs = random_rectset(2_000, seed=2)
        tree = RStarTree.from_rectset(rs, max_entries=16)
        tree.check_invariants()

    def test_height_grows(self):
        rs = random_rectset(500, seed=3)
        tree = RStarTree.from_rectset(rs, max_entries=4)
        assert tree.height >= 3

    def test_duplicate_rects(self):
        tree = RStarTree(4)
        for i in range(50):
            tree.insert(Rect(1, 1, 2, 2), i)
        tree.check_invariants()
        assert tree.count(Rect(0, 0, 3, 3)) == 50

    def test_point_data(self):
        gen = np.random.default_rng(4)
        tree = RStarTree(8)
        for i in range(300):
            x, y = gen.uniform(0, 100, 2)
            tree.insert(Rect.point(x, y), i)
        tree.check_invariants()
        assert tree.count(Rect(0, 0, 100, 100)) == 300


class TestQueries:
    @pytest.fixture(scope="class")
    def tree_and_data(self):
        rs = random_rectset(1_500, seed=5)
        return RStarTree.from_rectset(rs, max_entries=10), rs

    def test_search_matches_bruteforce(self, tree_and_data):
        tree, rs = tree_and_data
        gen = np.random.default_rng(6)
        for _ in range(30):
            x, y = gen.uniform(0, 900, 2)
            w, h = gen.uniform(10, 300, 2)
            q = Rect(x, y, x + w, y + h)
            expected = set(np.flatnonzero(rs.intersects_mask(q)))
            assert set(tree.search(q)) == expected

    def test_count_matches_search(self, tree_and_data):
        tree, _ = tree_and_data
        gen = np.random.default_rng(7)
        for _ in range(30):
            x, y = gen.uniform(0, 900, 2)
            w, h = gen.uniform(10, 500, 2)
            q = Rect(x, y, x + w, y + h)
            assert tree.count(q) == len(tree.search(q))

    def test_full_space_query(self, tree_and_data):
        tree, rs = tree_and_data
        assert tree.count(rs.mbr()) == len(rs)

    def test_empty_region_query(self, tree_and_data):
        tree, _ = tree_and_data
        assert tree.count(Rect(-100, -100, -50, -50)) == 0

    def test_point_query(self, tree_and_data):
        tree, rs = tree_and_data
        q = rs[0]
        cx, cy = q.center
        point = Rect.point(cx, cy)
        assert 0 in tree.search(point)


class TestTraversal:
    def test_levels_partition_nodes(self):
        rs = random_rectset(800, seed=8)
        tree = RStarTree.from_rectset(rs, max_entries=8)
        total = sum(
            len(tree.nodes_at_level(lv)) for lv in range(tree.height)
        )
        assert total == tree.node_count()

    def test_leaf_entries_cover_all_records(self):
        rs = random_rectset(400, seed=9)
        tree = RStarTree.from_rectset(rs, max_entries=8)
        records = []
        for leaf in tree.nodes_at_level(0):
            records.extend(e.record_id for e in leaf.entries)
        assert sorted(records) == list(range(400))


class TestProperties:
    @given(st.integers(0, 10_000), st.integers(10, 200),
           st.sampled_from([4, 5, 8, 16]))
    @settings(max_examples=15, deadline=None)
    def test_random_trees_valid_and_correct(self, seed, n, fanout):
        rs = random_rectset(n, seed=seed)
        tree = RStarTree.from_rectset(rs, max_entries=fanout)
        tree.check_invariants()
        gen = np.random.default_rng(seed + 1)
        x, y = gen.uniform(0, 800, 2)
        q = Rect(x, y, x + gen.uniform(1, 400), y + gen.uniform(1, 400))
        assert tree.count(q) == int(rs.intersects_mask(q).sum())

"""Tests for ASCII visualisation and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import Bucket, MinSkewPartitioner
from repro.geometry import Rect, RectSet
from repro.grid import DensityGrid
from repro.viz import render_dataset, render_density, render_partition


class TestRenderDensity:
    def test_dimensions(self):
        grid = DensityGrid(np.ones((5, 3)), Rect(0, 0, 10, 10))
        text = render_density(grid)
        lines = text.splitlines()
        assert len(lines) == 3  # ny rows
        assert all(len(line) == 5 for line in lines)  # nx columns

    def test_empty_grid_blank(self):
        grid = DensityGrid(np.zeros((4, 4)), Rect(0, 0, 1, 1))
        assert set(render_density(grid)) <= {" ", "\n"}

    def test_peak_uses_densest_char(self):
        d = np.zeros((4, 4))
        d[2, 2] = 100.0
        grid = DensityGrid(d, Rect(0, 0, 1, 1))
        assert "@" in render_density(grid)

    def test_orientation_y_up(self):
        """High-y cells appear on the first printed line."""
        d = np.zeros((2, 2))
        d[0, 1] = 9.0  # ix=0, iy=1 (top-left in data space)
        grid = DensityGrid(d, Rect(0, 0, 1, 1))
        lines = render_density(grid).splitlines()
        assert lines[0][0] != " "
        assert lines[1][0] == " "

    def test_empty_ramp_rejected(self):
        grid = DensityGrid(np.ones((2, 2)), Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            render_density(grid, ramp="")

    def test_render_dataset(self, small_charminar):
        text = render_dataset(small_charminar, width=40, height=20)
        lines = text.splitlines()
        assert len(lines) == 20
        assert all(len(line) == 40 for line in lines)


class TestRenderPartition:
    def test_no_buckets(self):
        with pytest.raises(ValueError):
            render_partition([])

    def test_borders_drawn(self):
        buckets = [
            Bucket(Rect(0, 0, 5, 10), 1),
            Bucket(Rect(5, 0, 10, 10), 1),
        ]
        text = render_partition(buckets, Rect(0, 0, 10, 10),
                                width=21, height=11)
        assert "+" in text and "-" in text and "|" in text
        # the shared split line at x=5 appears mid-canvas
        lines = text.splitlines()
        assert lines[5][10] == "|"

    def test_real_partitioning_renders(self, small_charminar):
        buckets = MinSkewPartitioner(
            12, n_regions=100
        ).partition(small_charminar)
        text = render_partition(buckets, small_charminar.mbr())
        assert len(text.splitlines()) == 32


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "charminar" in out and "nj_road" in out

    def test_show(self, capsys):
        assert main(["show", "--dataset", "uniform", "--n", "500"]) == 0
        out = capsys.readouterr().out
        assert "500 rectangles" in out

    def test_partition(self, capsys):
        assert main([
            "partition", "--dataset", "uniform", "--n", "800",
            "--technique", "Min-Skew", "--buckets", "8",
            "--regions", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "Min-Skew" in out
        assert "spatial skew" in out

    def test_partition_non_bucket_technique(self, capsys):
        assert main([
            "partition", "--dataset", "uniform", "--n", "500",
            "--technique", "Fractal", "--buckets", "8",
        ]) == 0
        assert "no bucket layout" in capsys.readouterr().out

    def test_evaluate_single_technique(self, capsys):
        assert main([
            "evaluate", "--dataset", "uniform", "--n", "1000",
            "--technique", "Uniform", "--buckets", "10",
            "--queries", "50", "--regions", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "ARE=" in out

    def test_fig10_runs_small(self, capsys):
        assert main([
            "fig10", "--dataset", "uniform", "--n", "1000",
            "--queries", "50", "--buckets", "10",
        ]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_tune_runs_small(self, capsys):
        assert main([
            "tune", "--dataset", "uniform", "--n", "1000",
            "--buckets", "10", "--queries", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "chosen" in out
        assert "refinements" in out

    def test_evaluate_all_techniques(self, capsys):
        assert main([
            "evaluate", "--dataset", "uniform", "--n", "800",
            "--buckets", "8", "--queries", "30", "--regions", "64",
        ]) == 0
        out = capsys.readouterr().out
        for technique in ("Min-Skew", "Grid", "Fractal"):
            assert technique in out

"""Chaos tests for the vectorised serving path.

The batch engine must inherit the resilience chain's degradation
semantics unchanged: an injected fault in the Min-Skew path makes the
*whole batch* fall through to the next healthy link, the resilience
counters account for every query in the batch, and the engine's cache
stays consistent with whatever the degraded chain answered.
"""

import numpy as np
import pytest

from repro.data import uniform_rects
from repro.errors import FallbackExhaustedError
from repro.estimators import BucketEstimator
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_fallback_chain,
    installed,
)
from repro.serving import BatchServingEngine
from repro.workload import range_queries

N_QUERIES = 60


@pytest.fixture()
def data():
    return uniform_rects(300, seed=5)


@pytest.fixture()
def queries(data):
    return range_queries(data, 0.1, N_QUERIES, seed=6)


def _chain(data, **kwargs):
    return build_fallback_chain(data, 10, n_regions=256, **kwargs)


def _run(chain, queries, plan, capture):
    """Serve a batch through the engine under an installed fault plan;
    ``capture`` is the ``capture_counters`` fixture; returns
    (values, counters, engine)."""
    engine = BatchServingEngine(chain, auto_index=False)

    def serve():
        with installed(FaultInjector(plan, clock=chain.clock)):
            return engine.estimate_batch(queries)

    values, counters = capture(serve)
    return values, counters, engine


class TestDegradedBatchServing:
    def test_corrupt_minskew_build_served_by_sample(
        self, data, queries, capture_counters
    ):
        chain = _chain(data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        values, counters, _ = _run(chain, queries, plan, capture_counters)
        assert values.shape == (N_QUERIES,)
        assert np.isfinite(values).all() and (values >= 0.0).all()
        assert counters.get("resilience.link_failures.Min-Skew") == 1
        assert counters.get("resilience.served.Sample") == N_QUERIES
        assert counters.get("resilience.degraded") == N_QUERIES
        # the serving layer accounted for the batch too
        assert counters.get("serving.requests") == 1
        assert counters.get("serving.queries") == N_QUERIES

    def test_degraded_answers_match_fallback_link(
        self, data, queries, capture_counters
    ):
        # what the degraded chain serves is exactly the Sample link's
        # own batch answer — degradation, not distortion
        chain = _chain(data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        values, _, _ = _run(chain, queries, plan, capture_counters)
        sample_link = next(
            link for link in chain.links if link.name == "Sample"
        )
        reference = sample_link.built_estimator.estimate_batch(queries)
        np.testing.assert_array_equal(values, reference)

    def test_runtime_fault_in_built_minskew(
        self, data, queries, capture_counters
    ):
        chain = _chain(data)
        # build succeeds; the *serve* site fails
        plan = FaultPlan(0, (FaultSpec("estimator.Min-Skew",
                                       kind="fail"),))
        values, counters, _ = _run(chain, queries, plan, capture_counters)
        assert np.isfinite(values).all()
        assert counters.get("resilience.link_failures.Min-Skew") == 1
        assert counters.get("resilience.served.Sample") == N_QUERIES

    def test_transient_fault_retried_without_degrading(
        self, data, queries, capture_counters
    ):
        chain = _chain(data)
        plan = FaultPlan(
            0,
            (FaultSpec("estimator.Min-Skew", kind="io",
                       recover_after=1),),
        )
        values, counters, _ = _run(chain, queries, plan, capture_counters)
        assert counters.get("resilience.retries") == 1
        assert counters.get("resilience.served.Min-Skew") == N_QUERIES
        assert "resilience.degraded" not in counters
        # after the retry the values are the healthy chain's values
        clean = _chain(data)
        np.testing.assert_array_equal(
            values, clean.estimate_batch(queries)
        )

    def test_all_links_failing_fills_last_resort(
        self, data, queries, capture_counters
    ):
        chain = _chain(data)
        plan = FaultPlan(0, (FaultSpec("estimator.build.*",
                                       kind="corrupt"),))
        values, counters, _ = _run(chain, queries, plan, capture_counters)
        np.testing.assert_array_equal(
            values, np.zeros(N_QUERIES, dtype=np.float64)
        )
        assert counters.get("resilience.last_resort") == N_QUERIES
        for name in ("Min-Skew", "Sample", "Uniform"):
            assert counters.get(
                f"resilience.link_failures.{name}"
            ) == 1

    def test_exhausted_chain_propagates_through_engine(
        self, data, queries
    ):
        chain = _chain(data)
        chain.last_resort = None
        plan = FaultPlan(0, (FaultSpec("estimator.build.*",
                                       kind="corrupt"),))
        engine = BatchServingEngine(chain, auto_index=False)
        with installed(FaultInjector(plan, clock=chain.clock)):
            with pytest.raises(FallbackExhaustedError):
                engine.estimate_batch(queries)


class TestCacheUnderDegradation:
    def test_degraded_values_are_never_cached(
        self, data, queries, capture_counters
    ):
        """A batch served by a fallback link must not populate the
        cache — otherwise popular queries keep getting Sample-quality
        answers long after the chain recovers."""
        chain = _chain(data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        first, counters, engine = _run(chain, queries, plan, capture_counters)
        assert counters.get("resilience.degraded") == N_QUERIES
        assert len(engine.cache) == 0

    def test_post_recovery_answers_match_healthy_estimator(
        self, data, queries, capture_counters
    ):
        """Once the injected fault clears, the very next serve answers
        with the healthy (Min-Skew) link's values — bit-identical to a
        chain that never failed — and only those get cached."""
        chain = _chain(data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        first, _, engine = _run(chain, queries, plan, capture_counters)
        # injector gone; one build failure leaves the breaker closed
        # (threshold 3), so the chain rebuilds Min-Skew and recovers
        second = engine.estimate_batch(queries)
        healthy = _chain(data)
        np.testing.assert_array_equal(
            second, healthy.estimate_batch(queries)
        )
        assert not np.array_equal(second, first)
        # the recovery was a serving-link transition: the engine
        # flushed the cache before repopulating it with healthy values
        assert engine.cache.flushes == 1
        hits_before = engine.cache.hits
        third = engine.estimate_batch(queries)
        np.testing.assert_array_equal(third, second)
        assert engine.cache.hits == hits_before + N_QUERIES


class TestShardedChaos:
    """Faults in one shard's estimator stay inside that shard.

    Every shard of a ``guarded=True`` sharded tier runs its own
    fallback chain whose link names carry the shard id
    (``Min-Skew@s0`` → ``Uniform@s0``), so fault sites and
    ``resilience.*`` counters are naturally per-shard.  A fault
    injected into shard 0's estimator degrades shard 0's *partial*
    down its chain; every other shard's contribution is bit-identical
    to a fault-free run.
    """

    def _sharded(self, data):
        from repro.serving import ShardedHistogram

        return ShardedHistogram.build(
            data, n_shards=3, n_buckets=12, n_regions=256,
            guarded=True,
        )

    def _faulted_serve(self, data, queries, capture):
        """Serve through a router while shard 0's primary link fails
        to build; ``capture`` is the ``capture_counters`` fixture;
        returns (values, counters, router)."""
        from repro.serving import ShardRouter

        sharded = self._sharded(data)
        router = ShardRouter(sharded)
        name = sharded.shards[0].estimator.name
        plan = FaultPlan(
            0,
            (FaultSpec(f"estimator.build.{name}@s0",
                       kind="corrupt"),),
        )
        clock = sharded.shards[0].chain.clock

        def serve():
            with installed(FaultInjector(plan, clock=clock)):
                return router.estimate_batch(queries)

        values, counters = capture(serve)
        return values, counters, router

    def _subbatch(self, sharded, queries, sid):
        """(positions, clipped coords) shard ``sid`` receives — the
        same intersection/clip rule the router applies."""
        box = sharded.shards[sid].routing_box()
        coords = queries.coords
        mask = (
            (coords[:, 0] <= box.x2)
            & (coords[:, 2] >= box.x1)
            & (coords[:, 1] <= box.y2)
            & (coords[:, 3] >= box.y1)
        )
        idx = np.flatnonzero(mask)
        sub = coords[idx]
        clipped = np.column_stack([
            np.maximum(sub[:, 0], box.x1),
            np.maximum(sub[:, 1], box.y1),
            np.minimum(sub[:, 2], box.x2),
            np.minimum(sub[:, 3], box.y2),
        ])
        return idx, clipped

    def test_fault_degrades_only_the_faulted_shards_partial(
        self, data, queries, capture_counters
    ):
        from repro.geometry import RectSet
        from repro.serving import ShardRouter

        values, counters, router = self._faulted_serve(
            data, queries, capture_counters
        )
        sharded = router.sharded
        name = sharded.shards[0].estimator.name
        idx0, clipped0 = self._subbatch(sharded, queries, 0)
        n0 = len(idx0)
        assert n0 > 0  # the fault was actually exercised
        assert np.isfinite(values).all() and (values >= 0.0).all()
        # the chain degraded exactly once, in shard 0's links only
        assert counters.get(
            f"resilience.link_failures.{name}@s0"
        ) == 1
        assert counters.get("resilience.served.Uniform@s0") == n0
        assert counters.get("resilience.degraded") == n0
        for sid in (1, 2):
            assert (
                f"resilience.link_failures.{name}@s{sid}"
                not in counters
            )
            idx, _ = self._subbatch(sharded, queries, sid)
            if len(idx):
                assert counters.get(
                    f"resilience.served.{name}@s{sid}"
                ) == len(idx)
        # shard 0's partial is exactly its Uniform link's answer
        uniform = next(
            link for link in sharded.shards[0].chain.links
            if link.name == "Uniform@s0"
        ).built_estimator
        healthy = ShardRouter(self._sharded(data))
        expected = healthy.estimate_batch(queries).copy()
        kernel = np.zeros(len(queries), dtype=np.float64)
        kernel[idx0] = sharded.shards[0].estimator.estimate_batch(
            RectSet(clipped0, copy=False, validate=False)
        )
        uniform_part = np.zeros(len(queries), dtype=np.float64)
        uniform_part[idx0] = uniform.estimate_batch(
            RectSet(clipped0, copy=False, validate=False)
        )
        np.testing.assert_allclose(
            values, expected - kernel + uniform_part, rtol=1e-12
        )
        # queries that never touch shard 0 are *bit-identical* to
        # the fault-free run: healthy shards did not notice
        untouched = np.setdiff1d(
            np.arange(len(queries)), idx0
        )
        np.testing.assert_array_equal(
            values[untouched], expected[untouched]
        )

    def test_recovery_is_bit_identical_to_never_faulted(
        self, data, queries, capture_counters
    ):
        from repro.serving import ShardRouter

        first, _, router = self._faulted_serve(
            data, queries, capture_counters
        )
        # injector gone, breaker still closed after one failure: the
        # next serve rebuilds shard 0's primary link and recovers
        second = router.estimate_batch(queries)
        healthy = ShardRouter(self._sharded(data))
        np.testing.assert_array_equal(
            second, healthy.estimate_batch(queries)
        )
        assert not np.array_equal(second, first)

    def test_degraded_partial_is_not_cached_by_the_shard(
        self, data, queries, capture_counters
    ):
        _, _, router = self._faulted_serve(
            data, queries, capture_counters
        )
        engine = router.sharded.shards[0].engine
        assert len(engine.cache) == 0
        for shard in router.sharded.shards[1:]:
            _, clipped = self._subbatch(
                router.sharded, queries, shard.shard_id
            )
            assert len(shard.engine.cache) == len(
                {tuple(row) for row in clipped}
            )


class TestLazyLinkIndexing:
    def test_lazily_built_link_is_indexed_on_discovery(
        self, data, queries
    ):
        """Engine construction finds no built links (the chain is
        fully lazy); the Min-Skew link built during the first serve
        must still receive a BucketIndex on the next revalidation
        instead of scanning every bucket forever."""
        chain = _chain(data)
        engine = BatchServingEngine(chain)
        assert engine.indexed == []
        engine.estimate_batch(queries)  # builds the Min-Skew link
        engine.estimate(queries[0])  # revalidation discovers it
        minskew = next(
            link for link in chain.links if link.name == "Min-Skew"
        ).built_estimator
        assert isinstance(minskew, BucketEstimator)
        assert minskew.index is not None
        assert minskew in engine.indexed

    def test_link_built_after_degradation_is_indexed(
        self, data, queries
    ):
        """The satellite scenario: the chain degrades first (Min-Skew
        unbuilt, Sample serving), then recovers — the late-built
        Min-Skew link still gets its index, and the indexed scalar
        path answers exactly like a healthy chain's."""
        chain = _chain(data)
        plan = FaultPlan(
            0, (FaultSpec("estimator.build.Min-Skew", kind="corrupt"),)
        )
        engine = BatchServingEngine(chain)
        with installed(FaultInjector(plan, clock=chain.clock)):
            engine.estimate_batch(queries)
        assert engine.indexed == []  # only Sample built; no buckets
        engine.estimate_batch(queries)  # recovery: Min-Skew builds
        engine.estimate(queries[0])  # discovery + index attach
        minskew = next(
            link for link in chain.links if link.name == "Min-Skew"
        ).built_estimator
        assert minskew is not None and minskew.index is not None
        healthy = _chain(data)
        for q in list(queries)[:10]:
            assert engine.estimate(q) == healthy.estimate(q)


class TestFrontDoorWorkerKillChaos:
    """SIGKILLed workers with front-door clients in flight.

    The kill decisions fire on a separate thread while concurrent
    pipelined TCP clients are mid-request, so workers genuinely die
    under load.  The SLO contract: every client gets a correct answer
    or a typed degraded/overload response, and none hangs past its
    deadline (``report.timeouts`` counts deadline breaches and any
    breach fails the run).
    """

    def test_kills_in_flight_keep_the_slo(self):
        from repro.resilience.chaos import (
            WorkerKillConfig,
            run_worker_kill_chaos,
        )

        report = run_worker_kill_chaos(WorkerKillConfig(
            n=600, n_batches=5, batch_size=15,
            n_buckets=16, n_regions=144,
            through_server=True, server_concurrency=4,
        ))
        assert report.through_server
        assert report.kills > 0, (
            "the seeded plan never killed a worker; the run proves "
            "nothing — adjust kill_rate/plan_seed"
        )
        assert report.timeouts == 0  # no client hung past its deadline
        assert report.survival == 1.0
        assert report.recovered_matches  # over-the-wire, bit-identical
        assert report.digests_match
        assert report.passed

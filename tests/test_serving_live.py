"""Stale-serving differential suite: epoch invalidation end-to-end.

The serving engine's staleness contract: no matter what maintenance
sequence (inserts, deletes, refreshes) runs against a live histogram —
interleaved with serves that populate the cache and index — the
engine's answers are bit-identical to a freshly constructed engine
over the same buckets.  Every derived-state layer is covered: the
``BucketArrays`` kernel snapshot, the ``BucketIndex``, and the
``QueryCache``.  These are exactly the tests that fail when any of
those snapshots is frozen at construction time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MaintainedHistogram, MinSkewPartitioner
from repro.data import charminar
from repro.estimators import BucketEstimator, MaintainedEstimator
from repro.serving import BatchServingEngine
from repro.workload import live_workload, range_queries

DATA = charminar(800, seed=31)


def _hist(drift_threshold=0.9):
    return MaintainedHistogram(
        MinSkewPartitioner(12, n_regions=144), DATA,
        drift_threshold=drift_threshold,
    )


def _fresh_reference(hist, queries):
    """What a from-scratch engine over the current buckets answers."""
    engine = BatchServingEngine(
        BucketEstimator(list(hist.buckets), name="fresh")
    )
    return engine.estimate_batch(queries)


class TestDifferentialProperty:
    @given(seed=st.integers(0, 10_000), n_ops=st.integers(5, 60))
    @settings(max_examples=15, deadline=None)
    def test_engine_equals_fresh_after_random_maintenance(
        self, seed, n_ops
    ):
        """Random insert/delete/refresh churn, with serves interleaved
        so the cache and index go stale mid-stream, ends bit-identical
        to a from-scratch engine."""
        hist = _hist()
        engine = BatchServingEngine(MaintainedEstimator(hist))
        queries = range_queries(DATA, 0.1, 25, seed=seed + 1)
        rng = np.random.default_rng(seed)
        for op in live_workload(DATA, 0.1, n_ops, seed=seed):
            if op.kind == "query":
                engine.estimate(op.rect)
            elif op.kind == "insert":
                hist.insert(op.rect)
            else:
                hist.delete(op.rect)
            if rng.random() < 0.05:
                hist.refresh()
            if rng.random() < 0.2:
                # populate the cache mid-churn: these answers must not
                # survive the next mutation
                engine.estimate_batch(queries)
        np.testing.assert_array_equal(
            engine.estimate_batch(queries),
            _fresh_reference(hist, queries),
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_scalar_path_equals_fresh_scalar_path(self, seed):
        """The scalar (cache + index-pruned) path agrees with a fresh
        engine's scalar path after maintenance."""
        hist = _hist()
        engine = BatchServingEngine(MaintainedEstimator(hist))
        queries = range_queries(DATA, 0.08, 15, seed=seed + 2)
        for q in queries:
            engine.estimate(q)
        for op in live_workload(DATA, 0.1, 20, seed=seed):
            if op.kind == "insert":
                hist.insert(op.rect)
            elif op.kind == "delete":
                hist.delete(op.rect)
        fresh = BatchServingEngine(
            BucketEstimator(list(hist.buckets), name="fresh")
        )
        assert [engine.estimate(q) for q in queries] == \
            [fresh.estimate(q) for q in queries]


class TestLayerInvalidation:
    def test_cached_answers_do_not_survive_an_insert(self):
        hist = _hist()
        engine = BatchServingEngine(MaintainedEstimator(hist))
        queries = range_queries(DATA, 0.15, 30, seed=3)
        before = engine.estimate_batch(queries)
        assert engine.cache is not None and len(engine.cache) > 0
        # an insert into a covered bucket changes that bucket's count
        mbr = DATA.mbr()
        cx, cy = mbr.center
        from repro.geometry import Rect

        hist.insert(Rect.from_center(cx, cy, 1.0, 1.0))
        after = engine.estimate_batch(queries)
        assert engine.cache.flushes >= 1
        np.testing.assert_array_equal(
            after, _fresh_reference(hist, queries)
        )
        assert not np.array_equal(after, before)

    def test_kernel_snapshot_resyncs_without_engine(self):
        """A bare MaintainedEstimator (no engine) also never serves a
        stale BucketArrays snapshot."""
        hist = _hist()
        est = MaintainedEstimator(hist)
        queries = range_queries(DATA, 0.15, 20, seed=5)
        est.estimate_batch(queries)  # snapshot built
        for op in live_workload(DATA, 0.1, 30, seed=6):
            if op.kind == "insert":
                hist.insert(op.rect)
            elif op.kind == "delete":
                hist.delete(op.rect)
        reference = BucketEstimator(
            list(hist.buckets), name="fresh"
        ).estimate_batch(queries)
        np.testing.assert_array_equal(
            est.estimate_batch(queries), reference
        )
        assert est.synced_epoch == hist.epoch

    def test_index_is_rebuilt_and_stamped_with_new_epoch(self):
        hist = _hist()
        est = MaintainedEstimator(hist)
        engine = BatchServingEngine(est)
        assert est.index is not None and est.index.epoch == hist.epoch
        hist.refresh()
        # any serve revalidates: the index must be fresh afterwards
        engine.estimate_batch(range_queries(DATA, 0.1, 5, seed=7))
        assert est.index is not None
        assert est.index.epoch == hist.epoch
        assert est in engine.indexed

    def test_sync_alone_drops_the_index(self):
        """Without an engine to rebuild it, a stale index is dropped
        rather than consulted — pruning with old boxes is the bug."""
        hist = _hist()
        est = MaintainedEstimator(hist)
        BatchServingEngine(est)  # attaches an index
        assert est.index is not None
        hist.refresh()
        assert est.sync() is True
        assert est.index is None

    def test_epoch_counters_are_reported(self, capture_counters):
        hist = _hist()
        engine = BatchServingEngine(MaintainedEstimator(hist))
        queries = range_queries(DATA, 0.1, 10, seed=9)

        def serve_refresh_serve():
            engine.estimate_batch(queries)
            hist.refresh()
            engine.estimate_batch(queries)

        _, counters = capture_counters(serve_refresh_serve)
        assert counters.get("serving.epoch.stale") == 1
        assert counters.get("serving.epoch.index_rebuilds") == 1
        assert counters.get("serving.epoch.estimator_rebuilds") == 1
        assert counters.get("serving.cache.flushes") == 1
        assert counters.get("maintenance.refreshes") == 1

    def test_refresh_to_empty_serves_zero(self):
        """Deleting everything and refreshing leaves a bucketless
        summary; the engine serves zeros instead of crashing."""
        import numpy as np

        from repro.geometry import Rect, RectSet

        data = RectSet(np.array([
            [0.0, 0.0, 1.0, 1.0],
            [5.0, 5.0, 6.0, 6.0],
        ]))
        hist = MaintainedHistogram(
            MinSkewPartitioner(2, n_regions=16), data
        )
        est = MaintainedEstimator(hist)
        engine = BatchServingEngine(est)
        assert engine.estimate(Rect(0, 0, 10, 10)) > 0.0
        assert hist.delete(data[0]) and hist.delete(data[1])
        hist.refresh()
        assert hist.buckets == []
        assert engine.estimate(Rect(0, 0, 10, 10)) == 0.0


class TestScalarBatchAgreementLive:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=8, deadline=None)
    def test_batch_equals_scalar_loop_after_maintenance(self, seed):
        hist = _hist()
        est = MaintainedEstimator(hist)
        for op in live_workload(DATA, 0.1, 25, seed=seed):
            if op.kind == "insert":
                hist.insert(op.rect)
            elif op.kind == "delete":
                hist.delete(op.rect)
        queries = range_queries(DATA, 0.1, 20, seed=seed + 3)
        batch = est.estimate_batch(queries)
        scalar = np.array(
            [est.estimate(q) for q in queries], dtype=np.float64
        )
        np.testing.assert_array_equal(batch, scalar)


class TestShardedLiveMaintenance:
    """Live maintenance against the sharded tier: a mutation stream
    invalidates only the owning shard — the others keep their epochs,
    caches, and indexes — while answers stay bit-identical to a fresh
    single-engine rebuild over the current buckets."""

    def _sharded(self, **kwargs):
        from repro.serving import ShardedHistogram

        return ShardedHistogram.build(
            DATA, n_shards=4, n_buckets=24, n_regions=256,
            drift_threshold=0.9, **kwargs,
        )

    def _cluster_sharded(self):
        """Two well-separated clusters → two shards whose routing
        boxes cannot overlap, so per-shard cache behaviour is
        observable in isolation."""
        from repro.geometry import RectSet
        from repro.serving import ShardedHistogram

        rng = np.random.default_rng(41)
        a = rng.uniform(0.0, 1.0, size=(60, 2))
        b = rng.uniform(100.0, 101.0, size=(60, 2))
        pts = np.vstack([a, b])
        coords = np.column_stack(
            [pts[:, 0], pts[:, 1],
             pts[:, 0] + 0.01, pts[:, 1] + 0.01]
        )
        return ShardedHistogram.build(
            RectSet(coords), n_shards=2, n_buckets=8,
            n_regions=64, drift_threshold=1.0,
        )

    @given(seed=st.integers(0, 10_000), n_ops=st.integers(10, 60))
    @settings(max_examples=10, deadline=None)
    def test_interleaved_stream_matches_fresh_rebuild(
        self, seed, n_ops
    ):
        from repro.serving import ShardRouter

        sharded = self._sharded()
        router = ShardRouter(sharded)
        queries = range_queries(DATA, 0.1, 25, seed=seed + 1)
        for op in live_workload(DATA, 0.1, n_ops, seed=seed):
            if op.kind == "query":
                router.estimate(op.rect)
            elif op.kind == "insert":
                router.insert(op.rect)
            else:
                router.delete(op.rect)
            # serve batches mid-stream so shard caches go stale
            if op.kind != "query":
                router.estimate_batch(queries)
        np.testing.assert_array_equal(
            router.estimate_batch(queries),
            sharded.union_estimator().estimate_batch(queries),
        )

    def test_mutation_stream_moves_owner_epochs_only(self):
        from repro.serving import ShardRouter

        sharded = self._sharded()
        router = ShardRouter(sharded)
        for op in live_workload(DATA, 0.1, 50, seed=43):
            if op.kind == "query":
                continue
            before = sharded.epochs()
            if op.kind == "insert":
                sid = router.insert(op.rect)
                moved = True
            else:
                sid, moved = router.delete(op.rect)
            after = sharded.epochs()
            assert sid == sharded.owner_of(op.rect)
            for i, (b, a) in enumerate(zip(before, after)):
                if i == sid and moved:
                    assert a > b
                else:
                    assert a == b

    def test_untouched_shards_keep_caches_warm(
        self, capture_counters
    ):
        from repro.geometry import RectSet
        from repro.serving import ShardRouter

        sharded = self._cluster_sharded()
        boxes = [s.routing_box() for s in sharded.shards]
        assert not boxes[0].intersects(boxes[1])
        router = ShardRouter(sharded)
        # per-shard query sets: each batch row lands on one shard only
        mixed = RectSet(np.vstack([
            range_queries(
                sharded.shards[0].hist.current_data(), 0.3, 15,
                seed=44,
            ).coords,
            range_queries(
                sharded.shards[1].hist.current_data(), 0.3, 15,
                seed=45,
            ).coords,
        ]))
        router.estimate_batch(mixed)  # populate both shard caches
        cold = sharded.shards[0]
        warm = sharded.shards[1]
        warm_hits = warm.engine.cache.hits
        # mutate shard 0 only
        rect = cold.hist.current_data()[0]
        assert sharded.owner_of(rect) == cold.shard_id
        router.insert(rect)
        result, counters = capture_counters(
            lambda: router.estimate_batch(mixed)
        )
        # the touched shard flushed; the untouched shard answered
        # its whole sub-batch from its still-warm cache
        assert cold.engine.cache.flushes == 1
        assert warm.engine.cache.flushes == 0
        assert warm.engine.cache.hits == warm_hits + 15
        assert counters.get("serving.cache.flushes") == 1
        assert counters.get(
            f"serving.shard.epoch_bumps.s{cold.shard_id}"
        ) == 1
        assert (
            f"serving.shard.epoch_bumps.s{warm.shard_id}"
            not in counters
        )
        np.testing.assert_array_equal(
            result,
            sharded.union_estimator().estimate_batch(mixed),
        )

"""Chaos and crash-safety: the availability contract under injected
faults, and bit-identical resume after a SIGKILL mid-benchmark."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience import ChaosConfig, run_chaos

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Small but non-trivial chaos workload: finishes in a few seconds,
#: injects dozens of faults at the issue's 20% floor.
CHAOS_CONFIG = ChaosConfig(
    n=1_200, n_buckets=20, n_regions=900, n_queries=150,
    fault_rate=0.2,
)


class TestChaosSurvival:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(CHAOS_CONFIG)

    def test_full_availability_under_faults(self, report):
        """>=20% fault injection, yet every query answers finitely."""
        assert report.survival == 1.0
        assert report.finite_estimates == report.n_queries
        assert report.total_injected > 0
        # the fault mix actually exercised the primary path
        fired_primary = report.fired.get("estimator.Min-Skew", 0)
        assert report.injected.get("estimator.Min-Skew", 0) \
            >= 0.1 * max(fired_primary, 1)

    def test_degradations_are_observable(self, report):
        """Every lost fight shows up in the resilience counters."""
        assert sum(report.served.values()) + report.last_resort \
            == report.n_queries
        assert report.retries > 0
        assert report.counters.get("resilience.queries") \
            == report.n_queries

    def test_byte_deterministic_for_fixed_seed(self, report):
        again = run_chaos(CHAOS_CONFIG)
        assert again.estimates_sha256 == report.estimates_sha256
        assert again.injected == report.injected
        assert again.fired == report.fired
        assert again.to_dict() == report.to_dict()

    def test_zero_fault_rate_never_degrades(self):
        clean = run_chaos(ChaosConfig(
            n=600, n_buckets=10, n_regions=256, n_queries=40,
            fault_rate=0.0, plan=None,
        ))
        assert clean.survival == 1.0
        assert clean.degraded == 0
        assert clean.served.get("Min-Skew") == clean.n_queries


# ----------------------------------------------------------------------
# kill-and-resume: SIGKILL a checkpointed benchmark, resume, compare
# ----------------------------------------------------------------------
BENCH_ARGS = [
    "bench", "--quick", "--deterministic",
    "--datasets", "charminar:800",
    "--buckets", "10", "--regions", "400", "--queries", "60",
    "--name", "resume",
]


def _bench_cmd(out_dir: Path, checkpoint_dir: Path):
    return [
        sys.executable, "-m", "repro", *BENCH_ARGS,
        "--out", str(out_dir), "--checkpoint-dir", str(checkpoint_dir),
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


class TestKillAndResume:
    def test_sigkilled_bench_resumes_bit_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        out_killed = tmp_path / "killed"
        out_fresh = tmp_path / "fresh"

        # Start a checkpointed run and SIGKILL it as soon as the first
        # cell lands on disk (if it finishes first, that's fine too —
        # the byte-comparison below is the real assertion).
        proc = subprocess.Popen(
            _bench_cmd(out_killed, ckpt), env=_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if list(ckpt.glob("cell-*.json")):
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.05)
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Resume against the surviving checkpoints; must complete.
        resumed = subprocess.run(
            _bench_cmd(out_killed, ckpt), env=_env(), cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=240,
        )
        assert resumed.returncode == 0, resumed.stderr

        # An uninterrupted deterministic run, fresh checkpoint dir.
        fresh = subprocess.run(
            _bench_cmd(out_fresh, tmp_path / "ckpt-fresh"),
            env=_env(), cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=240,
        )
        assert fresh.returncode == 0, fresh.stderr

        resumed_bytes = (out_killed / "BENCH_resume.json").read_bytes()
        fresh_bytes = (out_fresh / "BENCH_resume.json").read_bytes()
        assert resumed_bytes == fresh_bytes

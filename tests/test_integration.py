"""End-to-end integration tests: the paper's qualitative claims.

These are the statements the paper's evaluation argues for; each test
exercises the full pipeline (dataset → technique → workload → oracle →
error metric) and asserts the *shape* of the result, not absolute
numbers.
"""

import numpy as np
import pytest

from repro.core import MinSkewPartitioner, grouping_skew_on_boxes
from repro.data import charminar, nj_road_like
from repro.estimators import BucketEstimator
from repro.eval import ExperimentRunner, build_estimator
from repro.grid import DensityGrid
from repro.partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    RTreePartitioner,
)
from repro.workload import range_queries


@pytest.fixture(scope="module")
def nj():
    return nj_road_like(20_000, seed=2024)


@pytest.fixture(scope="module")
def nj_runner(nj):
    return ExperimentRunner(nj)


def technique_error(runner, data, technique, queries, n_buckets=100,
                    **kwargs):
    kwargs.setdefault("rtree_method", "str")
    kwargs.setdefault("n_regions", 2_500)
    est = build_estimator(technique, data, n_buckets, **kwargs)
    return runner.evaluate(est, queries).average_relative_error


class TestHeadlineClaims:
    """Section 5.5: Min-Skew 'is a winner by a huge margin'."""

    @pytest.mark.parametrize("qsize", [0.05, 0.25])
    def test_minskew_beats_every_baseline(self, nj, nj_runner, qsize):
        queries = range_queries(nj, qsize, 800, seed=90)
        minskew = technique_error(nj_runner, nj, "Min-Skew", queries)
        for baseline in ("Equi-Area", "Equi-Count", "R-Tree", "Sample",
                         "Uniform", "Fractal"):
            err = technique_error(nj_runner, nj, baseline, queries)
            assert minskew < err, (
                f"Min-Skew ({minskew:.3f}) should beat {baseline} "
                f"({err:.3f}) at QSize={qsize}"
            )

    def test_minskew_margin_over_closest_competitor(self, nj, nj_runner):
        """'Improves ... by over 50% in most of the cases': demand a
        healthy margin (>= 30 %) over the best baseline here."""
        queries = range_queries(nj, 0.05, 800, seed=91)
        minskew = technique_error(nj_runner, nj, "Min-Skew", queries)
        best_baseline = min(
            technique_error(nj_runner, nj, t, queries)
            for t in ("Equi-Area", "Equi-Count", "R-Tree", "Sample")
        )
        assert minskew < 0.7 * best_baseline

    def test_error_decreases_with_query_size(self, nj, nj_runner):
        """Figure 8's x-axis trend, for every bucket technique."""
        small = range_queries(nj, 0.02, 800, seed=92)
        large = range_queries(nj, 0.25, 800, seed=93)
        for technique in ("Min-Skew", "Equi-Area", "Equi-Count"):
            err_small = technique_error(nj_runner, nj, technique, small)
            err_large = technique_error(nj_runner, nj, technique, large)
            assert err_large < err_small

    def test_error_decreases_with_buckets(self, nj, nj_runner):
        """Figure 9's x-axis trend for Min-Skew."""
        queries = range_queries(nj, 0.05, 800, seed=94)
        errs = [
            technique_error(nj_runner, nj, "Min-Skew", queries,
                            n_buckets=beta)
            for beta in (25, 100, 400)
        ]
        assert errs[2] < errs[0]

    def test_uniform_is_poor_on_real_data(self, nj, nj_runner):
        """'Real-life spatial data is inherently skewed and thus cannot
        be captured by a trivial single bucket approximation.'"""
        queries = range_queries(nj, 0.05, 800, seed=95)
        uniform = technique_error(nj_runner, nj, "Uniform", queries)
        minskew = technique_error(nj_runner, nj, "Min-Skew", queries)
        assert uniform > 4 * minskew

    def test_sampling_poor_at_small_queries(self, nj, nj_runner):
        """'Sampling performs quite poorly' for small query sizes."""
        queries = range_queries(nj, 0.02, 800, seed=96)
        sample = technique_error(nj_runner, nj, "Sample", queries)
        minskew = technique_error(nj_runner, nj, "Min-Skew", queries)
        assert sample > 2 * minskew


class TestSkewClaim:
    def test_minskew_has_lowest_spatial_skew(self, nj):
        """Min-Skew optimises Definition 4.1 and should achieve lower
        grouping skew than the skew-oblivious partitionings."""
        grid = DensityGrid.from_rects(nj, 50, 50)
        beta = 50

        def skew_of(partitioner):
            buckets = partitioner.partition(nj)
            return grouping_skew_on_boxes(
                grid, [b.bbox for b in buckets]
            )

        minskew = skew_of(MinSkewPartitioner(beta, n_regions=2_500))
        equi_area = skew_of(EquiAreaPartitioner(beta))
        rtree = skew_of(RTreePartitioner(beta, method="str"))
        assert minskew < equi_area
        assert minskew < rtree

    def test_minskew_beats_equi_count_skew(self, nj):
        grid = DensityGrid.from_rects(nj, 50, 50)
        minskew_buckets = MinSkewPartitioner(
            50, n_regions=2_500
        ).partition(nj)
        equi_count_buckets = EquiCountPartitioner(50).partition(nj)
        assert grouping_skew_on_boxes(
            grid, [b.bbox for b in minskew_buckets]
        ) < grouping_skew_on_boxes(
            grid, [b.bbox for b in equi_count_buckets]
        )


class TestCharminarClaims:
    """Section 5.5.3/5.6: the region-count anomaly and its repair."""

    @pytest.fixture(scope="class")
    def ch(self):
        return charminar()

    @pytest.fixture(scope="class")
    def ch_runner(self, ch):
        return ExperimentRunner(ch)

    def test_small_queries_improve_with_regions(self, ch, ch_runner):
        queries = range_queries(ch, 0.05, 600, seed=97)
        coarse = technique_error(ch_runner, ch, "Min-Skew", queries,
                                 n_buckets=50, n_regions=400)
        fine = technique_error(ch_runner, ch, "Min-Skew", queries,
                               n_buckets=50, n_regions=6_400)
        assert fine < coarse

    def test_large_queries_degrade_with_regions(self, ch, ch_runner):
        """Figure 10(b): 'the error for Min-Skew for the large queries
        actually gets worse with more regions!'"""
        queries = range_queries(ch, 0.25, 600, seed=98)
        coarse = technique_error(ch_runner, ch, "Min-Skew", queries,
                                 n_buckets=50, n_regions=400)
        fine = technique_error(ch_runner, ch, "Min-Skew", queries,
                               n_buckets=50, n_regions=30_000)
        assert fine > 2 * coarse

    def test_refinement_recovers_most_of_the_loss(self, ch, ch_runner):
        """Figure 11: refinements 'cause the error to drop by over
        55%' but 'do not cause the error to drop to the absolute
        minimal level'."""
        queries = range_queries(ch, 0.25, 600, seed=99)

        def err(refinements):
            est = BucketEstimator.build(
                MinSkewPartitioner(50, n_regions=30_000,
                                   refinements=refinements), ch
            )
            return ch_runner.evaluate(
                est, queries
            ).average_relative_error

        plain = err(0)
        best = min(err(r) for r in (2, 4, 6))
        optimum = technique_error(ch_runner, ch, "Min-Skew", queries,
                                  n_buckets=50, n_regions=400)
        assert best < 0.8 * plain  # helps considerably
        assert best > optimum  # but does not reach the optimum

"""Cross-module property tests: invariants spanning the whole pipeline.

Each property here holds for *any* dataset, technique, and workload the
library can produce; hypothesis drives the generation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import pack_buckets, unpack_buckets
from repro.counting import ExactCountOracle
from repro.estimators import BucketEstimator
from repro.eval import build_estimator
from repro.geometry import RectSet
from repro.workload import range_queries

BUCKET_TECHNIQUES = ("Min-Skew", "Equi-Area", "Equi-Count", "Grid")


def random_dataset(seed: int) -> RectSet:
    gen = np.random.default_rng(seed)
    n = int(gen.integers(5, 250))
    style = gen.integers(0, 3)
    if style == 0:  # uniform
        cx = gen.uniform(0, 1_000, n)
        cy = gen.uniform(0, 1_000, n)
    elif style == 1:  # clustered
        k = int(gen.integers(1, 5))
        centers = gen.uniform(100, 900, (k, 2))
        pick = gen.integers(0, k, n)
        cx = centers[pick, 0] + gen.normal(0, 40, n)
        cy = centers[pick, 1] + gen.normal(0, 40, n)
    else:  # corner skew
        cx = gen.uniform(0, 1_000, n) ** 2 / 1_000
        cy = gen.uniform(0, 1_000, n) ** 2 / 1_000
    w = gen.uniform(0, 50, n)
    h = gen.uniform(0, 50, n)
    return RectSet.from_centers(
        np.clip(cx, 0, 1_000), np.clip(cy, 0, 1_000), w, h
    )


class TestPipelineInvariants:
    @given(st.integers(0, 10_000),
           st.sampled_from(BUCKET_TECHNIQUES),
           st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_estimates_bounded_and_total_preserved(
        self, seed, technique, beta
    ):
        """Any bucket technique: estimates are in [0, N], the bucket
        counts sum to N, and the full-space estimate is N."""
        data = random_dataset(seed)
        est = build_estimator(technique, data, beta, n_regions=64,
                              rtree_method="str")
        assert est.total_count() == len(data)
        queries = range_queries(data, 0.2, 10, seed=seed + 1)
        out = est.estimate_many(queries)
        assert (out >= 0).all()
        assert (out <= len(data) + 1e-6).all()
        assert est.estimate(data.mbr()) == pytest.approx(len(data))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_oracle_monotone_in_query(self, seed):
        """Exact counts are monotone under query containment."""
        data = random_dataset(seed)
        oracle = ExactCountOracle(data)
        gen = np.random.default_rng(seed + 2)
        cx, cy = gen.uniform(200, 800, 2)
        sizes = np.sort(gen.uniform(10, 800, 4))
        coords = np.array([
            [cx - s / 2, cy - s / 2, cx + s / 2, cy + s / 2]
            for s in sizes
        ])
        counts = oracle.counts(RectSet(coords))
        assert (np.diff(counts) >= 0).all()

    @given(st.integers(0, 10_000),
           st.sampled_from(BUCKET_TECHNIQUES))
    @settings(max_examples=15, deadline=None)
    def test_serialization_preserves_estimates(self, seed, technique):
        """pack/unpack roundtrip changes estimates only by float32
        quantisation noise."""
        data = random_dataset(seed)
        est = build_estimator(technique, data, 10, n_regions=64,
                              rtree_method="str")
        restored = BucketEstimator(
            unpack_buckets(pack_buckets(est.buckets))
        )
        queries = range_queries(data, 0.3, 10, seed=seed + 3)
        np.testing.assert_allclose(
            restored.estimate_many(queries),
            est.estimate_many(queries),
            rtol=1e-3, atol=1e-3,
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_estimator_consistent_across_chunk_sizes(self, seed):
        """estimate_many is pure: chunking must not change results."""
        from repro.core.bucket import estimate_many

        data = random_dataset(seed)
        est = build_estimator("Min-Skew", data, 8, n_regions=64)
        queries = range_queries(data, 0.15, 23, seed=seed + 4)
        a = estimate_many(est.buckets, queries, chunk_size=1)
        b = estimate_many(est.buckets, queries, chunk_size=1_000)
        np.testing.assert_allclose(a, b, rtol=1e-12)

"""Property tests for :class:`repro.serving.BucketIndex`.

The index contract: ``candidates(query)`` is *exactly* the set of
buckets whose inflated box intersects the query, which makes it

* a superset of the buckets whose raw box intersects the query, and
* a superset of the buckets contributing a non-zero term to the
  Section 3.1 estimate (the inflation folds the formula's query
  extension onto the bucket side),

so pruning can only drop exact zeros.  On degenerate inputs — point
rectangles, full-space queries, all-empty buckets — the pruned
estimate must equal the linear scan exactly; in general it may differ
in the last ulp (different summation order over the surviving
buckets), which the general-case test bounds tightly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import Bucket
from repro.estimators import BucketEstimator
from repro.eval import build_estimator
from repro.geometry import Rect, RectSet
from repro.serving import BucketIndex
from repro.workload import range_queries


def random_dataset(seed):
    gen = np.random.default_rng(seed)
    n = int(gen.integers(10, 300))
    cx = gen.uniform(0, 1_000, n)
    cy = gen.uniform(0, 1_000, n)
    w = gen.uniform(0, 60, n)
    h = gen.uniform(0, 60, n)
    if gen.integers(0, 2):
        w[: n // 3] = 0.0
        h[: n // 3] = 0.0  # mix in point rectangles
    return RectSet.from_centers(cx, cy, w, h)


def random_query(seed, bounds):
    gen = np.random.default_rng(seed)
    x = np.sort(gen.uniform(bounds.x1 - 50, bounds.x2 + 50, 2))
    y = np.sort(gen.uniform(bounds.y1 - 50, bounds.y2 + 50, 2))
    return Rect(x[0], y[0], x[1], y[1])


class TestCandidateSuperset:
    @given(
        seed=st.integers(0, 10_000),
        technique=st.sampled_from(("Min-Skew", "Grid", "Equi-Area")),
        qseed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_candidates_cover_intersecting_and_contributing(
        self, seed, technique, qseed
    ):
        data = random_dataset(seed)
        est = build_estimator(technique, data, 12, n_regions=144)
        index = BucketIndex(est.buckets)
        query = random_query(seed * 7 + qseed, data.mbr())
        candidates = set(index.candidates(query).tolist())
        for i, bucket in enumerate(est.buckets):
            if bucket.bbox.intersects(query):
                assert i in candidates, (
                    f"bucket {i} intersects the query but was pruned"
                )
            if bucket.estimate(query) > 0.0:
                assert i in candidates, (
                    f"bucket {i} contributes but was pruned"
                )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_candidates_sorted_unique(self, seed):
        data = random_dataset(seed)
        est = build_estimator("Min-Skew", data, 10, n_regions=100)
        index = BucketIndex(est.buckets)
        cand = index.candidates(random_query(seed, data.mbr()))
        assert cand.dtype == np.int64
        assert (np.diff(cand) > 0).all()  # strictly ascending
        assert cand.size == 0 or (
            cand.min() >= 0 and cand.max() < len(est.buckets)
        )


class TestIndexedEstimatesMatchLinearScan:
    def test_point_rect_data_exact(self):
        # every bucket degenerate: contributions are whole counts, so
        # pruned and unpruned sums are both exact in float arithmetic
        gen = np.random.default_rng(3)
        pts = gen.uniform(0, 100, (200, 2))
        data = RectSet.from_centers(
            pts[:, 0], pts[:, 1], np.zeros(200), np.zeros(200)
        )
        est = build_estimator("Grid", data, 16)
        queries = range_queries(data, 0.1, 60, seed=4)
        plain = np.array([est.estimate(q) for q in queries])
        est.attach_index(BucketIndex(est.buckets))
        indexed = np.array([est.estimate(q) for q in queries])
        est.attach_index(None)
        np.testing.assert_array_equal(indexed, plain)

    def test_full_space_query_exact(self):
        data = random_dataset(17)
        est = build_estimator("Min-Skew", data, 12, n_regions=144)
        index = BucketIndex(est.buckets)
        mbr = data.mbr()
        full = Rect(mbr.x1 - 100, mbr.y1 - 100,
                    mbr.x2 + 100, mbr.y2 + 100)
        # nothing can be pruned: candidate set is every bucket
        assert index.candidates(full).tolist() == list(
            range(len(est.buckets))
        )
        plain = est.estimate(full)
        est.attach_index(index)
        assert est.estimate(full) == plain
        est.attach_index(None)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            BucketIndex([])

    def test_all_empty_buckets(self):
        boxes = [Rect(10.0 * i, 0.0, 10.0 * i + 10.0, 10.0)
                 for i in range(5)]
        buckets = [Bucket(b, 0) for b in boxes]
        est = BucketEstimator(buckets, name="empty")
        est.attach_index(BucketIndex(buckets))
        assert est.estimate(Rect(0.0, 0.0, 50.0, 10.0)) == 0.0
        est.attach_index(None)

    def test_miss_query_returns_zero(self):
        data = random_dataset(23)
        est = build_estimator("Grid", data, 9)
        est.attach_index(BucketIndex(est.buckets))
        far = Rect(1e7, 1e7, 1e7 + 1.0, 1e7 + 1.0)
        assert est.estimate(far) == 0.0
        est.attach_index(None)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_general_case_bit_identical(self, seed):
        """Pruned probing is *bit-identical* to the linear scan.

        Regression: the pruned path used to reduce over the shorter
        candidate vector, whose partial-sum grouping rounds the last
        ulp differently from the full-width row — the scalar/indexed
        path then disagreed with the batch kernel by one ulp, which
        the front-door interleaving differential caught.  The probe
        now scatters candidate terms into a full-width row before
        reducing, so exact equality is the contract.
        """
        data = random_dataset(seed)
        est = build_estimator("Min-Skew", data, 12, n_regions=144)
        queries = range_queries(data, 0.07, 30, seed=seed + 1)
        plain = np.array([est.estimate(q) for q in queries])
        est.attach_index(BucketIndex(est.buckets))
        indexed = np.array([est.estimate(q) for q in queries])
        est.attach_index(None)
        np.testing.assert_array_equal(indexed, plain)


class TestProbeStructures:
    def test_rtree_fallback_for_fat_buckets(self):
        # buckets covering most of the space blow the per-bucket cell
        # budget of a fine grid -> R*-tree probe, same answers
        gen = np.random.default_rng(9)
        buckets = []
        for _ in range(12):
            x1, y1 = gen.uniform(0, 20, 2)
            buckets.append(
                Bucket(Rect(x1, y1, x1 + 70.0, y1 + 70.0),
                       int(gen.integers(1, 50)),
                       avg_width=2.0, avg_height=2.0)
            )
        fine = BucketIndex(buckets, grid_size=256)
        coarse = BucketIndex(buckets, grid_size=2)
        assert fine.mode == "rtree"
        assert coarse.mode == "grid"
        for qseed in range(25):
            q = random_query(qseed, Rect(0.0, 0.0, 100.0, 100.0))
            np.testing.assert_array_equal(
                fine.candidates(q), coarse.candidates(q)
            )

    def test_degenerate_space_single_cell(self):
        # co-located point buckets: zero-extent space must not divide
        # by a zero cell size
        buckets = [Bucket(Rect(5.0, 5.0, 5.0, 5.0), 3)
                   for _ in range(4)]
        index = BucketIndex(buckets)
        assert index.candidates(
            Rect(0.0, 0.0, 10.0, 10.0)
        ).tolist() == [0, 1, 2, 3]
        assert index.candidates(
            Rect(6.0, 6.0, 7.0, 7.0)
        ).size == 0

"""Unit and property tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect, mbr_of

COORD = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x1 = draw(COORD)
    y1 = draw(COORD)
    w = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    h = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    return Rect(x1, y1, x1 + w, y1 + h)


class TestConstruction:
    def test_valid(self):
        r = Rect(0, 0, 2, 3)
        assert r.width == 2
        assert r.height == 3
        assert r.area == 6

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError, match="negative extent"):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError, match="negative extent"):
            Rect(0, 1, 1, 0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Rect(0, 0, math.inf, 1)
        with pytest.raises(ValueError, match="finite"):
            Rect(math.nan, 0, 1, 1)

    def test_from_center(self):
        r = Rect.from_center(5, 5, 4, 2)
        assert r.as_tuple() == (3, 4, 7, 6)

    def test_from_center_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_center(0, 0, -1, 1)

    def test_point(self):
        p = Rect.point(3, 4)
        assert p.is_point
        assert p.area == 0
        assert p.center == (3, 4)

    def test_degenerate_line_is_valid(self):
        r = Rect(0, 0, 5, 0)
        assert r.area == 0
        assert not r.is_point


class TestPredicates:
    def test_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_touching_edge_counts(self):
        # closed rectangles: shared edge = non-empty intersection
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_touching_corner_counts(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_containment(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 3, 3)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_contains_point_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0, 0)
        assert r.contains_point(1, 1)
        assert not r.contains_point(1.001, 0.5)


class TestCombinators:
    def test_intersection(self):
        r = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert r.as_tuple() == (1, 1, 2, 2)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(ValueError, match="do not intersect"):
            Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6))

    def test_intersection_area(self):
        assert Rect(0, 0, 2, 2).intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0
        # touching: zero area but intersecting
        assert Rect(0, 0, 1, 1).intersection_area(Rect(1, 0, 2, 1)) == 0.0

    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert u.as_tuple() == (0, 0, 3, 3)

    def test_enlargement(self):
        r = Rect(0, 0, 1, 1)
        assert r.enlargement(Rect(0, 0, 1, 1)) == 0.0
        assert r.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)

    def test_expanded(self):
        r = Rect(1, 1, 3, 3).expanded(1, 2)
        assert r.as_tuple() == (0, -1, 4, 5)

    def test_expanded_negative_clamps_to_center(self):
        r = Rect(0, 0, 2, 2).expanded(-5, -5)
        assert r.as_tuple() == (1, 1, 1, 1)

    def test_margin(self):
        assert Rect(0, 0, 2, 3).margin == 5.0

    def test_iter(self):
        assert list(Rect(1, 2, 3, 4)) == [1, 2, 3, 4]


class TestMbrOf:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mbr_of([])

    def test_single(self):
        r = Rect(1, 2, 3, 4)
        assert mbr_of([r]) == r

    def test_many(self):
        result = mbr_of([Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)])
        assert result.as_tuple() == (0, -2, 6, 1)


class TestProperties:
    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_area_bounded(self, a, b):
        area = a.intersection_area(b)
        assert 0.0 <= area <= min(a.area, b.area) + 1e-6

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), rects())
    def test_intersects_iff_positive_or_touching(self, a, b):
        # if the overlap area is positive they must intersect
        if a.intersection_area(b) > 0:
            assert a.intersects(b)

    @given(rects())
    def test_center_inside(self, r):
        cx, cy = r.center
        assert r.contains_point(cx, cy)

    @given(rects(), rects())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-6

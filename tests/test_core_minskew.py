"""Tests for spatial skew and the Min-Skew construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MinSkewPartitioner,
    bucket_skew,
    grouping_skew,
    grouping_skew_on_boxes,
    grouping_skew_on_grid,
    progressive_min_skew,
    refinement_schedule,
    variance,
)
from repro.data import charminar, uniform_rects
from repro.geometry import Rect, RectSet
from repro.grid import DensityGrid


class TestSkewMeasures:
    def test_variance_empty(self):
        assert variance(np.array([])) == 0.0

    def test_variance_matches_footnote(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        assert variance(vals) == pytest.approx(
            ((vals - vals.mean()) ** 2).mean()
        )

    def test_bucket_skew_is_n_times_variance(self):
        vals = np.array([1.0, 5.0, 9.0])
        assert bucket_skew(vals) == pytest.approx(3 * vals.var())

    def test_grouping_skew_sums(self):
        a = np.array([1.0, 3.0])
        b = np.array([2.0, 2.0])
        assert grouping_skew([a, b]) == pytest.approx(bucket_skew(a))

    def test_constant_grouping_zero_skew(self):
        assert grouping_skew([np.full(5, 7.0), np.full(3, 1.0)]) == 0.0

    def test_grid_helpers_agree(self):
        gen = np.random.default_rng(40)
        grid = DensityGrid(gen.integers(0, 9, (8, 8)).astype(float),
                           Rect(0, 0, 80, 80))
        blocks = [(0, 3, 0, 7), (4, 7, 0, 7)]
        via_blocks = grouping_skew_on_grid(grid, blocks)
        boxes = [grid.block_rect(*b) for b in blocks]
        via_boxes = grouping_skew_on_boxes(grid, boxes)
        assert via_blocks == pytest.approx(via_boxes)

    def test_splitting_never_increases_skew(self):
        gen = np.random.default_rng(41)
        grid = DensityGrid(gen.integers(0, 50, (10, 10)).astype(float),
                           Rect(0, 0, 10, 10))
        whole = grouping_skew_on_grid(grid, [(0, 9, 0, 9)])
        split = grouping_skew_on_grid(grid, [(0, 4, 0, 9), (5, 9, 0, 9)])
        assert split <= whole + 1e-9


class TestMinSkewConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MinSkewPartitioner(0)
        with pytest.raises(ValueError):
            MinSkewPartitioner(10, n_regions=0)
        with pytest.raises(ValueError):
            MinSkewPartitioner(10, refinements=-1)
        with pytest.raises(ValueError):
            MinSkewPartitioner(10, split_policy="magic")

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            MinSkewPartitioner(10).partition(RectSet.empty())

    def test_bucket_quota_respected(self, small_charminar):
        for beta in (1, 7, 50):
            buckets = MinSkewPartitioner(
                beta, n_regions=400
            ).partition(small_charminar)
            assert len(buckets) == beta

    def test_quota_larger_than_grid(self):
        """Cannot produce more buckets than grid cells."""
        rs = uniform_rects(100, seed=42)
        buckets = MinSkewPartitioner(50, n_regions=16).partition(rs)
        assert len(buckets) <= 16

    def test_counts_partition_input(self, small_charminar):
        buckets = MinSkewPartitioner(
            40, n_regions=900
        ).partition(small_charminar)
        assert sum(b.count for b in buckets) == len(small_charminar)

    def test_boxes_tile_the_bounds(self, small_charminar):
        """BSP blocks are disjoint and cover the MBR exactly."""
        result = MinSkewPartitioner(
            30, n_regions=400
        ).partition_full(small_charminar)
        total_area = sum(
            result.grid.block_rect(*blk).area for blk in result.blocks
        )
        assert total_area == pytest.approx(result.grid.bounds.area)
        # pairwise interiors disjoint: overlap area must be zero
        boxes = [result.grid.block_rect(*blk) for blk in result.blocks]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                assert boxes[i].intersection_area(boxes[j]) == \
                    pytest.approx(0.0)

    def test_skew_decreases_with_buckets(self, small_charminar):
        grid = DensityGrid.from_rects(small_charminar, 30, 30)
        skews = []
        for beta in (1, 5, 20, 60):
            result = MinSkewPartitioner(
                beta, n_regions=900
            ).partition_full(small_charminar)
            skews.append(
                grouping_skew_on_grid(result.grid, result.blocks)
            )
        assert skews == sorted(skews, reverse=True)
        assert skews[-1] < 0.5 * skews[0]

    def test_buckets_follow_density(self, small_charminar):
        """More buckets land in the dense corners than the empty middle."""
        buckets = MinSkewPartitioner(
            50, n_regions=2_500
        ).partition(small_charminar)
        space = small_charminar.mbr()
        corner_zone = 0.25 * space.width
        corner_buckets = sum(
            1 for b in buckets
            if (b.bbox.center[0] < space.x1 + corner_zone
                or b.bbox.center[0] > space.x2 - corner_zone)
            and (b.bbox.center[1] < space.y1 + corner_zone
                 or b.bbox.center[1] > space.y2 - corner_zone)
        )
        assert corner_buckets > len(buckets) / 2

    def test_exact_policy_no_worse_skew(self, small_charminar):
        marginal = MinSkewPartitioner(
            25, n_regions=400, split_policy="marginal"
        ).partition_full(small_charminar)
        exact = MinSkewPartitioner(
            25, n_regions=400, split_policy="exact"
        ).partition_full(small_charminar)
        skew_marginal = grouping_skew_on_grid(
            marginal.grid, marginal.blocks
        )
        skew_exact = grouping_skew_on_grid(exact.grid, exact.blocks)
        # exact split search optimises the real objective; allow noise
        assert skew_exact <= skew_marginal * 1.25

    def test_trace_records_splits(self, small_charminar):
        p = MinSkewPartitioner(10, n_regions=100, trace=True)
        result = p.partition_full(small_charminar)
        assert len(result.trace) == 9  # beta - 1 greedy splits
        for record in result.trace:
            assert record.axis in (0, 1)
            assert record.skew_reduction >= 0.0

    def test_degenerate_space(self):
        """All rectangles stacked on one point."""
        rs = RectSet(np.tile([[5.0, 5.0, 5.0, 5.0]], (20, 1)))
        buckets = MinSkewPartitioner(10).partition(rs)
        assert len(buckets) == 1
        assert buckets[0].count == 20

    def test_deterministic(self, small_charminar):
        a = MinSkewPartitioner(20, n_regions=400).partition(
            small_charminar
        )
        b = MinSkewPartitioner(20, n_regions=400).partition(
            small_charminar
        )
        assert [x.bbox for x in a] == [x.bbox for x in b]
        assert [x.count for x in a] == [x.count for x in b]

    @given(st.integers(1, 30), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_inputs_quota_and_partition(self, beta, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 150))
        rs = RectSet.from_centers(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n),
            gen.uniform(0, 10, n), gen.uniform(0, 10, n),
        )
        buckets = MinSkewPartitioner(beta, n_regions=64).partition(rs)
        assert 1 <= len(buckets) <= beta
        assert sum(b.count for b in buckets) == n


class TestProgressive:
    def test_schedule_example3(self):
        """The paper's Example 3: 60 buckets, 16 000 regions, 2 steps."""
        stages = refinement_schedule(60, 16_000, 2)
        assert [s.n_regions for s in stages] == [1_000, 4_000, 16_000]
        assert [s.cumulative_buckets for s in stages] == [20, 40, 60]

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            refinement_schedule(0, 100, 1)
        with pytest.raises(ValueError):
            refinement_schedule(10, 0, 1)
        with pytest.raises(ValueError):
            refinement_schedule(10, 100, -1)

    def test_zero_refinements_is_plain(self, small_charminar):
        plain = MinSkewPartitioner(15, n_regions=400).partition(
            small_charminar
        )
        zero = MinSkewPartitioner(
            15, n_regions=400, refinements=0
        ).partition(small_charminar)
        assert [b.bbox for b in plain] == [b.bbox for b in zero]

    def test_refined_construction_quota(self, small_charminar):
        p = progressive_min_skew(30, n_regions=1_600, refinements=2)
        buckets = p.partition(small_charminar)
        assert len(buckets) == 30
        assert sum(b.count for b in buckets) == len(small_charminar)

    def test_final_grid_resolution(self, small_charminar):
        p = MinSkewPartitioner(12, n_regions=1_600, refinements=2)
        result = p.partition_full(small_charminar)
        # started at 40/4=10 per side, refined twice -> 40 per side
        assert result.grid.shape() == (40, 40)

    def test_refinement_helps_large_queries_on_charminar(self):
        """The Figure-11 effect: with a very fine grid, the right number
        of refinements substantially reduces large-query error (the
        paper found the best count to vary between 2 and 6)."""
        from repro.estimators import BucketEstimator
        from repro.eval import ExperimentRunner
        from repro.workload import range_queries

        data = charminar()
        runner = ExperimentRunner(data)
        queries = range_queries(data, 0.25, 400, seed=7)

        def err(refinements):
            p = MinSkewPartitioner(
                50, n_regions=30_000, refinements=refinements
            )
            est = BucketEstimator.build(p, data)
            return runner.evaluate(
                est, queries
            ).average_relative_error

        plain = err(0)
        best = min(err(r) for r in (2, 4, 6))
        assert best < 0.8 * plain

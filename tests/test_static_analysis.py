"""Tests for :mod:`repro.analysis` — the invariant linter.

Three layers:

* the **gate**: the real ``src/`` tree must lint clean (this is the
  static half of the determinism/contract story; the dynamic half
  lives in ``test_minskew_determinism.py`` and the differential
  tests);
* **per-rule fixtures**: for each rule, snippets that must flag and
  snippets that must pass, so rule behaviour is pinned independently
  of the current state of the tree;
* **framework behaviour**: suppression comments, alias resolution,
  reporters (text + schema-checked JSON), CLI wiring, and the
  optional mypy/ruff gates (skipped where the tools are absent).
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    PARSE_RULE,
    RULES,
    Violation,
    lint_json_dict,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    validate_lint_json,
)
from repro.analysis.engine import ModuleContext, iter_source_files
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

# Fixture paths that place snippets inside/outside rule scopes.
CORE_PATH = "src/repro/core/fixture.py"
GEOMETRY_PATH = "src/repro/geometry/fixture.py"
OBS_PATH = "src/repro/obs/fixture.py"
DATA_PATH = "src/repro/data/fixture.py"


def codes(violations):
    return [v.rule for v in violations]


def lint_only(source, path, *rules):
    """Lint with only the named rules enabled (fixture isolation:
    un-annotated fixture defs must not trip API001 in a DET001 test)."""
    config = DEFAULT_CONFIG.replace(select=frozenset(rules))
    return lint_source(source, path, config)


# ----------------------------------------------------------------------
# the gate: the shipped tree must be clean
# ----------------------------------------------------------------------
class TestRepositoryGate:
    def test_src_tree_lints_clean(self):
        result = lint_paths([SRC], DEFAULT_CONFIG)
        assert result.files_checked > 50
        assert result.ok, "\n" + render_text(result)

    def test_every_registered_rule_ran_over_real_tree(self):
        # A rule that silently never applies is a dead rule; each one
        # must at least be exercised by the fixtures below, and the
        # registry must carry exactly the documented codes.
        assert set(RULES) == {
            "DET001", "NPY001", "MUT001", "OBS001", "API001",
        }


# ----------------------------------------------------------------------
# DET001 — determinism
# ----------------------------------------------------------------------
class TestDET001:
    def test_flags_global_numpy_rng(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    np.random.seed(0)\n"
            "    return np.random.rand(3)\n"
        )
        found = lint_only(source, CORE_PATH, 'DET001')
        assert codes(found) == ["DET001", "DET001"]

    def test_flags_stdlib_random(self):
        source = (
            "import random\n"
            "def f():\n"
            "    return random.random()\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'DET001')) == ["DET001"]

    def test_flags_from_import_alias(self):
        source = (
            "from random import shuffle\n"
            "def f(xs):\n"
            "    shuffle(xs)\n"
        )
        assert "DET001" in codes(lint_only(source, CORE_PATH, 'DET001'))

    def test_flags_wall_clock(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'DET001')) == ["DET001"]

    def test_flags_unseeded_default_rng(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'DET001')) == ["DET001"]

    def test_passes_seeded_generator(self):
        source = (
            "import numpy as np\n"
            "def f(seed: int) -> object:\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(0, 10)\n"
        )
        assert lint_only(source, CORE_PATH, 'DET001') == []

    def test_passes_threaded_generator_parameter(self):
        source = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> object:\n"
            "    return rng.normal()\n"
        )
        assert lint_only(source, CORE_PATH, 'DET001') == []

    def test_obs_package_is_allowlisted(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert lint_only(source, OBS_PATH, 'DET001') == []

    def test_time_perf_counter_is_fine(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()\n"
        )
        assert lint_only(source, CORE_PATH, 'DET001') == []


# ----------------------------------------------------------------------
# NPY001 — dtype hygiene
# ----------------------------------------------------------------------
class TestNPY001:
    def test_flags_builtin_astype(self):
        source = "def f(a):\n    return a.astype(int)\n"
        assert codes(lint_only(source, DATA_PATH, 'NPY001')) == ["NPY001"]

    def test_flags_builtin_dtype_keyword(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.zeros(3, dtype=float)\n"
        )
        assert codes(lint_only(source, DATA_PATH, 'NPY001')) == ["NPY001"]

    def test_flags_numeric_string_dtype(self):
        source = "def f(a):\n    return a.astype('i8')\n"
        assert codes(lint_only(source, DATA_PATH, 'NPY001')) == ["NPY001"]

    def test_flags_astype_without_argument(self):
        source = "def f(a):\n    return a.astype()\n"
        assert codes(lint_only(source, DATA_PATH, 'NPY001')) == ["NPY001"]

    def test_passes_explicit_numpy_dtype(self):
        source = (
            "import numpy as np\n"
            "def f(a):\n"
            "    b = a.astype(np.int64)\n"
            "    return np.zeros(3, dtype=np.float64), b\n"
        )
        assert lint_only(source, DATA_PATH, 'NPY001') == []

    def test_passes_unicode_dtype(self):
        # "<U1" carries its width and is not numeric.
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.full(3, ' ', dtype='<U1')\n"
        )
        assert lint_only(source, DATA_PATH, 'NPY001') == []

    def test_passes_dtype_variable(self):
        source = "def f(a, dt):\n    return a.astype(dt)\n"
        assert lint_only(source, DATA_PATH, 'NPY001') == []


# ----------------------------------------------------------------------
# MUT001 — parameter purity
# ----------------------------------------------------------------------
class TestMUT001:
    def test_flags_item_assignment(self):
        source = "def f(arr):\n    arr[0] = 1.0\n"
        assert codes(lint_only(source, CORE_PATH, 'MUT001')) == ["MUT001"]

    def test_flags_augmented_assignment(self):
        source = "def f(arr):\n    arr += 1\n"
        assert codes(lint_only(source, CORE_PATH, 'MUT001')) == ["MUT001"]

    def test_flags_mutating_method(self):
        source = "def f(xs):\n    xs.sort()\n    return xs\n"
        assert codes(lint_only(source, CORE_PATH, 'MUT001')) == ["MUT001"]

    def test_flags_public_method_parameter(self):
        source = (
            "class Thing:\n"
            "    def run(self, arr):\n"
            "        arr[:] = 0\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'MUT001')) == ["MUT001"]

    def test_passes_private_function(self):
        source = "def _f(arr):\n    arr[0] = 1.0\n"
        assert lint_only(source, CORE_PATH, 'MUT001') == []

    def test_passes_mutating_self(self):
        source = (
            "class Thing:\n"
            "    def run(self, n):\n"
            "        self.items.append(n)\n"
            "        self.count += 1\n"
        )
        assert lint_only(source, CORE_PATH, 'MUT001') == []

    def test_passes_rebound_parameter(self):
        # ``arr = arr.copy()`` makes the object function-owned.
        source = (
            "def f(arr):\n"
            "    arr = arr.copy()\n"
            "    arr[0] = 1.0\n"
            "    return arr\n"
        )
        assert lint_only(source, CORE_PATH, 'MUT001') == []

    def test_passes_local_mutation(self):
        source = (
            "def f(n):\n"
            "    out = []\n"
            "    out.append(n)\n"
            "    return out\n"
        )
        assert lint_only(source, CORE_PATH, 'MUT001') == []

    def test_out_of_scope_package_is_ignored(self):
        source = "def f(arr):\n    arr[0] = 1.0\n"
        assert lint_only(source, DATA_PATH, 'MUT001') == []


# ----------------------------------------------------------------------
# OBS001 — metric-key discipline
# ----------------------------------------------------------------------
class TestOBS001:
    def test_flags_unregistered_namespace(self):
        source = (
            "from repro.obs import OBS\n"
            "def f():\n"
            "    OBS.add('bogus_ns.thing')\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'OBS001')) == ["OBS001"]

    def test_flags_computed_key(self):
        source = (
            "from repro.obs import OBS\n"
            "def f(key):\n"
            "    OBS.add(key)\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'OBS001')) == ["OBS001"]

    def test_flags_fstring_without_literal_prefix(self):
        source = (
            "from repro.obs import OBS\n"
            "def f(ns):\n"
            "    with OBS.timer(f'{ns}.build'):\n"
            "        pass\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'OBS001')) == ["OBS001"]

    def test_flags_malformed_key(self):
        source = (
            "from repro.obs import OBS\n"
            "def f():\n"
            "    OBS.add('NoDotsHere')\n"
        )
        assert codes(lint_only(source, CORE_PATH, 'OBS001')) == ["OBS001"]

    def test_passes_registered_literal(self):
        source = (
            "from repro.obs import OBS\n"
            "def f():\n"
            "    OBS.add('minskew.splits', 3)\n"
            "    OBS.observe('rtree.height', 4.0)\n"
            "    with OBS.timer('oracle.exact_counts'):\n"
            "        pass\n"
        )
        assert lint_only(source, CORE_PATH, 'OBS001') == []

    def test_passes_fstring_with_registered_prefix(self):
        source = (
            "from repro.obs import OBS\n"
            "def f(name):\n"
            "    with OBS.timer(f'estimate.{name}'):\n"
            "        pass\n"
        )
        assert lint_only(source, CORE_PATH, 'OBS001') == []

    def test_other_receivers_are_not_checked(self):
        source = (
            "def f(registry, key):\n"
            "    registry.add(key)\n"
        )
        assert lint_only(source, CORE_PATH, 'OBS001') == []


# ----------------------------------------------------------------------
# API001 — annotation completeness
# ----------------------------------------------------------------------
class TestAPI001:
    def test_flags_missing_parameter_and_return(self):
        source = "def area(w, h: float):\n    return w * h\n"
        found = lint_only(source, GEOMETRY_PATH, 'API001')
        assert codes(found) == ["API001", "API001"]
        messages = " ".join(v.message for v in found)
        assert "'w'" in messages and "return type" in messages

    def test_flags_unannotated_method(self):
        source = (
            "class Shape:\n"
            "    def scale(self, factor) -> 'Shape':\n"
            "        return self\n"
        )
        assert codes(lint_only(source, GEOMETRY_PATH, 'API001')) == ["API001"]

    def test_passes_fully_annotated(self):
        source = (
            "def area(w: float, h: float) -> float:\n"
            "    return w * h\n"
            "class Shape:\n"
            "    def scale(self, factor: float) -> 'Shape':\n"
            "        return self\n"
        )
        assert lint_only(source, GEOMETRY_PATH, 'API001') == []

    def test_passes_private_and_nested(self):
        source = (
            "def _helper(x):\n"
            "    def inner(y):\n"
            "        return y\n"
            "    return inner(x)\n"
        )
        assert lint_only(source, GEOMETRY_PATH, 'API001') == []

    def test_out_of_scope_package_is_ignored(self):
        source = "def f(x):\n    return x\n"
        assert lint_only(source, DATA_PATH, 'API001') == []

    def test_kwonly_vararg_and_kwarg_need_annotations(self):
        source = (
            "def f(*args, scale, **kwargs) -> None:\n"
            "    pass\n"
        )
        assert codes(lint_only(source, GEOMETRY_PATH, 'API001')) == [
            "API001", "API001", "API001",
        ]


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SOURCE = (
        "import time\n"
        "def f():\n"
        "    return time.time(){comment}\n"
    )

    def test_targeted_noqa_suppresses(self):
        source = self.SOURCE.format(comment="  # repro: noqa[DET001]")
        assert lint_only(source, CORE_PATH, "DET001") == []

    def test_bare_noqa_suppresses_everything(self):
        # One bare ``# repro: noqa`` silences every rule on its line.
        source = (
            "import time\n"
            "def f(a):\n"
            "    a[0] = time.time()  # repro: noqa\n"
        )
        assert lint_only(source, CORE_PATH, "DET001", "MUT001") == []

    def test_wrong_rule_does_not_suppress(self):
        source = self.SOURCE.format(comment="  # repro: noqa[NPY001]")
        assert codes(lint_only(source, CORE_PATH, "DET001")) == ["DET001"]

    def test_noqa_on_other_line_does_not_suppress(self):
        source = (
            "import time  # repro: noqa[DET001]\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert codes(lint_only(source, CORE_PATH, "DET001")) == ["DET001"]

    def test_multiple_rules_in_one_comment(self):
        source = (
            "import time\n"
            "def f(a):\n"
            "    a[0] = time.time()"
            "  # repro: noqa[DET001, MUT001]\n"
        )
        assert lint_only(source, CORE_PATH, "DET001", "MUT001") == []


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_becomes_parse_violation(self):
        found = lint_source("def broken(:\n", CORE_PATH)
        assert codes(found) == [PARSE_RULE]
        assert found[0].line >= 1

    def test_alias_resolution(self):
        ctx = ModuleContext.from_source(
            "import numpy as np\nx = np.random.seed\n", CORE_PATH
        )
        import ast

        node = ast.parse("np.random.seed").body[0].value
        assert ctx.resolve(node) == "numpy.random.seed"

    def test_module_name_mapping(self):
        ctx = ModuleContext.from_source("", "src/repro/core/minskew.py")
        assert ctx.module == "repro.core.minskew"
        assert ctx.in_packages(("repro.core",))
        assert not ctx.in_packages(("repro.geometry",))

    def test_package_init_maps_to_package(self):
        ctx = ModuleContext.from_source("", "src/repro/obs/__init__.py")
        assert ctx.module == "repro.obs"

    def test_iter_source_files_dedups_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text("z = 3\n")
        files = iter_source_files([tmp_path, tmp_path / "a.py"])
        names = [f.name for f in files]
        assert names == ["a.py", "b.py"]

    def test_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_source_files([Path("/definitely/not/here")])

    def test_rule_selection(self):
        source = (
            "import time\n"
            "def f(a):\n"
            "    a[0] = time.time()\n"
        )
        config = DEFAULT_CONFIG.replace(select=frozenset({"MUT001"}))
        assert codes(lint_source(source, CORE_PATH, config)) == ["MUT001"]

    def test_violations_are_ordered(self):
        a = Violation("a.py", 2, 0, "DET001", "x")
        b = Violation("a.py", 1, 0, "NPY001", "y")
        assert sorted([a, b]) == [b, a]
        assert b.format() == "a.py:1:0: NPY001 y"


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _result(self):
        return lint_paths([SRC / "repro" / "geometry"], DEFAULT_CONFIG)

    def test_json_report_matches_schema(self):
        doc = json.loads(render_json(self._result()))
        validate_lint_json(doc)
        assert doc["tool"] == "repro-lint"
        assert doc["files_checked"] >= 3

    def test_json_report_carries_violations(self):
        source = "import time\ndef f():\n    return time.time()\n"
        found = lint_only(source, CORE_PATH, "DET001")
        from repro.analysis.engine import LintResult

        doc = lint_json_dict(
            LintResult(files_checked=1, violations=tuple(found))
        )
        validate_lint_json(doc)
        assert doc["summary"]["total"] == 1
        assert doc["summary"]["by_rule"] == {"DET001": 1}
        entry = doc["violations"][0]
        assert entry["rule"] == "DET001"
        assert entry["path"] == CORE_PATH
        assert entry["line"] == 3

    def test_validate_rejects_mismatched_summary(self):
        doc = lint_json_dict(
            __import__("repro.analysis.engine", fromlist=["LintResult"])
            .LintResult(files_checked=0, violations=()),
        )
        doc["summary"]["total"] = 5
        with pytest.raises(ValueError):
            validate_lint_json(doc)

    def test_text_report_clean_summary(self):
        text = render_text(self._result())
        assert text.endswith("files clean")


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violating_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\ndef f():\n    return time.time()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "bad.py:3:" in out

    def test_lint_json_format(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert main(["lint", str(good), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_lint_json(doc)

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_lint_unknown_rule_exits_nonzero(self, capsys):
        assert main(["lint", "--rules", "NOPE999", str(SRC)]) == 1
        err = capsys.readouterr().err
        assert err.startswith(
            "repro-spatial: error: ValidationError: unknown rule(s): "
            "NOPE999"
        )
        assert "known rules:" in err
        assert len(err.strip().splitlines()) == 1

    def test_lint_empty_rule_selection_exits_nonzero(self, capsys):
        assert main(["lint", "--rules", ",", str(SRC)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-spatial: error: ValidationError:")
        assert "selects no rules" in err

    def test_lint_project_rule_needs_project_flag(self, capsys):
        assert main(["lint", "--rules", "EPOCH001", str(SRC)]) == 1
        err = capsys.readouterr().err
        assert "--project" in err

    def test_failing_subcommand_prints_one_line_error(self, capsys):
        exit_code = main(["lint", "/no/such/target"])
        assert exit_code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-spatial: error:")
        assert len(err.strip().splitlines()) == 1


# ----------------------------------------------------------------------
# optional tool gates (exercised fully in CI, skipped where absent)
# ----------------------------------------------------------------------
def _tool_missing(module: str) -> bool:
    try:
        __import__(module)
    except ImportError:
        return shutil.which(module) is None
    return False


@pytest.mark.skipif(_tool_missing("mypy"), reason="mypy not installed")
def test_mypy_strict_gate():
    completed = subprocess.run(
        [
            sys.executable, "-m", "mypy", "--strict",
            "-p", "repro.geometry",
            "-p", "repro.obs",
            "-p", "repro.analysis",
            "-m", "repro.errors",
            "-p", "repro.resilience",
            "-p", "repro.serving",
            "-p", "repro.estimators",
        ],
        cwd=REPO_ROOT,
        env={**__import__("os").environ,
             "MYPYPATH": str(SRC)},
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


@pytest.mark.skipif(_tool_missing("ruff"), reason="ruff not installed")
def test_ruff_gate():
    completed = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr

"""Fault-tolerance suite for the sharded serving tier.

Covers the supervision stack end to end:

* **worker supervision** — a SIGKILLed worker surfaces as a typed
  :class:`ShardWorkerError` (never a hang) and is respawned; a
  SIGSTOPped (wedged) worker runs the reply deadline out the same
  way; ``close()`` is idempotent and survives pre-killed workers;
* **WAL + checkpoint replay** — a shard recovered through
  :func:`wal_recovery` is *bit-identical* to the authoritative copy
  (state digests and served answers), including across refresh
  decisions replayed mid-stream;
* **quarantine** — the :class:`ShardHealth` state machine walks
  healthy → suspect → quarantined → recovering → healthy on the
  logical clock, and the router serves quarantined shards by their
  degraded ``Uniform@s<id>`` partial with an explicit
  ``degraded_shards`` annotation;
* **partial-result integrity** (hypothesis) — for any fault plan
  failing at most K−1 shards, queries that touch none of the failed
  shards are answered bit-identically to the
  :class:`ShardUnionEstimator` reference, and the
  ``serving.shard.degraded.s<id>`` counters match the independently
  computed failed∩dispatched set;
* **worker-kill chaos harness** — the seeded SIGKILL stream loses no
  request and recovers to bit-identical state (the CI gate).
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import charminar
from repro.errors import ShardWorkerError
from repro.geometry import RectSet
from repro.obs import OBS
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    StepClock,
    WorkerKillConfig,
    installed,
    run_worker_kill_chaos,
)
from repro.serving import (
    HEALTH_STATES,
    ShardedHistogram,
    ShardHealth,
    ShardRouter,
    attach_wals,
    wal_recovery,
)
from repro.workload import live_workload, range_queries

DATA = charminar(900, seed=23)
QUERIES = range_queries(DATA, 0.1, 60, seed=9)
N_SHARDS = 3


def _build():
    return ShardedHistogram.build(
        DATA, n_shards=N_SHARDS, n_buckets=18, n_regions=256
    )


def _mutations(n):
    return [
        op for op in live_workload(
            DATA, 0.1, 4 * n, seed=31,
            query_frac=0.0, insert_frac=0.6,
        )
        if op.kind != "query"
    ][:n]


def _dispatched(sharded, queries):
    """Shard ids the router must fan out to, per the routing boxes."""
    coords = queries.coords
    hit = {}
    for shard in sharded.shards:
        box = shard.routing_box()
        if box is None:
            continue
        mask = (
            (coords[:, 0] <= box.x2)
            & (coords[:, 2] >= box.x1)
            & (coords[:, 1] <= box.y2)
            & (coords[:, 3] >= box.y1)
        )
        if mask.any():
            hit[shard.shard_id] = mask
    return hit


# ----------------------------------------------------------------------
# worker supervision
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    def test_sigkilled_worker_raises_typed_error_and_respawns(self):
        with ShardRouter(
            _build(), workers=2,
            budget_steps=100, poll_interval=0.005,
        ) as router:
            pool = router._pool
            victim = pool.worker_of(0)
            pid = pool.worker_pids()[victim]
            os.kill(pid, signal.SIGKILL)
            pool._procs[victim].join(timeout=10)
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.call(0, "state_digest")
            assert "shard 0" in str(excinfo.value)
            assert "pending" in excinfo.value.hint
            assert excinfo.value.retryable
            # the slot was respawned: the same request now succeeds
            assert pool.respawns == 1
            assert isinstance(pool.call(0, "state_digest"), str)

    def test_wedged_worker_runs_out_the_reply_deadline(self):
        with ShardRouter(
            _build(), workers=2,
            budget_steps=5, poll_interval=0.001,
        ) as router:
            pool = router._pool
            victim = pool.worker_of(0)
            pid = pool.worker_pids()[victim]
            os.kill(pid, signal.SIGSTOP)
            try:
                with pytest.raises(ShardWorkerError) as excinfo:
                    pool.call(0, "state_digest")
            finally:
                try:
                    # usually gone already: respawn SIGKILLs the
                    # wedged process (SIGKILL acts on stopped procs)
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert "wedged" in str(excinfo.value)
            assert "budget" in str(excinfo.value)
            assert "pending" in excinfo.value.hint
            # the wedged process was killed and the slot respawned
            # (post-recovery service is proven by the SIGKILL test —
            # this budget is deliberately too tight for a fresh
            # worker's unpickle)
            assert pool.respawns == 1
            assert pool._procs[victim].pid != pid
            assert pool._procs[victim].is_alive()

    def test_call_many_fails_only_the_dead_workers_requests(self):
        sharded = _build()
        with ShardRouter(
            sharded, workers=2,
            budget_steps=100, poll_interval=0.005,
        ) as router:
            pool = router._pool
            victim = pool.worker_of(0)
            os.kill(pool.worker_pids()[victim], signal.SIGKILL)
            pool._procs[victim].join(timeout=10)
            requests = [
                (s.shard_id, "state_digest", ())
                for s in sharded.shards
            ]
            results = pool.try_call_many(requests)
            for (sid, _, _), result in zip(requests, results):
                if pool.worker_of(sid) == victim:
                    assert isinstance(result, ShardWorkerError)
                else:
                    assert isinstance(result, str)
            # healthy shards answered; the pool is whole again
            assert pool.respawns == 1
            assert all(
                isinstance(r, str)
                for r in pool.try_call_many(requests)
            )

    def test_close_is_idempotent_and_survives_killed_workers(self):
        router = ShardRouter(_build(), workers=2)
        pool = router._pool
        os.kill(pool.worker_pids()[1], signal.SIGKILL)
        pool._procs[1].join(timeout=10)
        router.close()
        router.close()
        assert router._pool is None
        pool.close()

    def test_cast_to_dead_worker_respawns_without_double_apply(self):
        sharded = _build()
        with ShardRouter(
            sharded, workers=2,
            budget_steps=200, poll_interval=0.005,
        ) as router:
            pool = router._pool
            op = _mutations(1)[0]
            victim = pool.worker_of(sharded.owner_of(op.rect))
            os.kill(pool.worker_pids()[victim], signal.SIGKILL)
            pool._procs[victim].join(timeout=10)
            router.insert(op.rect)
            # every worker copy agrees with the parent afterwards
            for shard in sharded.shards:
                assert pool.call(shard.shard_id, "state_digest") \
                    == shard.state_digest()


# ----------------------------------------------------------------------
# WAL + checkpoint replay
# ----------------------------------------------------------------------
class TestWALReplay:
    def test_recovery_is_bit_identical(self, tmp_path):
        sharded = _build()
        wals = attach_wals(sharded, tmp_path, checkpoint_every=4)
        for op in _mutations(60):
            if op.kind == "insert":
                sharded.insert(op.rect)
            else:
                sharded.delete(op.rect)
        recover = wal_recovery(sharded, wals)
        for shard in sharded.shards:
            fresh = recover(shard.shard_id)
            assert fresh.state_digest() == shard.state_digest()
            assert fresh.epoch == shard.epoch
            clipped = QUERIES.coords.copy()
            assert np.array_equal(
                fresh.estimate_batch_coords(clipped),
                shard.estimate_batch_coords(clipped),
            )

    def test_checkpoint_folds_replay_tail(self, tmp_path):
        sharded = _build()
        wals = attach_wals(sharded, tmp_path, checkpoint_every=4)
        ops = _mutations(10)
        for op in ops:
            if op.kind == "insert":
                sharded.insert(op.rect)
            else:
                sharded.delete(op.rect)
        for shard in sharded.shards:
            wal = wals[shard.shard_id]
            # a fresh checkpoint truncates the record tail entirely
            wal.checkpoint(shard)
            assert wal.replayable_ops() == 0
            fresh = shard.clone_unbuilt()
            assert wal.recover(fresh) == 0
            assert fresh.state_digest() == shard.state_digest()

    def test_wal_recovery_accepts_the_log_directory(self, tmp_path):
        # A restarted process has no live ShardWAL handles — only the
        # directory.  The directory form must recover identically.
        sharded = _build()
        attach_wals(sharded, tmp_path, checkpoint_every=4)
        for op in _mutations(30):
            if op.kind == "insert":
                sharded.insert(op.rect)
            else:
                sharded.delete(op.rect)
        recover = wal_recovery(sharded, tmp_path)
        for shard in sharded.shards:
            fresh = recover(shard.shard_id)
            assert fresh.state_digest() == shard.state_digest()
            assert fresh.epoch == shard.epoch

    def test_pooled_serving_after_kills_matches_union(self, tmp_path):
        sharded = _build()
        wals = attach_wals(sharded, tmp_path, checkpoint_every=4)
        with ShardRouter(
            sharded, workers=2,
            recover=wal_recovery(sharded, wals),
            budget_steps=400, poll_interval=0.005,
        ) as router:
            before = router.estimate_batch(QUERIES)
            for op in _mutations(20):
                if op.kind == "insert":
                    router.insert(op.rect)
                else:
                    router.delete(op.rect)
            for pid in router._pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            for proc in router._pool._procs:
                proc.join(timeout=10)
            after = router.estimate_batch(QUERIES)
            assert router.degraded_shards == ()
            reference = sharded.union_estimator() \
                .estimate_batch(QUERIES)
            assert np.array_equal(after, reference)
            assert not np.array_equal(before, after), (
                "the mutation stream should have moved the answers; "
                "the recovery gate would be vacuous otherwise"
            )
            for shard in sharded.shards:
                assert router._pool.call(
                    shard.shard_id, "state_digest"
                ) == shard.state_digest()


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_health_walks_the_full_state_machine(self):
        clock = StepClock()
        health = ShardHealth(
            0, clock, failure_threshold=2, reset_after_steps=5
        )
        assert health.state == "healthy"
        health.record_failure()
        assert health.state == "suspect"
        assert health.allow()
        health.record_failure()
        assert health.state == "quarantined"
        assert not health.allow()
        clock.advance(5)
        assert health.state == "recovering"
        assert health.allow()
        health.record_success()
        assert health.state == "healthy"
        assert set(HEALTH_STATES) >= {
            "healthy", "suspect", "quarantined", "recovering",
        }

    def test_router_quarantines_and_serves_degraded(self):
        sharded = _build()
        router = ShardRouter(
            sharded,
            retry=RetryPolicy(max_attempts=2),
            failure_threshold=2, reset_after_steps=50,
        )
        plan = FaultPlan(3, (
            # retryable IO faults: the retry ladder itself drives the
            # consecutive-failure count up to the breaker threshold
            FaultSpec("serving.worker.s0", kind="io",
                      probability=1.0),
        ))
        injector = FaultInjector(plan, clock=router._clock)
        with OBS.scope():
            OBS.reset()
            with installed(injector):
                served = router.estimate_batch(QUERIES)
                assert router.degraded_shards == (0,)
                assert router.health()[0] == "quarantined"
                router.estimate_batch(QUERIES)
            counters = OBS.snapshot()["counters"]
            OBS.reset()
        assert counters["serving.shard.degraded.s0"] == 2
        assert counters["serving.shard.failures.s0"] >= 2
        assert counters["serving.shard.retries"] >= 1
        assert counters["serving.shard.health_transitions"] >= 2
        assert np.isfinite(served).all()
        # healthy shards still answer exactly like the reference
        reference = sharded.union_estimator().estimate_batch(QUERIES)
        untouched = ~_dispatched(sharded, QUERIES)[0]
        assert np.array_equal(
            served[untouched], reference[untouched]
        )

    def test_quarantined_shard_recovers_after_cooldown(self):
        sharded = _build()
        router = ShardRouter(
            sharded,
            retry=RetryPolicy(max_attempts=2),
            failure_threshold=2, reset_after_steps=10,
        )
        plan = FaultPlan(3, (
            FaultSpec("serving.worker.s0", kind="io",
                      probability=1.0),
        ))
        injector = FaultInjector(plan, clock=router._clock)
        with installed(injector):
            router.estimate_batch(QUERIES)
        assert router.health()[0] == "quarantined"
        router._clock.advance(10)
        assert router.health()[0] == "recovering"
        # faults gone: the trial dispatch succeeds and heals the shard
        served = router.estimate_batch(QUERIES)
        assert router.degraded_shards == ()
        assert router.health()[0] == "healthy"
        assert np.array_equal(
            served,
            sharded.union_estimator().estimate_batch(QUERIES),
        )


# ----------------------------------------------------------------------
# partial-result integrity under arbitrary <= K-1 shard failures
# ----------------------------------------------------------------------
SHARDED = _build()
REFERENCE = SHARDED.union_estimator().estimate_batch(QUERIES)


class TestPartialResultIntegrity:
    @settings(max_examples=20, deadline=None)
    @given(
        failed=st.sets(
            st.integers(min_value=0, max_value=N_SHARDS - 1),
            max_size=N_SHARDS - 1,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_healthy_shards_stay_bit_identical(self, failed, seed):
        router = ShardRouter(
            SHARDED,
            retry=RetryPolicy(max_attempts=2),
            failure_threshold=2,
        )
        plan = FaultPlan(seed, tuple(
            FaultSpec(f"serving.worker.s{sid}", kind="fail",
                      probability=1.0)
            for sid in sorted(failed)
        ))
        injector = FaultInjector(plan, clock=router._clock)
        with OBS.scope():
            OBS.reset()
            with installed(injector):
                served = router.estimate_batch(QUERIES)
            counters = OBS.snapshot()["counters"]
            OBS.reset()

        dispatched = _dispatched(SHARDED, QUERIES)
        expected_degraded = sorted(failed & set(dispatched))
        assert list(router.degraded_shards) == expected_degraded
        # degraded counters match the independently computed set
        for sid in range(N_SHARDS):
            count = counters.get(
                f"serving.shard.degraded.s{sid}", 0
            )
            assert count == (1 if sid in expected_degraded else 0)
        # queries touching no failed shard are answered exactly as
        # the single-engine union reference
        untouched = np.ones(len(QUERIES), dtype=bool)
        for sid in expected_degraded:
            untouched &= ~dispatched[sid]
        assert np.array_equal(
            served[untouched], REFERENCE[untouched]
        )
        assert np.isfinite(served).all()


# ----------------------------------------------------------------------
# the worker-kill chaos harness (the CI gate)
# ----------------------------------------------------------------------
class TestWorkerKillChaos:
    def test_seeded_kill_stream_loses_nothing(self):
        report = run_worker_kill_chaos(WorkerKillConfig(
            n=600, n_batches=5, batch_size=15,
            n_buckets=16, n_regions=144,
        ))
        assert report.requests == 5
        assert report.survival == 1.0
        assert report.kills > 0, (
            "the seeded plan never killed a worker; the run proves "
            "nothing — adjust kill_rate/plan_seed"
        )
        assert report.respawns >= report.kills
        assert report.recovered_matches
        assert report.digests_match
        assert report.passed

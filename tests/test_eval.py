"""Tests for metrics, space accounting, the runner, and reporting."""

import numpy as np
import pytest

from repro.eval import (
    ALL_TECHNIQUES,
    SAMPLE_LIBERAL_FACTOR,
    ExperimentRunner,
    average_relative_error,
    buckets_for_words,
    build_estimator,
    error_summary,
    fair_sample_size,
    paper_sample_size,
    timed_build,
    words_for_buckets,
)
from repro.eval.report import format_series, format_table, pivot_series
from repro.workload import range_queries


class TestMetrics:
    def test_perfect_estimate_zero_error(self):
        r = np.array([10.0, 20.0, 5.0])
        assert average_relative_error(r, r) == 0.0

    def test_paper_formula(self):
        r = np.array([10.0, 10.0])
        e = np.array([5.0, 15.0])
        # (5 + 5) / 20
        assert average_relative_error(r, e) == pytest.approx(0.5)

    def test_weighted_by_result_size(self):
        """Errors on big results dominate (sum-normalised, not mean)."""
        r = np.array([1.0, 1_000.0])
        e = np.array([2.0, 1_000.0])  # 100 % off on the tiny query
        assert average_relative_error(r, e) < 0.01

    def test_all_empty_raises(self):
        with pytest.raises(ValueError, match="undefined"):
            average_relative_error(np.zeros(3), np.ones(3))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            average_relative_error(np.zeros(3), np.zeros(4))

    def test_error_summary_fields(self):
        r = np.array([10.0, 0.0, 20.0])
        e = np.array([12.0, 1.0, 20.0])
        s = error_summary(r, e)
        assert s.n_queries == 3
        assert s.average_relative_error == pytest.approx(3 / 30)
        assert s.median_per_query_error == pytest.approx(0.1)
        assert "ARE=" in str(s)


class TestSpace:
    def test_words_per_bucket_is_8(self):
        assert words_for_buckets(100) == 800

    def test_roundtrip(self):
        assert buckets_for_words(words_for_buckets(57)) == 57

    def test_fair_sample_is_2x_buckets(self):
        # 8 words/bucket vs 4 words/sample -> 2 samples per bucket
        assert fair_sample_size(100) == 200

    def test_paper_sample_is_4x_buckets(self):
        assert paper_sample_size(100) == 400
        assert SAMPLE_LIBERAL_FACTOR == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            words_for_buckets(-1)
        with pytest.raises(ValueError):
            buckets_for_words(-8)


class TestRunner:
    def test_unknown_technique(self, small_nj_road):
        with pytest.raises(ValueError, match="unknown technique"):
            build_estimator("Magic", small_nj_road, 10)

    @pytest.mark.parametrize("technique", ALL_TECHNIQUES)
    def test_every_technique_builds_and_estimates(
        self, technique, small_nj_road
    ):
        est = build_estimator(
            technique, small_nj_road, 20, n_regions=400,
            rtree_method="str",
        )
        assert est.name == technique
        queries = range_queries(small_nj_road, 0.1, 20, seed=1)
        out = est.estimate_many(queries)
        assert out.shape == (20,)
        assert (out >= 0).all()

    def test_space_budgets(self, small_nj_road):
        buckets = build_estimator("Min-Skew", small_nj_road, 25,
                                  n_regions=400)
        sample = build_estimator("Sample", small_nj_road, 25)
        # Sample gets exactly 2x the bucket technique's footprint
        assert sample.size_words() == 2 * buckets.size_words()

    def test_timed_build(self, small_nj_road):
        built = timed_build("Uniform", small_nj_road, 10)
        assert built.build_seconds >= 0.0
        assert built.estimator.name == "Uniform"

    def test_truth_cached(self, small_nj_road):
        runner = ExperimentRunner(small_nj_road)
        queries = range_queries(small_nj_road, 0.1, 50, seed=2)
        a = runner.true_counts(queries)
        b = runner.true_counts(queries)
        assert a is b  # cache hit, not recomputation

    def test_evaluate_exact_estimator_zero_error(self, small_nj_road):
        from repro.estimators import ExactEstimator

        runner = ExperimentRunner(small_nj_road)
        queries = range_queries(small_nj_road, 0.1, 50, seed=3)
        summary = runner.evaluate(ExactEstimator(small_nj_road), queries)
        assert summary.average_relative_error == 0.0

    def test_evaluate_technique(self, small_nj_road):
        runner = ExperimentRunner(small_nj_road)
        queries = range_queries(small_nj_road, 0.1, 50, seed=4)
        errors, seconds = runner.evaluate_technique(
            "Min-Skew", queries, 20, n_regions=400
        )
        assert errors.average_relative_error < 1.0
        assert seconds > 0.0


class TestReport:
    RECORDS = [
        {"technique": "A", "qsize": 0.05, "error": 0.5},
        {"technique": "A", "qsize": 0.25, "error": 0.25},
        {"technique": "B", "qsize": 0.05, "error": 0.125},
    ]

    def test_format_table(self):
        text = format_table(self.RECORDS, ["technique", "qsize", "error"])
        lines = text.splitlines()
        assert "technique" in lines[0]
        assert len(lines) == 2 + len(self.RECORDS)
        assert "0.500" in text

    def test_format_table_missing_column(self):
        text = format_table(self.RECORDS, ["technique", "missing"])
        assert "missing" in text

    def test_pivot(self):
        pivot = pivot_series(self.RECORDS)
        assert pivot["A"] == {0.05: 0.5, 0.25: 0.25}
        assert pivot["B"] == {0.05: 0.125}

    def test_pivot_skips_incomplete(self):
        pivot = pivot_series([{"technique": "A"}])
        assert pivot == {}

    def test_format_series(self):
        text = format_series(self.RECORDS, title="demo")
        assert text.startswith("demo")
        assert "0.05" in text and "0.25" in text
        # B has no 0.25 value: empty cell, table still renders
        assert "B" in text


class TestExperiments:
    """Smoke tests of the experiment functions at miniature scale."""

    def test_error_vs_qsize(self, small_nj_road):
        from repro.eval.experiments import error_vs_qsize

        records = error_vs_qsize(
            small_nj_road,
            techniques=("Min-Skew", "Sample"),
            qsizes=(0.05, 0.25),
            n_buckets=20,
            n_queries=100,
            n_regions=400,
        )
        assert len(records) == 4
        assert all(r["error"] >= 0 for r in records)

    def test_error_vs_buckets(self, small_nj_road):
        from repro.eval.experiments import error_vs_buckets

        records = error_vs_buckets(
            small_nj_road,
            techniques=("Min-Skew",),
            bucket_counts=(10, 40),
            qsizes=(0.25,),
            n_queries=100,
            n_regions=400,
        )
        errors = {r["n_buckets"]: r["error"] for r in records}
        assert errors[40] <= errors[10] * 1.2

    def test_error_vs_regions(self, small_charminar):
        from repro.eval.experiments import error_vs_regions

        records = error_vs_regions(
            small_charminar,
            region_counts=(100, 1_600),
            qsizes=(0.05,),
            n_buckets=20,
            n_queries=100,
        )
        errors = {r["n_regions"]: r["error"] for r in records}
        assert errors[1_600] < errors[100]

    def test_progressive_refinement(self, small_charminar):
        from repro.eval.experiments import progressive_refinement

        records = progressive_refinement(
            small_charminar,
            refinement_counts=(0, 2),
            n_regions=6_400,
            n_buckets=20,
            n_queries=100,
            baseline_regions=(400,),
        )
        assert len(records) == 2
        assert records[0]["baseline_error"] is not None

    def test_point_query_error(self, small_charminar):
        from repro.eval.experiments import point_query_error

        records = point_query_error(
            small_charminar,
            techniques=("Min-Skew", "Uniform"),
            n_buckets=20,
            n_queries=150,
            n_regions=400,
        )
        errors = {r["technique"]: r["error"] for r in records}
        assert errors["Min-Skew"] < errors["Uniform"]

    def test_construction_times(self, small_nj_road):
        from repro.eval.experiments import construction_times

        records = construction_times(
            {"8K": small_nj_road},
            techniques=("Min-Skew", "Uniform"),
            bucket_counts=(20,),
            n_regions=400,
            rtree_method="str",
        )
        by_tech = {r["technique"]: r["build_seconds"] for r in records}
        assert by_tech["Uniform"] < by_tech["Min-Skew"] * 50

"""Tests for dataset generators, registry, and persistence."""

import numpy as np
import pytest

from repro.data import (
    CHARMINAR_SIDE,
    CHARMINAR_SPACE,
    charminar,
    clustered_rects,
    dataset_names,
    default_size,
    diagonal_rects,
    load_csv,
    load_npy,
    make_dataset,
    nj_road_like,
    save_csv,
    save_npy,
    sequoia_like,
    skewed_rects,
    uniform_rects,
    zipf_positions_2d,
    zipf_values,
)
from repro.geometry import Rect
from repro.grid import DensityGrid


class TestZipf:
    def test_zero_skew_is_roughly_uniform(self):
        vals = zipf_values(20_000, 0.0, 0.0, 100.0, rng=1)
        assert abs(vals.mean() - 50.0) < 2.0

    def test_high_skew_concentrates_small(self):
        vals = zipf_values(20_000, 2.0, 0.0, 100.0, rng=2)
        assert np.median(vals) < 10.0

    def test_range_respected(self):
        vals = zipf_values(1_000, 1.0, 5.0, 9.0, rng=3)
        assert vals.min() >= 5.0 and vals.max() <= 9.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            zipf_values(10, -1.0, 0, 1)
        with pytest.raises(ValueError):
            zipf_values(10, 1.0, 2, 1)
        with pytest.raises(ValueError):
            zipf_positions_2d(10, -0.5, Rect(0, 0, 1, 1))

    def test_positions_skew_towards_origin(self):
        b = Rect(0, 0, 100, 100)
        pts = zipf_positions_2d(5_000, 1.5, b, rng=4)
        assert (pts[:, 0] < 50).mean() > 0.8
        assert (pts[:, 1] < 50).mean() > 0.8

    def test_positions_inside_bounds(self):
        b = Rect(-10, 5, 20, 35)
        pts = zipf_positions_2d(2_000, 1.0, b, rng=5)
        assert pts[:, 0].min() >= -10 and pts[:, 0].max() <= 20
        assert pts[:, 1].min() >= 5 and pts[:, 1].max() <= 35


class TestUniform:
    def test_identical_sizes(self):
        rs = uniform_rects(500, width=100, height=100, seed=6)
        assert np.allclose(rs.widths, 100.0)
        assert np.allclose(rs.heights, 100.0)

    def test_fully_inside_bounds(self):
        rs = uniform_rects(500, seed=7)
        mbr = rs.mbr()
        space = Rect(0, 0, 10_000, 10_000)
        assert space.contains_rect(mbr)

    def test_roughly_flat_density(self):
        rs = uniform_rects(20_000, seed=8)
        g = DensityGrid.from_rects(rs, 8, 8,
                                   bounds=Rect(0, 0, 10_000, 10_000))
        d = g.densities
        assert d.max() / max(d.min(), 1) < 1.6


class TestCharminar:
    def test_published_parameters(self, small_charminar):
        assert np.allclose(small_charminar.widths, CHARMINAR_SIDE)
        assert np.allclose(small_charminar.heights, CHARMINAR_SIDE)
        assert CHARMINAR_SPACE.contains_rect(small_charminar.mbr())

    def test_corners_denser_than_center(self, small_charminar):
        g = DensityGrid.from_rects(
            small_charminar, 10, 10, bounds=CHARMINAR_SPACE
        )
        d = g.densities
        corners = [d[0, 0], d[9, 0], d[0, 9], d[9, 9]]
        center = d[4:6, 4:6].mean()
        assert min(corners) > 4 * center

    def test_corner_densities_vary(self, small_charminar):
        g = DensityGrid.from_rects(
            small_charminar, 10, 10, bounds=CHARMINAR_SPACE
        )
        d = g.densities
        corners = sorted([d[0, 0], d[9, 0], d[0, 9], d[9, 9]])
        assert corners[-1] > 1.5 * corners[0]

    def test_deterministic(self):
        a = charminar(1_000, seed=9)
        b = charminar(1_000, seed=9)
        assert a == b

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            charminar(100, corner_weights=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError, match="four corner"):
            charminar(100, corner_weights=(1.0,), interior_weight=0.0)

    def test_exact_count(self):
        assert len(charminar(12_345, seed=10)) == 12_345


class TestNjRoad:
    def test_exact_count(self, small_nj_road):
        assert len(small_nj_road) == 8_000

    def test_segments_are_thin(self, small_nj_road):
        """Road-segment MBRs are small relative to the space."""
        mbr = small_nj_road.mbr()
        assert small_nj_road.avg_width() < 0.01 * mbr.width
        assert small_nj_road.avg_height() < 0.01 * mbr.height

    def test_axis_diversity(self, small_nj_road):
        """Roads run in both directions: neither axis dominates."""
        wide = (small_nj_road.widths > small_nj_road.heights).mean()
        assert 0.2 < wide < 0.8

    def test_moderate_placement_skew(self, small_nj_road):
        """Denser than uniform but far from Charminar-extreme."""
        g = DensityGrid.from_rects(small_nj_road, 10, 10)
        d = g.densities
        ratio = d.max() / max(d.mean(), 1e-9)
        assert 1.5 < ratio < 40.0

    def test_mostly_covered_space(self, small_nj_road):
        """Road networks leave few completely empty regions."""
        g = DensityGrid.from_rects(small_nj_road, 10, 10)
        assert (g.densities == 0).mean() < 0.35

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            nj_road_like(0)
        with pytest.raises(ValueError):
            nj_road_like(100, highway_frac=0.6, arterial_frac=0.5)


class TestOtherSets:
    def test_skewed(self):
        rs = skewed_rects(3_000, placement_z=1.5, size_z=1.2, seed=11)
        assert len(rs) == 3_000
        g = DensityGrid.from_rects(rs, 8, 8)
        assert g.densities.max() > 3 * g.densities.mean()

    def test_clustered(self):
        rs = clustered_rects(3_000, seed=12)
        assert len(rs) == 3_000

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_rects(100, background_frac=1.5)

    def test_diagonal(self):
        rs = diagonal_rects(3_000, seed=13)
        centers = rs.centers()
        mbr = rs.mbr()
        corr = np.corrcoef(centers[:, 0], centers[:, 1])[0, 1]
        assert corr > 0.9
        assert mbr.width > 0

    def test_sequoia(self):
        rs = sequoia_like(5_000, seed=14)
        assert len(rs) == 5_000
        # point-like entities
        assert rs.avg_width() < 10.0

    def test_sequoia_validation(self):
        with pytest.raises(ValueError):
            sequoia_like(100, coastal_frac=2.0)


class TestRegistry:
    def test_names(self):
        names = dataset_names()
        assert "charminar" in names
        assert "nj_road" in names

    def test_default_sizes(self):
        assert default_size("charminar") == 40_000
        assert default_size("nj_road") == 414_442
        with pytest.raises(KeyError):
            default_size("nope")

    def test_make_dataset_case_insensitive(self):
        a = make_dataset("Charminar", 500)
        b = make_dataset("charminar", 500)
        assert a == b

    def test_make_dataset_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("atlantis")

    def test_seed_changes_data(self):
        a = make_dataset("uniform", 500, seed=1)
        b = make_dataset("uniform", 500, seed=2)
        assert a != b


class TestIO:
    def test_npy_roundtrip(self, tmp_path, small_nj_road):
        path = tmp_path / "data.npy"
        save_npy(small_nj_road, path)
        assert load_npy(path) == small_nj_road

    def test_csv_roundtrip(self, tmp_path):
        rs = make_dataset("uniform", 50)
        path = tmp_path / "data.csv"
        save_csv(rs, path)
        loaded = load_csv(path)
        np.testing.assert_allclose(loaded.coords, rs.coords)

    def test_csv_headerless(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("0,0,1,1\n2,2,3,3\n")
        rs = load_csv(path)
        assert len(rs) == 2

    def test_csv_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,0,1\n")
        with pytest.raises(ValueError, match="expected 4 columns"):
            load_csv(path)

    def test_csv_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,0,one,1\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_csv(path)

    def test_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(load_csv(path)) == 0

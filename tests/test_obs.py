"""Unit tests for the observability layer (repro.obs.metrics)."""

import json
import time

import pytest

from repro.obs import (
    OBS,
    MetricsRegistry,
    get_registry,
    snapshot_from_json,
)
from repro.obs.metrics import MAX_HISTOGRAM_SAMPLES, _NULL_TIMER


@pytest.fixture(autouse=True)
def _keep_global_registry_clean():
    """The process-wide OBS must leave every test disabled and empty."""
    yield
    OBS.disable()
    OBS.reset()


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
def test_counter_accumulates():
    reg = MetricsRegistry(enabled=True)
    reg.add("a")
    reg.add("a")
    reg.add("a", 5)
    reg.add("b", 2.5)
    assert reg.counter_value("a") == 7
    assert reg.counter_value("b") == 2.5
    assert reg.counter_value("missing") == 0


def test_counter_int_values_stay_int():
    reg = MetricsRegistry(enabled=True)
    reg.add("n", 3)
    assert isinstance(reg.snapshot()["counters"]["n"], int)


# ----------------------------------------------------------------------
# timers
# ----------------------------------------------------------------------
def test_timer_records_elapsed():
    reg = MetricsRegistry(enabled=True)
    with reg.timer("work"):
        time.sleep(0.002)
    stat = reg.timer_stats("work")
    assert stat.count == 1
    assert stat.total >= 0.002
    assert stat.min <= stat.max
    assert stat.min == pytest.approx(stat.total)


def test_timer_nesting_same_name():
    reg = MetricsRegistry(enabled=True)
    with reg.timer("outer"):
        with reg.timer("outer"):
            time.sleep(0.001)
    stat = reg.timer_stats("outer")
    assert stat.count == 2
    # the outer timing encloses the inner one
    assert stat.max >= stat.min
    assert stat.total >= 2 * stat.min


def test_timer_nesting_different_names():
    reg = MetricsRegistry(enabled=True)
    with reg.timer("outer"):
        with reg.timer("inner"):
            time.sleep(0.001)
    assert reg.timer_stats("outer").total >= \
        reg.timer_stats("inner").total


def test_timed_decorator():
    reg = MetricsRegistry(enabled=True)

    @reg.timed("f")
    def double(x):
        return 2 * x

    assert double(21) == 42
    assert reg.timer_stats("f").count == 1
    reg.disable()
    assert double(1) == 2  # still works, but records nothing
    assert reg.timer_stats("f").count == 1


def test_timer_survives_exceptions():
    reg = MetricsRegistry(enabled=True)
    with pytest.raises(RuntimeError):
        with reg.timer("boom"):
            raise RuntimeError("kaput")
    assert reg.timer_stats("boom").count == 1


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
def test_histogram_summary():
    reg = MetricsRegistry(enabled=True)
    for v in range(1, 101):
        reg.observe("h", v)
    h = reg.snapshot()["histograms"]["h"]
    assert h["count"] == 100
    assert h["min"] == 1.0
    assert h["max"] == 100.0
    assert h["mean"] == pytest.approx(50.5)
    assert 40 <= h["p50"] <= 60
    assert 90 <= h["p95"] <= 100


def test_histogram_sample_cap_keeps_exact_moments():
    reg = MetricsRegistry(enabled=True)
    n = MAX_HISTOGRAM_SAMPLES + 100
    for v in range(n):
        reg.observe("big", v)
    h = reg.snapshot()["histograms"]["big"]
    assert h["count"] == n
    assert h["max"] == float(n - 1)
    assert h["total"] == pytest.approx(n * (n - 1) / 2)


# ----------------------------------------------------------------------
# disabled-mode no-op behaviour
# ----------------------------------------------------------------------
def test_disabled_registry_records_nothing():
    reg = MetricsRegistry()
    reg.add("a")
    reg.observe("h", 1.0)
    with reg.timer("t"):
        pass
    assert reg.snapshot() == {
        "counters": {}, "timers": {}, "histograms": {}
    }


def test_disabled_timer_is_shared_noop_object():
    reg = MetricsRegistry()
    assert reg.timer("a") is reg.timer("b")
    assert reg.timer("a") is _NULL_TIMER


def test_scope_enables_and_restores():
    reg = MetricsRegistry()
    with reg.scope():
        assert reg.enabled
        reg.add("inside")
    assert not reg.enabled
    reg.add("outside")
    assert reg.counter_value("inside") == 1
    assert reg.counter_value("outside") == 0


def test_scope_restores_on_exception():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        with reg.scope():
            raise ValueError("boom")
    assert not reg.enabled


def test_scope_nested_restores_enabled_state():
    reg = MetricsRegistry(enabled=True)
    with reg.scope(False):
        assert not reg.enabled
    assert reg.enabled


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def test_json_round_trip():
    reg = MetricsRegistry(enabled=True)
    reg.add("count", 3)
    reg.add("weight", 1.5)
    with reg.timer("t"):
        pass
    reg.observe("h", 2.0)
    reg.observe("h", 4.0)
    text = reg.to_json()
    assert snapshot_from_json(text) == reg.snapshot()
    # and the snapshot itself survives a json round trip exactly
    assert json.loads(json.dumps(reg.snapshot())) == reg.snapshot()


def test_snapshot_from_json_rejects_malformed_documents():
    with pytest.raises(ValueError):
        snapshot_from_json("[1, 2, 3]")
    with pytest.raises(ValueError):
        snapshot_from_json('{"counters": {}}')


def test_reset_clears_but_keeps_switch():
    reg = MetricsRegistry(enabled=True)
    reg.add("a")
    reg.reset()
    assert reg.enabled
    assert reg.snapshot() == {
        "counters": {}, "timers": {}, "histograms": {}
    }


# ----------------------------------------------------------------------
# the process-wide registry
# ----------------------------------------------------------------------
def test_global_registry_identity():
    assert get_registry() is OBS
    assert isinstance(OBS, MetricsRegistry)
    assert not OBS.enabled  # dormant by default


def test_instrumented_build_populates_global_registry(small_charminar):
    from repro.eval import build_estimator
    from repro.workload import range_queries

    with OBS.scope():
        est = build_estimator(
            "Min-Skew", small_charminar, 20, n_regions=400
        )
        queries = range_queries(small_charminar, 0.05, 50, seed=1)
        est.estimate_many(queries)
        snap = OBS.snapshot()

    assert snap["counters"]["minskew.splits"] == 19
    assert snap["counters"]["minskew.heap_pops"] >= 19
    assert snap["counters"]["minskew.cells_scanned"] > 0
    assert snap["counters"]["estimator.batch_queries"] == 50
    assert snap["timers"]["minskew.partition"]["count"] == 1
    assert snap["timers"]["estimate.Min-Skew"]["count"] == 1
    # stage timers nest inside the whole-partition timer
    stages = (
        snap["timers"]["minskew.initial_grid"]["total_s"]
        + snap["timers"]["minskew.greedy_split"]["total_s"]
        + snap["timers"]["minskew.materialise"]["total_s"]
    )
    assert stages <= snap["timers"]["minskew.partition"]["total_s"]


def test_instrumentation_silent_when_disabled(small_charminar):
    from repro.eval import build_estimator

    assert not OBS.enabled
    build_estimator("Min-Skew", small_charminar, 10, n_regions=256)
    assert OBS.snapshot() == {
        "counters": {}, "timers": {}, "histograms": {}
    }

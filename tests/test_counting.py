"""Tests for the exact-counting substrates: Fenwick tree, dominance
counting, brute force, and the inclusion–exclusion oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import (
    ExactCountOracle,
    FenwickTree,
    brute_force_counts,
    dominance_count,
)
from repro.geometry import Rect, RectSet

from .test_rtree_rstar import random_rectset


class TestFenwick:
    def test_empty(self):
        t = FenwickTree(0)
        assert t.prefix_sum(0) == 0
        assert t.total() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_out_of_range_add(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4)
        with pytest.raises(IndexError):
            t.add(-1)

    def test_prefix_sums(self):
        t = FenwickTree(10)
        for i in range(10):
            t.add(i, i)
        for k in range(11):
            assert t.prefix_sum(k) == sum(range(k))

    def test_prefix_beyond_size_clamps(self):
        t = FenwickTree(3)
        t.add(0)
        t.add(2)
        assert t.prefix_sum(100) == 2

    def test_range_sum(self):
        t = FenwickTree(8)
        for i in range(8):
            t.add(i, 1)
        assert t.range_sum(2, 5) == 3

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=60),
           st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_matches_cumsum(self, updates, k):
        size = 16
        t = FenwickTree(size)
        reference = np.zeros(size, dtype=int)
        for idx in updates:
            t.add(idx, 1)
            reference[idx] += 1
        assert t.prefix_sum(k) == reference[: min(k, size)].sum()


class TestDominance:
    def test_empty_inputs(self):
        empty = np.array([])
        out = dominance_count(empty, empty, np.array([1.0]),
                              np.array([1.0]))
        assert out.tolist() == [0]
        out = dominance_count(np.array([1.0]), np.array([1.0]),
                              empty, empty)
        assert out.shape == (0,)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dominance_count(np.array([1.0]), np.array([1.0, 2.0]),
                            np.array([1.0]), np.array([1.0]))

    def test_strictness(self):
        # a point exactly at the query threshold is NOT dominated
        px = np.array([1.0])
        py = np.array([1.0])
        assert dominance_count(px, py, np.array([1.0]),
                               np.array([2.0]))[0] == 0
        assert dominance_count(px, py, np.array([2.0]),
                               np.array([1.0]))[0] == 0
        assert dominance_count(px, py, np.array([1.1]),
                               np.array([1.1]))[0] == 1

    def test_duplicates(self):
        px = np.array([0.0, 0.0, 0.0])
        py = np.array([0.0, 0.0, 0.0])
        out = dominance_count(px, py, np.array([1.0]), np.array([1.0]))
        assert out[0] == 3

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, seed):
        gen = np.random.default_rng(seed)
        n, q = int(gen.integers(1, 80)), int(gen.integers(1, 40))
        px, py = gen.integers(0, 20, n) * 1.0, gen.integers(0, 20, n) * 1.0
        qx, qy = gen.integers(0, 20, q) * 1.0, gen.integers(0, 20, q) * 1.0
        fast = dominance_count(px, py, qx, qy)
        slow = [
            int(((px < qx[j]) & (py < qy[j])).sum()) for j in range(q)
        ]
        assert fast.tolist() == slow


class TestBruteForce:
    def test_empty_data(self):
        queries = RectSet.from_centers([1.0], [1.0], [1.0], [1.0])
        out = brute_force_counts(RectSet.empty(), queries)
        assert out.tolist() == [0]

    def test_empty_queries(self):
        data = RectSet.from_centers([1.0], [1.0], [1.0], [1.0])
        assert brute_force_counts(data, RectSet.empty()).shape == (0,)

    def test_invalid_chunk(self, mixed_rects):
        with pytest.raises(ValueError):
            brute_force_counts(mixed_rects, mixed_rects, chunk_size=0)

    def test_chunking_irrelevant(self, mixed_rects):
        queries = random_rectset(100, seed=20, extent=1_000)
        a = brute_force_counts(mixed_rects, queries, chunk_size=7)
        b = brute_force_counts(mixed_rects, queries, chunk_size=1_000)
        np.testing.assert_array_equal(a, b)

    def test_against_scalar_loop(self, mixed_rects):
        queries = random_rectset(50, seed=21, extent=1_000)
        out = brute_force_counts(mixed_rects, queries)
        for j, q in enumerate(queries):
            assert out[j] == mixed_rects.count_intersecting(q)


class TestOracle:
    def test_matches_bruteforce_random(self):
        data = random_rectset(3_000, seed=22)
        queries = random_rectset(400, seed=23, max_side=300.0)
        expected = brute_force_counts(data, queries)
        got = ExactCountOracle(data).counts(queries)
        np.testing.assert_array_equal(got, expected)

    def test_matches_bruteforce_degenerate(self, mixed_rects):
        """Segments and points in the data; points among the queries."""
        gen = np.random.default_rng(24)
        q_coords = np.column_stack(
            [gen.uniform(0, 1_000, 60)] * 2
            + [gen.uniform(0, 1_000, 60)] * 2
        )
        q_coords = np.column_stack(
            (
                np.minimum(q_coords[:, 0], q_coords[:, 2]),
                np.minimum(q_coords[:, 1], q_coords[:, 3]),
                np.maximum(q_coords[:, 0], q_coords[:, 2]),
                np.maximum(q_coords[:, 1], q_coords[:, 3]),
            )
        )
        queries = RectSet(q_coords)
        expected = brute_force_counts(mixed_rects, queries)
        got = ExactCountOracle(mixed_rects).counts(queries)
        np.testing.assert_array_equal(got, expected)

    def test_touching_edges_counted(self):
        data = RectSet(np.array([[0.0, 0.0, 1.0, 1.0]]))
        queries = RectSet(np.array([[1.0, 1.0, 2.0, 2.0]]))
        assert ExactCountOracle(data).counts(queries)[0] == 1

    def test_full_space(self):
        data = random_rectset(500, seed=25)
        queries = RectSet(np.array([data.mbr().as_tuple()]))
        assert ExactCountOracle(data).counts(queries)[0] == 500

    def test_empty_data(self):
        oracle = ExactCountOracle(RectSet.empty())
        queries = RectSet(np.array([[0.0, 0.0, 1.0, 1.0]]))
        assert oracle.counts(queries)[0] == 0

    def test_empty_queries(self):
        oracle = ExactCountOracle(random_rectset(10, seed=26))
        assert oracle.counts(RectSet.empty()).shape == (0,)

    @given(st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_random_exactness(self, seed):
        gen = np.random.default_rng(seed)
        n, q = int(gen.integers(1, 120)), int(gen.integers(1, 50))
        # integer coords make exact boundary coincidences common
        data = RectSet.from_centers(
            gen.integers(0, 50, n).astype(float),
            gen.integers(0, 50, n).astype(float),
            gen.integers(0, 10, n).astype(float) * 2,
            gen.integers(0, 10, n).astype(float) * 2,
        )
        queries = RectSet.from_centers(
            gen.integers(0, 50, q).astype(float),
            gen.integers(0, 50, q).astype(float),
            gen.integers(0, 20, q).astype(float) * 2,
            gen.integers(0, 20, q).astype(float) * 2,
        )
        np.testing.assert_array_equal(
            ExactCountOracle(data).counts(queries),
            brute_force_counts(data, queries),
        )

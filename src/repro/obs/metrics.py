"""Lightweight metrics: named counters, wall-clock timers, histograms.

The estimator service's hot paths (Min-Skew construction, R*-tree
builds, batched estimation, the exact-count oracle) are instrumented
against one process-wide :class:`MetricsRegistry` (:data:`OBS`).  The
registry is **disabled by default** and every instrumentation point is
written so that the disabled path costs a single attribute check:

* ``OBS.add(name)`` returns immediately when disabled;
* ``OBS.timer(name)`` returns a shared no-op context manager when
  disabled (no allocation, no clock read);
* inner loops never call the registry per element — call sites
  accumulate plain local integers and report one ``add`` per batch.

Enable collection around a region of interest with::

    from repro.obs import OBS

    with OBS.scope():                  # enable, restore on exit
        est = build_estimator("Min-Skew", data, 100)
        est.estimate_many(queries)
    print(OBS.to_json(indent=2))

Metric names are dotted strings (``"minskew.splits"``,
``"estimate.Min-Skew"``); :meth:`MetricsRegistry.snapshot` returns a
plain JSON-serialisable dict grouped by kind, which is what the
``repro-spatial bench`` harness embeds in ``BENCH_<name>.json``.

The registry is not thread-safe; shard per worker and merge snapshots
when parallelising.
"""

from __future__ import annotations

import functools
import json
import time
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "CounterStat",
    "TimerStat",
    "HistogramStat",
    "MetricsRegistry",
    "OBS",
    "get_registry",
    "snapshot_from_json",
]

#: Histogram sample retention cap; beyond it only the moments (count,
#: total, min, max) stay exact and percentiles describe the first
#: ``MAX_HISTOGRAM_SAMPLES`` observations.
MAX_HISTOGRAM_SAMPLES = 4096


class CounterStat:
    """A monotonically accumulated numeric value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def add(self, delta: float) -> None:
        self.value += delta


class TimerStat:
    """Aggregated wall-clock durations of one named code region."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    def as_dict(self) -> Dict[str, Any]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "mean_s": mean,
        }


class HistogramStat:
    """Distribution of observed values (exact moments, capped samples)."""

    __slots__ = ("count", "total", "min", "max", "_samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < MAX_HISTOGRAM_SAMPLES:
            self._samples.append(value)

    def _percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = int(round(q * (len(ordered) - 1)))
        return ordered[idx]

    def as_dict(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "p50": self._percentile(0.50),
            "p95": self._percentile(0.95),
        }


class _NullTimer:
    """Shared no-op context manager returned while metrics are off."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timing:
    """One live timing of a :class:`TimerStat` region (reentrant-safe:
    every ``with`` block gets its own instance, so a timer name may be
    nested and each level records its full elapsed time)."""

    __slots__ = ("_stat", "_start")

    def __init__(self, stat: TimerStat) -> None:
        self._stat = stat
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._stat.record(time.perf_counter() - self._start)
        return False


class _Scope:
    """Context manager flipping a registry's enabled flag, restoring
    the previous state (and optionally the collected metrics) on exit."""

    __slots__ = ("_registry", "_on", "_previous")

    def __init__(self, registry: "MetricsRegistry", on: bool) -> None:
        self._registry = registry
        self._on = on
        self._previous = False

    def __enter__(self) -> "MetricsRegistry":
        self._previous = self._registry.enabled
        self._registry.enable(self._on)
        return self._registry

    def __exit__(self, *exc: object) -> bool:
        self._registry.enable(self._previous)
        return False


class MetricsRegistry:
    """Named counters, timers, and histograms behind one on/off switch.

    Parameters
    ----------
    enabled:
        Start collecting immediately (default off — the library-wide
        :data:`OBS` instance stays dormant until a harness opts in).
    """

    __slots__ = ("_enabled", "_counters", "_timers", "_histograms")

    def __init__(self, *, enabled: bool = False) -> None:
        self._enabled = enabled
        self._counters: Dict[str, CounterStat] = {}
        self._timers: Dict[str, TimerStat] = {}
        self._histograms: Dict[str, HistogramStat] = {}

    # ------------------------------------------------------------------
    # switch
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, on: bool = True) -> None:
        self._enabled = on

    def disable(self) -> None:
        self._enabled = False

    def scope(self, on: bool = True) -> _Scope:
        """``with registry.scope():`` — enable within the block only."""
        return _Scope(self, on)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` into counter ``name`` (no-op when off)."""
        if not self._enabled:
            return
        stat = self._counters.get(name)
        if stat is None:
            stat = self._counters[name] = CounterStat()
        stat.add(value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (no-op when off)."""
        if not self._enabled:
            return
        stat = self._histograms.get(name)
        if stat is None:
            stat = self._histograms[name] = HistogramStat()
        stat.observe(value)

    def timer(self, name: str) -> Union[_NullTimer, _Timing]:
        """Context manager timing a region into timer ``name``.

        Disabled registries return one shared no-op object, so call
        sites never pay for allocation or a clock read.
        """
        if not self._enabled:
            return _NULL_TIMER
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        return _Timing(stat)

    def timed(
        self, name: str
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator timing every call of the wrapped function."""

        def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self._enabled:
                    return func(*args, **kwargs)
                with self.timer(name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        stat = self._counters.get(name)
        return stat.value if stat is not None else 0

    def timer_stats(self, name: str) -> Optional[TimerStat]:
        return self._timers.get(name)

    def histogram_stats(self, name: str) -> Optional[HistogramStat]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """All collected metrics as a JSON-serialisable dict."""
        return {
            "counters": {
                name: stat.value
                for name, stat in sorted(self._counters.items())
            },
            "timers": {
                name: stat.as_dict()
                for name, stat in sorted(self._timers.items())
            },
            "histograms": {
                name: stat.as_dict()
                for name, stat in sorted(self._histograms.items())
            },
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge path for parallel sweeps: each worker process runs
        its own registry, ships :meth:`snapshot` home with its results,
        and the parent merges.  Counters and timer count/total/min/max
        merge exactly; histograms merge by moments only (count, total,
        min, max — the raw samples stay in the worker, so percentiles
        of a merged histogram describe just the locally observed
        values).  Merging is unconditional — an empty snapshot is a
        no-op, and the enabled flag gates *collection*, not accounting.
        """
        for name, value in snapshot.get("counters", {}).items():
            stat = self._counters.get(name)
            if stat is None:
                stat = self._counters[name] = CounterStat()
            stat.add(value)
        for name, tdict in snapshot.get("timers", {}).items():
            if not tdict.get("count"):
                continue
            tstat = self._timers.get(name)
            if tstat is None:
                tstat = self._timers[name] = TimerStat()
            tstat.count += int(tdict["count"])
            tstat.total += float(tdict["total_s"])
            tstat.min = min(tstat.min, float(tdict["min_s"]))
            tstat.max = max(tstat.max, float(tdict["max_s"]))
        for name, hdict in snapshot.get("histograms", {}).items():
            if not hdict.get("count"):
                continue
            hstat = self._histograms.get(name)
            if hstat is None:
                hstat = self._histograms[name] = HistogramStat()
            hstat.count += int(hdict["count"])
            hstat.total += float(hdict["total"])
            hstat.min = min(hstat.min, float(hdict["min"]))
            hstat.max = max(hstat.max, float(hdict["max"]))

    def reset(self) -> None:
        """Drop all collected metrics (the enabled flag is unchanged)."""
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return (
            f"MetricsRegistry({state}, counters={len(self._counters)}, "
            f"timers={len(self._timers)}, "
            f"histograms={len(self._histograms)})"
        )


def snapshot_from_json(text: str) -> Dict[str, Any]:
    """Parse a snapshot produced by :meth:`MetricsRegistry.to_json`.

    Validates the top-level shape so corrupted artifacts fail loudly
    instead of flowing into regression comparisons.
    """
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError("metrics snapshot must be a JSON object")
    for section in ("counters", "timers", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            raise ValueError(
                f"metrics snapshot is missing the {section!r} section"
            )
    return doc


#: The process-wide registry every instrumented module reports to.
OBS = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` (:data:`OBS`)."""
    return OBS

"""The ``BENCH_<name>.json`` artifact schema.

Every ``repro-spatial bench`` run emits one machine-readable document:
per-stage wall-clock timings, hot-path counters, and accuracy summaries
for every technique on every benchmark dataset, plus a measurement of
the instrumentation's own overhead.  Future PRs compare their run
against the committed baseline, so the format is pinned here as a JSON
Schema (draft-07) and validated on every write.

:func:`validate_bench` uses the ``jsonschema`` package when it is
importable and otherwise falls back to a structural check of the same
constraints, so validation works in minimal environments too.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["BENCH_SCHEMA", "BenchSchemaError", "validate_bench"]

#: Bump when the artifact layout changes incompatibly.
SCHEMA_VERSION = 1

_TIMER_SCHEMA = {
    "type": "object",
    "required": ["count", "total_s", "min_s", "max_s", "mean_s"],
    "properties": {
        "count": {"type": "integer", "minimum": 0},
        "total_s": {"type": "number", "minimum": 0},
        "min_s": {"type": "number", "minimum": 0},
        "max_s": {"type": "number", "minimum": 0},
        "mean_s": {"type": "number", "minimum": 0},
    },
}

_METRICS_SCHEMA = {
    "type": "object",
    "required": ["counters", "timers", "histograms"],
    "properties": {
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "timers": {
            "type": "object",
            "additionalProperties": _TIMER_SCHEMA,
        },
        "histograms": {"type": "object"},
    },
}

_ACCURACY_SCHEMA = {
    "type": "object",
    "required": [
        "average_relative_error",
        "mean_per_query_error",
        "median_per_query_error",
        "rmse",
        "n_queries",
    ],
    "properties": {
        "average_relative_error": {"type": "number", "minimum": 0},
        "mean_per_query_error": {"type": "number", "minimum": 0},
        "median_per_query_error": {"type": "number", "minimum": 0},
        "rmse": {"type": "number", "minimum": 0},
        "n_queries": {"type": "integer", "minimum": 1},
    },
}

_LIVE_SCHEMA = {
    "type": "object",
    "required": [
        "ops",
        "queries",
        "inserts",
        "deletes",
        "refreshes",
        "final_epoch",
        "final_n",
        "cache_flushes",
        "estimator_rebuilds",
        "index_rebuilds",
        "replay_seconds",
        "live_matches",
    ],
    "properties": {
        "ops": {"type": "integer", "minimum": 1},
        "queries": {"type": "integer", "minimum": 0},
        "inserts": {"type": "integer", "minimum": 0},
        "deletes": {"type": "integer", "minimum": 0},
        "refreshes": {"type": "integer", "minimum": 0},
        "final_epoch": {"type": "integer", "minimum": 0},
        "final_n": {"type": "integer", "minimum": 1},
        "cache_flushes": {"type": "integer", "minimum": 0},
        "estimator_rebuilds": {"type": "integer", "minimum": 0},
        "index_rebuilds": {"type": "integer", "minimum": 0},
        "replay_seconds": {"type": "number", "minimum": 0},
        "live_matches": {"type": "boolean"},
    },
}

_INT_LIST_SCHEMA = {
    "type": "array",
    "items": {"type": "integer", "minimum": 0},
}

_SHARDED_SCHEMA = {
    "type": "object",
    "required": [
        "n_shards",
        "workers",
        "shard_sizes",
        "shard_buckets",
        "fanout",
        "skipped",
        "subqueries",
        "fanout_rate",
        "avg_shards_per_query",
        "single_engine_seconds",
        "replay_seconds",
        "ops",
        "mutations",
        "owner_only_invalidation",
        "shard_epoch_bumps",
        "routed_mutations",
        "sharded_matches",
    ],
    "properties": {
        "n_shards": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 1},
        "shard_sizes": _INT_LIST_SCHEMA,
        "shard_buckets": _INT_LIST_SCHEMA,
        "fanout": {"type": "integer", "minimum": 0},
        "skipped": {"type": "integer", "minimum": 0},
        "subqueries": {"type": "integer", "minimum": 0},
        "fanout_rate": {"type": "number", "minimum": 0},
        "avg_shards_per_query": {"type": "number", "minimum": 0},
        "single_engine_seconds": {"type": "number", "minimum": 0},
        "replay_seconds": {"type": "number", "minimum": 0},
        "ops": {"type": "integer", "minimum": 0},
        "mutations": {"type": "integer", "minimum": 0},
        "owner_only_invalidation": {"type": "boolean"},
        "shard_epoch_bumps": _INT_LIST_SCHEMA,
        "routed_mutations": {"type": "integer", "minimum": 0},
        "sharded_matches": {"type": "boolean"},
        # optional (newer artifacts): the worker-kill recovery cell
        "recovery": {
            "type": "object",
            "required": [
                "requests",
                "survived",
                "kills",
                "respawns",
                "replayed_ops",
                "degraded_fraction",
                "recovered_matches",
            ],
            "properties": {
                "requests": {"type": "integer", "minimum": 0},
                "survived": {"type": "integer", "minimum": 0},
                "kills": {"type": "integer", "minimum": 0},
                "respawns": {"type": "integer", "minimum": 0},
                "replayed_ops": {"type": "integer", "minimum": 0},
                "degraded_fraction": {
                    "type": "number", "minimum": 0, "maximum": 1,
                },
                "recovered_matches": {"type": "boolean"},
            },
        },
    },
}

_SERVER_SCHEMA = {
    "type": "object",
    "required": [
        "concurrency",
        "max_batch",
        "wait_steps",
        "window",
        "requests",
        "batches",
        "avg_batch",
        "shed",
        "batched_seconds",
        "batched_qps",
        "p50_ms",
        "p99_ms",
        "single_seconds",
        "single_qps",
        "single_p50_ms",
        "single_p99_ms",
        "speedup",
        "server_matches",
    ],
    "properties": {
        "concurrency": {"type": "integer", "minimum": 1},
        "max_batch": {"type": "integer", "minimum": 1},
        "wait_steps": {"type": "integer", "minimum": 0},
        "window": {"type": "integer", "minimum": 1},
        "requests": {"type": "integer", "minimum": 1},
        "batches": {"type": "integer", "minimum": 0},
        "avg_batch": {"type": "number", "minimum": 0},
        "shed": {"type": "integer", "minimum": 0},
        "batched_seconds": {"type": "number", "minimum": 0},
        "batched_qps": {"type": "number", "minimum": 0},
        "p50_ms": {"type": "number", "minimum": 0},
        "p99_ms": {"type": "number", "minimum": 0},
        "single_seconds": {"type": "number", "minimum": 0},
        "single_qps": {"type": "number", "minimum": 0},
        "single_p50_ms": {"type": "number", "minimum": 0},
        "single_p99_ms": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
        "server_matches": {"type": "boolean"},
    },
}

_TUNED_SCHEMA = {
    "type": "object",
    "required": [
        "ops",
        "queries",
        "inserts",
        "deletes",
        "tuning_passes",
        "tuning_pairs",
        "feedback_observed",
        "feedback_scored",
        "final_epoch",
        "final_n",
        "n_buckets_static",
        "n_buckets_tuned",
        "count_conserved",
        "are_static",
        "are_tuned",
        "improvement",
        "replay_seconds",
        "tuned_matches",
    ],
    "properties": {
        "ops": {"type": "integer", "minimum": 1},
        "queries": {"type": "integer", "minimum": 0},
        "inserts": {"type": "integer", "minimum": 0},
        "deletes": {"type": "integer", "minimum": 0},
        "tuning_passes": {"type": "integer", "minimum": 0},
        "tuning_pairs": {"type": "integer", "minimum": 0},
        "feedback_observed": {"type": "integer", "minimum": 0},
        "feedback_scored": {"type": "integer", "minimum": 0},
        "final_epoch": {"type": "integer", "minimum": 0},
        "final_n": {"type": "integer", "minimum": 1},
        "n_buckets_static": {"type": "integer", "minimum": 1},
        "n_buckets_tuned": {"type": "integer", "minimum": 1},
        "count_conserved": {"type": "boolean"},
        "are_static": {"type": "number", "minimum": 0},
        "are_tuned": {"type": "number", "minimum": 0},
        "improvement": {"type": "number"},
        "replay_seconds": {"type": "number", "minimum": 0},
        "tuned_matches": {"type": "boolean"},
    },
}

_TECHNIQUE_SCHEMA = {
    "type": "object",
    "required": [
        "technique",
        "build_seconds",
        "estimate_seconds",
        "size_words",
        "accuracy",
        "metrics",
    ],
    "properties": {
        "technique": {"type": "string"},
        "build_seconds": {"type": "number", "minimum": 0},
        "estimate_seconds": {"type": "number", "minimum": 0},
        "size_words": {"type": "integer", "minimum": 0},
        "accuracy": _ACCURACY_SCHEMA,
        "metrics": _METRICS_SCHEMA,
        # optional serving-engine fields (present when the bench ran
        # with engine="batch"; additions are backward compatible)
        "scalar_seconds": {"type": "number", "minimum": 0},
        "engine_seconds": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
        "scalar_matches": {"type": "boolean"},
        # optional live-serving fields (present when the bench ran
        # with engine="live")
        "live": _LIVE_SCHEMA,
        # optional sharded scatter-gather fields (present when the
        # bench ran with engine="sharded"): shard layout, fan-out
        # accounting, and the bit-for-bit differential gate
        "sharded": _SHARDED_SCHEMA,
        # optional micro-batching front-door fields (present when the
        # bench ran with engine="server"): client-observed latency
        # percentiles, qps, and the batched-vs-single-dispatch speedup
        "server": _SERVER_SCHEMA,
        # optional query-feedback self-tuning fields (present when the
        # bench ran with engine="tuned"): the ARE-vs-static
        # differential on a drifting live workload plus the
        # bit-for-bit rebuild gate
        "tuned": _TUNED_SCHEMA,
    },
}

_DATASET_SCHEMA = {
    "type": "object",
    "required": [
        "dataset",
        "n",
        "n_queries",
        "qsize",
        "truth_seconds",
        "techniques",
    ],
    "properties": {
        "dataset": {"type": "string"},
        "n": {"type": "integer", "minimum": 1},
        "n_queries": {"type": "integer", "minimum": 1},
        "qsize": {"type": "number", "exclusiveMinimum": 0},
        "truth_seconds": {"type": "number", "minimum": 0},
        "techniques": {
            "type": "array",
            "minItems": 1,
            "items": _TECHNIQUE_SCHEMA,
        },
    },
}

_OVERHEAD_SCHEMA = {
    "type": "object",
    "required": [
        "disabled_counter_ns",
        "disabled_timer_ns",
        "enabled_counter_ns",
        "enabled_timer_ns",
        "minskew_disabled_s",
        "minskew_enabled_s",
    ],
    "additionalProperties": {"type": "number", "minimum": 0},
}

BENCH_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro bench artifact",
    "type": "object",
    "required": [
        "schema_version",
        "name",
        "created_unix",
        "config",
        "environment",
        "overhead",
        "datasets",
        "total_seconds",
    ],
    "properties": {
        "schema_version": {"const": SCHEMA_VERSION},
        "name": {"type": "string", "minLength": 1},
        "created_unix": {"type": "number", "minimum": 0},
        "config": {
            "type": "object",
            "required": ["n_buckets", "n_regions", "n_queries", "qsize"],
        },
        "environment": {
            "type": "object",
            "required": ["python", "numpy", "platform"],
        },
        "overhead": _OVERHEAD_SCHEMA,
        "datasets": {
            "type": "array",
            "minItems": 1,
            "items": _DATASET_SCHEMA,
        },
        "total_seconds": {"type": "number", "minimum": 0},
    },
}


class BenchSchemaError(ValueError):
    """A bench artifact does not conform to :data:`BENCH_SCHEMA`."""


def validate_bench(doc: Any) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` is a valid
    bench artifact; returns None on success."""
    try:
        import jsonschema
    except ImportError:
        _validate_manually(doc)
        return
    try:
        jsonschema.validate(doc, BENCH_SCHEMA)
    except jsonschema.ValidationError as exc:
        raise BenchSchemaError(
            f"bench artifact failed schema validation: {exc.message}"
        ) from exc


# ----------------------------------------------------------------------
# dependency-free fallback validator (same constraints, plainer errors)
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(
            f"bench artifact failed schema validation: {message}"
        )


def _check_object(doc: Any, schema: Dict[str, Any], path: str) -> None:
    _require(isinstance(doc, dict), f"{path} must be an object")
    for key in schema.get("required", ()):
        _require(key in doc, f"{path}.{key} is missing")
    for key, sub in schema.get("properties", {}).items():
        if key in doc:
            _check_value(doc[key], sub, f"{path}.{key}")


def _check_value(value: Any, schema: Dict[str, Any], path: str) -> None:
    if "const" in schema:
        _require(value == schema["const"],
                 f"{path} must equal {schema['const']!r}")
        return
    kind = schema.get("type")
    if kind == "object":
        _check_object(value, schema, path)
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, sub in value.items():
                if key not in schema.get("properties", {}):
                    _check_value(sub, extra, f"{path}.{key}")
    elif kind == "array":
        _require(isinstance(value, list), f"{path} must be an array")
        _require(len(value) >= schema.get("minItems", 0),
                 f"{path} has too few items")
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                _check_value(item, items, f"{path}[{i}]")
    elif kind == "integer":
        _require(isinstance(value, int) and not isinstance(value, bool),
                 f"{path} must be an integer")
        _check_bounds(value, schema, path)
    elif kind == "number":
        _require(isinstance(value, (int, float))
                 and not isinstance(value, bool),
                 f"{path} must be a number")
        _check_bounds(value, schema, path)
    elif kind == "string":
        _require(isinstance(value, str), f"{path} must be a string")
        _require(len(value) >= schema.get("minLength", 0),
                 f"{path} is too short")
    elif kind == "boolean":
        _require(isinstance(value, bool), f"{path} must be a boolean")


def _check_bounds(value: Any, schema: Dict[str, Any], path: str) -> None:
    if "minimum" in schema:
        _require(value >= schema["minimum"],
                 f"{path} must be >= {schema['minimum']}")
    if "exclusiveMinimum" in schema:
        _require(value > schema["exclusiveMinimum"],
                 f"{path} must be > {schema['exclusiveMinimum']}")


def _validate_manually(doc: Any) -> None:
    _check_value(doc, BENCH_SCHEMA, "$")

"""The ``repro-spatial bench`` regression workload.

Runs a fixed benchmark — a Charminar-style synthetic set and a simulated
NJ-Road set, every estimator in :data:`repro.eval.ALL_TECHNIQUES` — with
metrics collection enabled, and emits one ``BENCH_<name>.json`` artifact
(validated against :data:`repro.obs.schema.BENCH_SCHEMA`) containing:

* per-technique build and batch-estimation wall-clock times,
* the hot-path counters and stage timers the run produced
  (Min-Skew splits/heap traffic, R*-tree node accesses, oracle and
  estimator batch sizes, ...),
* the accuracy summary of every technique on the shared workload,
* a measurement of the metrics layer's own overhead, enabled and
  disabled, so the "near-zero when off" claim is checked by CI rather
  than asserted in prose.

The quick configuration (``repro-spatial bench --quick``) finishes in
well under a minute and is the baseline every perf PR compares against;
``--full`` runs the same pipeline at paper scale.

Two resilience knobs ride on top of the plain run:

* ``checkpoint_dir`` — every (dataset, technique) cell is persisted to a
  :class:`repro.storage.CheckpointStore` as soon as it finishes, so a
  run killed mid-way resumes from the last completed cell instead of
  starting over.  The store is fingerprinted by the benchmark config, so
  stale checkpoints from a different configuration are rejected rather
  than silently mixed in.
* ``deterministic`` — zeroes every wall-clock field (timestamps, build
  and estimate times, overhead probes, stage timers), leaving only the
  seed-driven values.  A killed-and-resumed deterministic run is
  byte-identical to an uninterrupted one, which is what the resume test
  asserts.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np
import numpy.typing as npt

from ..core.minskew import MinSkewPartitioner
from ..geometry import RectSet
from ..data import make_dataset
from ..eval import (
    ALL_TECHNIQUES,
    BUCKET_TECHNIQUES,
    ExperimentRunner,
    build_estimator,
    build_partitioner,
)
from ..eval.metrics import error_summary
from ..storage.checkpoint import CheckpointStore, config_fingerprint
from ..storage.persist import atomic_write_text
from ..workload import live_workload, range_queries
from .metrics import OBS, MetricsRegistry
from .schema import SCHEMA_VERSION, validate_bench

__all__ = [
    "BenchConfig",
    "QUICK_CONFIG",
    "FULL_CONFIG",
    "SERVING_CONFIG",
    "LIVE_CONFIG",
    "SERVER_CONFIG",
    "TUNING_CONFIG",
    "measure_overhead",
    "run_bench",
    "write_bench",
]


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark workload definition.

    ``datasets`` pairs registry names with sizes; every technique in
    ``techniques`` is built once per dataset and evaluated on a shared
    query workload.
    """

    name: str
    datasets: Tuple[Tuple[str, int], ...]
    n_buckets: int = 50
    n_regions: int = 2_500
    n_queries: int = 300
    qsize: float = 0.05
    query_seed: int = 42
    techniques: Tuple[str, ...] = tuple(ALL_TECHNIQUES)
    #: ``"scalar"`` estimates with the plain per-technique batch call;
    #: ``"batch"`` serves through :class:`repro.serving
    #: .BatchServingEngine` and additionally times the scalar
    #: one-query-at-a-time loop, recording the speedup per technique;
    #: ``"live"`` replays an interleaved query/insert/delete stream
    #: against a maintained histogram served through the engine and
    #: checks the staleness contract (see ``live_matches``);
    #: ``"sharded"`` serves through the scatter-gather
    #: :class:`repro.serving.ShardRouter` over ``n_shards`` Min-Skew
    #: shard boxes and differentially gates the answers against the
    #: single-engine union reference (see ``sharded_matches``);
    #: ``"server"`` serves through the asyncio micro-batching
    #: :class:`repro.serving.FrontDoor` with ``concurrency``
    #: closed-loop TCP clients, records client-observed p50/p99
    #: latency and qps for the batched and the ``max_batch=1``
    #: single-dispatch runs, and differentially gates both against
    #: the direct engine (see ``server_matches``);
    #: ``"tuned"`` replays a *drifting* live stream against a
    #: feedback-tuned histogram and an identically budgeted static
    #: control, recording the ARE differential and the bit-for-bit
    #: rebuild gate (see ``tuned_matches``).
    engine: str = "scalar"
    #: Worker processes for the per-technique cells (1 = in-process).
    workers: int = 1
    #: Length of the interleaved maintenance stream (``engine="live"``
    #: and ``engine="sharded"``).
    live_ops: int = 0
    #: Seed of the interleaved stream.
    live_seed: int = 43
    #: Drift threshold of the maintained histograms — low enough that
    #: the default stream actually triggers refreshes (full summary
    #: rebuilds), so the bench exercises every epoch-bump source.
    live_drift: float = 0.02
    #: Shard count of the scatter-gather tier (``engine="sharded"``).
    n_shards: int = 4
    #: Router worker processes for the sharded tier (1 = inline).
    shard_workers: int = 1
    #: Load-generator processes of the front-door run
    #: (``engine="server"``): each drives one pipelined TCP
    #: connection of single-rect frames.
    concurrency: int = 4
    #: Micro-batch size cap of the front-door run.
    server_max_batch: int = 64
    #: Logical-wait trigger of the front-door batcher (StepClock
    #: steps a head-of-queue query may wait before a partial batch
    #: fires; 0 disables the wait trigger).
    server_wait_steps: int = 4
    #: Pipelining window per client: frames sent back to back before
    #: the client reads that window's responses.
    server_window: int = 64
    #: Deterministic per-insert translation bias of the live stream
    #: (fraction of the MBR extent per axis; ``engine="tuned"``).  The
    #: default keeps the stream byte-identical to the pre-drift one.
    live_drift_xy: Tuple[float, float] = (0.0, 0.0)
    #: Operations between feedback tuning passes (``engine="tuned"``;
    #: 0 disables tuning, leaving only the static control).
    tune_every: int = 0
    #: Hill-climbing rounds per tuning pass.
    tune_max_ops: int = 4
    #: Feedback collector stride: record every Nth served query.
    feedback_sample: int = 1
    #: Tuning passes score the most recent ``tune_window`` collected
    #: queries (accumulated across drains), not just the last drain —
    #: a broad sample keeps the hill-climber from overfitting one
    #: burst of the stream.
    tune_window: int = 2_000
    #: Operation mix of the ``engine="tuned"`` stream.  The defaults
    #: match :func:`repro.workload.live_workload`; the tuning preset
    #: raises the insert share so the biased inserts actually move
    #: the distribution within the stream's length.
    live_query_frac: float = 0.6
    live_insert_frac: float = 0.2

    def replace(self, **changes: Any) -> "BenchConfig":
        from dataclasses import replace

        return replace(self, **changes)


#: The CI baseline: small enough to finish in well under a minute.
QUICK_CONFIG = BenchConfig(
    name="quick",
    datasets=(("charminar", 6_000), ("nj_road", 6_000)),
    n_buckets=40,
    n_regions=10_000,
    n_queries=500,
)

#: Paper-scale sweep for manual runs (expect several minutes).
FULL_CONFIG = BenchConfig(
    name="full",
    datasets=(("charminar", 40_000), ("nj_road", 40_000)),
    n_buckets=100,
    n_regions=10_000,
    n_queries=1_000,
)

#: The serving-tier regression workload: the paper's 10 000-query
#: Charminar workload served through the sharded scatter-gather tier
#: (every bucket technique, Min-Skew shard boundaries), differentially
#: gated bit-for-bit against the single-engine union reference, plus a
#: live mutation stream checking that each mutation invalidates only
#: the owning shard.
SERVING_CONFIG = BenchConfig(
    name="serving",
    datasets=(("charminar", 6_000),),
    n_buckets=40,
    n_regions=10_000,
    n_queries=10_000,
    techniques=tuple(BUCKET_TECHNIQUES),
    engine="sharded",
    live_ops=500,
    n_shards=4,
)

#: The live-serving regression workload: each bucket technique is kept
#: in a :class:`~repro.core.maintenance.MaintainedHistogram`, an
#: interleaved query/insert/delete stream is replayed against it
#: through the serving engine (auto-refresh on drift), and the final
#: batch answers are checked bit-identical to a freshly built engine
#: over the same buckets — the epoch-consistency gate CI asserts.
LIVE_CONFIG = BenchConfig(
    name="live",
    datasets=(("charminar", 4_000),),
    n_buckets=40,
    n_regions=2_500,
    n_queries=500,
    techniques=("Min-Skew", "Equi-Count", "Grid"),
    engine="live",
    live_ops=800,
)

#: The front-door latency/throughput workload: the paper's 10 000-query
#: Charminar workload issued as single-rect frames by four pipelined
#: client processes against the sharded scatter-gather tier, coalesced
#: by the micro-batcher into engine batches, and compared against the
#: *same* server pinned to ``max_batch=1`` (single-query-per-call
#: dispatch).  The committed baseline is the micro-batching speedup CI
#: quotes; answers on both paths are gated bit-for-bit against the
#: direct router call (``server.server_matches``).
SERVER_CONFIG = BenchConfig(
    name="server",
    datasets=(("charminar", 6_000),),
    n_buckets=40,
    n_regions=10_000,
    n_queries=10_000,
    techniques=("Min-Skew",),
    engine="server",
    n_shards=4,
    concurrency=4,
    server_max_batch=128,
    server_window=128,
)

#: The self-tuning regression workload: a drifting live stream (every
#: insert biased toward one corner, so the hotspot migrates) is
#: replayed against two identically built Min-Skew histograms — one
#: serving through an engine with a feedback collector attached and
#: periodically re-split by :class:`repro.tuning.FeedbackTuner`, one
#: left structurally static.  Both are scored against exact ground
#: truth over the *final* data at equal bucket budget; the committed
#: baseline pins ``tuned.are_tuned`` strictly below
#: ``tuned.are_static`` (the differential CI gates on) and
#: ``tuned.tuned_matches`` (the tuned engine is bit-identical to a
#: fresh rebuild over the tuned buckets).
TUNING_CONFIG = BenchConfig(
    name="tuning",
    datasets=(("charminar", 2_000),),
    n_buckets=16,
    n_regions=2_500,
    n_queries=500,
    techniques=("Min-Skew",),
    engine="tuned",
    live_ops=6_000,
    live_drift_xy=(0.08, 0.06),
    tune_every=300,
    tune_max_ops=4,
    live_query_frac=0.5,
    live_insert_frac=0.35,
)


# ----------------------------------------------------------------------
# instrumentation overhead
# ----------------------------------------------------------------------
def _per_call_ns(action: Callable[[int], None], calls: int) -> float:
    start = time.perf_counter()
    action(calls)
    return (time.perf_counter() - start) / calls * 1e9


def measure_overhead(
    *, calls: int = 200_000, hot_path_repeats: int = 3
) -> Dict[str, float]:
    """Cost of the metrics layer itself, per call and on a hot path.

    Uses a private registry so the measurement never pollutes (or is
    polluted by) the process-wide :data:`OBS` state.  The hot-path
    numbers build the same small Min-Skew histogram with collection
    disabled and enabled (best of ``hot_path_repeats``), which is the
    end-to-end check that instrumented code costs nothing when off.
    """
    registry = MetricsRegistry(enabled=False)

    def counter_loop(n: int) -> None:
        add = registry.add
        for _ in range(n):
            add("bench.overhead")

    def timer_loop(n: int) -> None:
        timer = registry.timer
        for _ in range(n):
            with timer("bench.overhead"):
                pass

    disabled_counter = _per_call_ns(counter_loop, calls)
    disabled_timer = _per_call_ns(timer_loop, calls // 10)
    registry.enable()
    enabled_counter = _per_call_ns(counter_loop, calls)
    enabled_timer = _per_call_ns(timer_loop, calls // 10)

    data = make_dataset("charminar", 2_000)
    partitioner = MinSkewPartitioner(20, n_regions=400)

    def hot_path_seconds(enabled: bool) -> float:
        best = float("inf")
        for _ in range(hot_path_repeats):
            with OBS.scope(enabled):
                start = time.perf_counter()
                partitioner.partition(data)
                best = min(best, time.perf_counter() - start)
        return best

    return {
        "disabled_counter_ns": disabled_counter,
        "disabled_timer_ns": disabled_timer,
        "enabled_counter_ns": enabled_counter,
        "enabled_timer_ns": enabled_timer,
        "minskew_disabled_s": hot_path_seconds(False),
        "minskew_enabled_s": hot_path_seconds(True),
    }


# ----------------------------------------------------------------------
# the benchmark itself
# ----------------------------------------------------------------------
def _zero_overhead() -> Dict[str, float]:
    """Overhead section of a deterministic run (no wall-clock probes)."""
    return {
        "disabled_counter_ns": 0.0,
        "disabled_timer_ns": 0.0,
        "enabled_counter_ns": 0.0,
        "enabled_timer_ns": 0.0,
        "minskew_disabled_s": 0.0,
        "minskew_enabled_s": 0.0,
    }


def _scrub_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Zero the wall-clock fields of one technique record in place."""
    cell["build_seconds"] = 0.0
    cell["estimate_seconds"] = 0.0
    for key in ("scalar_seconds", "engine_seconds", "speedup"):
        if key in cell:
            cell[key] = 0.0
    live = cell.get("live")
    if isinstance(live, dict):
        live["replay_seconds"] = 0.0
    tuned = cell.get("tuned")
    if isinstance(tuned, dict):
        tuned["replay_seconds"] = 0.0
    metrics = cell.get("metrics")
    if isinstance(metrics, dict):
        metrics["timers"] = {}
    sharded = cell.get("sharded")
    if isinstance(sharded, dict):
        sharded["single_engine_seconds"] = 0.0
        sharded["replay_seconds"] = 0.0
    server = cell.get("server")
    if isinstance(server, dict):
        # batch composition depends on event-loop timing, so every
        # derived quantity is wall-clock-tainted except the request
        # count, the knobs, and the bit-identity verdict
        for key in (
            "batches", "avg_batch", "shed",
            "batched_seconds", "batched_qps", "p50_ms", "p99_ms",
            "single_seconds", "single_qps",
            "single_p50_ms", "single_p99_ms", "speedup",
        ):
            server[key] = 0 if key in ("batches", "shed") else 0.0
    return cell


def _bench_sharded_technique(
    technique: str,
    data: "RectSet",
    queries: "RectSet",
    truth: "npt.NDArray[np.float64]",
    config: BenchConfig,
) -> Dict[str, Any]:
    """One technique's sharded scatter-gather cell.

    The technique's partitioner runs once per shard (the bucket budget
    is apportioned by :func:`repro.serving.shard_quotas`); the query
    workload is served through a :class:`~repro.serving.ShardRouter`
    and differentially gated bit-for-bit against the
    :class:`~repro.serving.ShardUnionEstimator` single-engine
    reference (``sharded.sharded_matches``).  With ``config.live_ops``
    set, an interleaved mutation stream is then routed through the
    router and the cell records whether every mutation moved the
    owning shard's epoch *only*
    (``sharded.owner_only_invalidation``) — followed by a second
    differential gate over the post-stream state.

    The cell closes with a ``sharded.recovery`` block: a worker-kill
    chaos run (write-ahead-logged shards, SIGKILLed workers, WAL
    replay on respawn) recording request survival, respawns, replayed
    ops, the degraded-dispatch fraction, and whether the recovered
    tier matched the union reference bit-for-bit.  Every field is
    logical/deterministic, so the block is stable across machines.
    """
    from ..serving import ShardedHistogram, ShardRouter

    OBS.reset()
    start = time.perf_counter()
    sharded = ShardedHistogram.build(
        data,
        n_shards=config.n_shards,
        n_buckets=config.n_buckets,
        partitioner_factory=lambda quota: build_partitioner(
            technique, quota, n_regions=config.n_regions
        ),
        n_regions=config.n_regions,
    )
    build_seconds = time.perf_counter() - start

    router = ShardRouter(sharded, workers=config.shard_workers)
    try:
        start = time.perf_counter()
        served = router.estimate_batch(queries)
        estimate_seconds = time.perf_counter() - start
        serve_counters = dict(OBS.snapshot()["counters"])

        union = sharded.union_estimator()
        start = time.perf_counter()
        reference = union.estimate_batch(queries)
        single_engine_seconds = time.perf_counter() - start
        sharded_matches = bool(np.array_equal(served, reference))

        mutations = 0
        owner_only = True
        n_ops = 0
        replay_seconds = 0.0
        if config.live_ops > 0:
            ops = live_workload(
                data, config.qsize, config.live_ops,
                seed=config.live_seed,
            )
            n_ops = len(ops)
            start = time.perf_counter()
            for op in ops:
                if op.kind == "query":
                    router.estimate(op.rect)
                    continue
                before = sharded.epochs()
                if op.kind == "insert":
                    sid = router.insert(op.rect)
                    moved = True
                else:
                    sid, moved = router.delete(op.rect)
                mutations += 1
                after = sharded.epochs()
                for i, (b, a) in enumerate(zip(before, after)):
                    if (a != b) != (i == sid and moved):
                        owner_only = False
            replay_seconds = time.perf_counter() - start
            post = router.estimate_batch(queries)
            sharded_matches = sharded_matches and bool(
                np.array_equal(post, union.estimate_batch(queries))
            )
        size_words = int(router.size_words())
        shard_sizes = [len(s) for s in sharded.shards]
        shard_buckets = [len(s.buckets) for s in sharded.shards]
    finally:
        router.close()

    n_queries = len(queries)
    fanout = int(serve_counters.get("serving.shard.fanout", 0))
    skipped = int(serve_counters.get("serving.shard.skipped", 0))
    subqueries = int(
        serve_counters.get("serving.shard.subqueries", 0)
    )
    summary = error_summary(truth, served)
    snapshot = OBS.snapshot()
    counters = snapshot["counters"]

    # fault-tolerance cell, run after the snapshot above because the
    # harness resets the (global) OBS registry: SIGKILL workers
    # mid-stream over a fresh write-ahead-logged tier and record the
    # recovery contract (all logical/deterministic quantities —
    # nothing to scrub)
    from ..resilience.chaos import WorkerKillConfig, \
        run_worker_kill_chaos

    kill_report = run_worker_kill_chaos(
        WorkerKillConfig(
            n_shards=config.n_shards,
            n_buckets=config.n_buckets,
            n_regions=min(config.n_regions, 512),
            workers=max(2, config.shard_workers),
            n_batches=6,
            batch_size=25,
            qsize=config.qsize,
            query_seed=config.query_seed,
        ),
        data=data,
        partitioner_factory=lambda quota: build_partitioner(
            technique, quota,
            n_regions=min(config.n_regions, 512),
        ),
    )
    recovery = {
        "requests": kill_report.requests,
        "survived": kill_report.survived,
        "kills": kill_report.kills,
        "respawns": kill_report.respawns,
        "replayed_ops": kill_report.replayed_ops,
        "degraded_fraction": kill_report.degraded_fraction,
        "recovered_matches": (
            kill_report.recovered_matches
            and kill_report.digests_match
        ),
    }
    return {
        "technique": technique,
        "build_seconds": build_seconds,
        "estimate_seconds": estimate_seconds,
        "size_words": size_words,
        "accuracy": {
            "average_relative_error": summary.average_relative_error,
            "mean_per_query_error": summary.mean_per_query_error,
            "median_per_query_error": summary.median_per_query_error,
            "rmse": summary.rmse,
            "n_queries": summary.n_queries,
        },
        "metrics": snapshot,
        "sharded": {
            "n_shards": int(sharded.n_shards),
            "workers": int(config.shard_workers),
            "shard_sizes": shard_sizes,
            "shard_buckets": shard_buckets,
            "fanout": fanout,
            "skipped": skipped,
            "subqueries": subqueries,
            "fanout_rate": (
                subqueries / (n_queries * sharded.n_shards)
                if n_queries else 0.0
            ),
            "avg_shards_per_query": (
                subqueries / n_queries if n_queries else 0.0
            ),
            "single_engine_seconds": single_engine_seconds,
            "replay_seconds": replay_seconds,
            "ops": n_ops,
            "mutations": mutations,
            "owner_only_invalidation": owner_only,
            "shard_epoch_bumps": [
                int(counters.get(
                    f"serving.shard.epoch_bumps.s{i}", 0
                ))
                for i in range(sharded.n_shards)
            ],
            "routed_mutations": int(
                counters.get("serving.shard.routed_mutations", 0)
            ),
            "sharded_matches": sharded_matches,
            "recovery": recovery,
        },
    }


def _bench_live_technique(
    technique: str,
    data: "RectSet",
    queries: "RectSet",
    config: BenchConfig,
) -> Dict[str, Any]:
    """One technique's live-serving cell.

    The technique's partitioner seeds a
    :class:`~repro.core.maintenance.MaintainedHistogram`, which a
    :class:`~repro.serving.BatchServingEngine` serves through a
    :class:`~repro.estimators.MaintainedEstimator` while the
    interleaved ``live_workload`` stream mutates it (refreshing
    whenever drift crosses the histogram's threshold).  The cell's
    ``live.live_matches`` field records the staleness contract: after
    the whole stream, the engine's batch answers — cache, index, and
    kernel snapshot included — are bit-identical to a freshly built
    engine over the same buckets.  Accuracy is scored against exact
    ground truth over the *final* data, which is what the histogram
    summarises by then.
    """
    from ..core.maintenance import MaintainedHistogram
    from ..estimators import BucketEstimator, MaintainedEstimator
    from ..serving import BatchServingEngine

    OBS.reset()
    start = time.perf_counter()
    hist = MaintainedHistogram(
        build_partitioner(
            technique, config.n_buckets, n_regions=config.n_regions
        ),
        data,
        drift_threshold=config.live_drift,
    )
    build_seconds = time.perf_counter() - start

    estimator = MaintainedEstimator(hist, name=technique)
    engine = BatchServingEngine(estimator)
    ops = live_workload(
        data, config.qsize, config.live_ops, seed=config.live_seed
    )
    counts = {"query": 0, "insert": 0, "delete": 0}
    start = time.perf_counter()
    for op in ops:
        counts[op.kind] += 1
        if op.kind == "query":
            engine.estimate(op.rect)
        elif op.kind == "insert":
            hist.insert(op.rect)
        else:
            hist.delete(op.rect)
        if op.kind != "query" and hist.needs_refresh:
            hist.refresh()
    replay_seconds = time.perf_counter() - start

    start = time.perf_counter()
    served = engine.estimate_batch(queries)
    estimate_seconds = time.perf_counter() - start

    # the differential gate: a from-scratch engine over the final
    # buckets must agree bit-for-bit with the long-lived one
    fresh = BatchServingEngine(
        BucketEstimator(list(hist.buckets), name=technique)
    )
    live_matches = bool(
        np.array_equal(served, fresh.estimate_batch(queries))
    )

    final_data = hist.current_data()
    truth = ExperimentRunner(final_data).true_counts(queries)
    summary = error_summary(truth, served)
    snapshot = OBS.snapshot()
    counters = snapshot["counters"]
    return {
        "technique": technique,
        "build_seconds": build_seconds,
        "estimate_seconds": estimate_seconds,
        "size_words": int(estimator.size_words()),
        "accuracy": {
            "average_relative_error": summary.average_relative_error,
            "mean_per_query_error": summary.mean_per_query_error,
            "median_per_query_error": summary.median_per_query_error,
            "rmse": summary.rmse,
            "n_queries": summary.n_queries,
        },
        "metrics": snapshot,
        "live": {
            "ops": len(ops),
            "queries": counts["query"],
            "inserts": counts["insert"],
            "deletes": counts["delete"],
            "refreshes": int(
                counters.get("maintenance.refreshes", 0)
            ),
            "final_epoch": int(hist.epoch),
            "final_n": int(len(final_data)),
            "cache_flushes": int(
                engine.cache.flushes if engine.cache else 0
            ),
            "estimator_rebuilds": int(
                counters.get("serving.epoch.estimator_rebuilds", 0)
            ),
            "index_rebuilds": int(
                counters.get("serving.epoch.index_rebuilds", 0)
            ),
            "replay_seconds": replay_seconds,
            "live_matches": live_matches,
        },
    }


def _bench_tuned_technique(
    technique: str,
    data: "RectSet",
    config: BenchConfig,
) -> Dict[str, Any]:
    """One technique's query-feedback self-tuning cell.

    Two identically built maintained histograms replay the same
    *drifting* live stream (``config.live_drift_xy`` biases every
    insert, so the hotspot migrates instead of diffusing).  The tuned
    side serves through an engine with a
    :class:`~repro.tuning.FeedbackCollector` attached; every
    ``config.tune_every`` operations the collected queries are drained
    and a :class:`~repro.tuning.FeedbackTuner` pass re-splits the
    worst-estimating buckets (merging cold accurate neighbours to pay
    for them).  The static side answers the same queries but is never
    restructured.  Neither side auto-refreshes: the differential
    isolates what feedback tuning buys at a fixed bucket budget.

    Scoring replays the paper's query model over the *final* data —
    the drifted reality both histograms now summarise — against the
    exact counting oracle.  ``tuned.tuned_matches`` is the epoch
    contract: the long-lived tuned engine's batch answers must be
    bit-identical to a freshly built engine over the tuned buckets.
    ``tuned.count_conserved`` checks the tuned summaries still account
    for exactly the covered rows after interleaved tuning and
    maintenance.
    """
    from ..core.bucket import assign_by_center
    from ..core.maintenance import MaintainedHistogram
    from ..estimators import BucketEstimator, MaintainedEstimator
    from ..serving import BatchServingEngine
    from ..tuning import FeedbackCollector, FeedbackTuner

    OBS.reset()
    start = time.perf_counter()

    def built() -> MaintainedHistogram:
        return MaintainedHistogram(
            build_partitioner(
                technique, config.n_buckets, n_regions=config.n_regions
            ),
            data,
            drift_threshold=config.live_drift,
        )

    tuned_hist = built()
    static_hist = built()
    build_seconds = time.perf_counter() - start

    collector = FeedbackCollector(sample_every=config.feedback_sample)
    estimator = MaintainedEstimator(tuned_hist, name=technique)
    engine = BatchServingEngine(estimator, feedback=collector)
    static_engine = BatchServingEngine(
        MaintainedEstimator(static_hist, name=technique)
    )
    tuner = FeedbackTuner(tuned_hist, max_ops=config.tune_max_ops)

    ops = live_workload(
        data,
        config.qsize,
        config.live_ops,
        seed=config.live_seed,
        drift=config.live_drift_xy,
        query_frac=config.live_query_frac,
        insert_frac=config.live_insert_frac,
    )
    counts = {"query": 0, "insert": 0, "delete": 0}
    window: List["npt.NDArray[np.float64]"] = []
    start = time.perf_counter()
    for i, op in enumerate(ops, 1):
        counts[op.kind] += 1
        if op.kind == "query":
            engine.estimate(op.rect)
            static_engine.estimate(op.rect)
        elif op.kind == "insert":
            tuned_hist.insert(op.rect)
            static_hist.insert(op.rect)
        else:
            tuned_hist.delete(op.rect)
            static_hist.delete(op.rect)
        if config.tune_every and i % config.tune_every == 0:
            feedback, _ = collector.drain()
            if len(feedback):
                window.append(feedback.coords)
                sample = np.concatenate(window)[-config.tune_window:]
                tuner.tune(RectSet(sample, copy=False, validate=False))
    replay_seconds = time.perf_counter() - start

    # score both sides where the data *ended up*: the paper's query
    # model regenerated over the post-drift rows
    final_data = tuned_hist.current_data()
    eval_queries = range_queries(
        final_data, config.qsize, config.n_queries,
        seed=config.query_seed,
    )
    start = time.perf_counter()
    served = engine.estimate_batch(eval_queries)
    estimate_seconds = time.perf_counter() - start
    served_static = static_engine.estimate_batch(eval_queries)

    fresh = BatchServingEngine(
        BucketEstimator(list(tuned_hist.buckets), name=technique)
    )
    tuned_matches = bool(
        np.array_equal(served, fresh.estimate_batch(eval_queries))
    )

    boxes = [b.bbox for b in tuned_hist.buckets]
    covered = int((assign_by_center(final_data, boxes) >= 0).sum())
    total_count = int(round(sum(b.count for b in tuned_hist.buckets)))

    truth = ExperimentRunner(final_data).true_counts(eval_queries)
    summary = error_summary(truth, served)
    are_tuned = summary.average_relative_error
    are_static = error_summary(
        truth, served_static
    ).average_relative_error

    snapshot = OBS.snapshot()
    counters = snapshot["counters"]
    return {
        "technique": technique,
        "build_seconds": build_seconds,
        "estimate_seconds": estimate_seconds,
        "size_words": int(estimator.size_words()),
        "accuracy": {
            "average_relative_error": summary.average_relative_error,
            "mean_per_query_error": summary.mean_per_query_error,
            "median_per_query_error": summary.median_per_query_error,
            "rmse": summary.rmse,
            "n_queries": summary.n_queries,
        },
        "metrics": snapshot,
        "tuned": {
            "ops": len(ops),
            "queries": counts["query"],
            "inserts": counts["insert"],
            "deletes": counts["delete"],
            "tuning_passes": int(counters.get("tuning.passes", 0)),
            "tuning_pairs": int(counters.get("tuning.splits", 0)),
            "feedback_observed": int(
                counters.get("tuning.observed", 0)
            ),
            "feedback_scored": int(counters.get("tuning.scored", 0)),
            "final_epoch": int(tuned_hist.epoch),
            "final_n": int(len(final_data)),
            "n_buckets_static": int(len(static_hist.buckets)),
            "n_buckets_tuned": int(len(tuned_hist.buckets)),
            "count_conserved": bool(total_count == covered),
            "are_static": float(are_static),
            "are_tuned": float(are_tuned),
            "improvement": float(are_static - are_tuned),
            "replay_seconds": replay_seconds,
            "tuned_matches": tuned_matches,
        },
    }


def _frontdoor_client(
    host: str,
    port: int,
    coords: "npt.NDArray[np.float64]",
    rows: "npt.NDArray[np.int64]",
    window: int,
    out_q: Any,
    barrier: Any,
) -> None:
    """One load-generator process: windowed pipelining over a raw
    socket.

    Sends ``window`` single-rect frames back to back, then reads that
    window's responses before sending the next — the closed-loop
    pipelined client every serving benchmark models.  Runs in a child
    process so client-side CPU (framing, JSON) never contends with the
    server's event loop for the GIL; the barrier keeps process startup
    out of the measured window.  Per-request latency is the gap from
    the window's send to that response's arrival.
    """
    import socket

    from ..serving.frontdoor import encode_frame

    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    n = len(rows)
    values = np.zeros(n, dtype=np.float64)
    latencies = np.zeros(n, dtype=np.float64)
    position = {int(rid): k for k, rid in enumerate(rows)}
    barrier.wait()
    try:
        buffer = bytearray()
        for start in range(0, n, window):
            chunk = rows[start:start + window]
            frames = b"".join(
                encode_frame({
                    "id": int(rid),
                    "op": "estimate",
                    "rect": [
                        float(v) for v in coords[position[int(rid)]]
                    ],
                })
                for rid in chunk
            )
            t0 = time.perf_counter()
            sock.sendall(frames)
            got = 0
            while got < len(chunk):
                data = sock.recv(1 << 16)
                if not data:
                    raise ConnectionError(
                        "front door closed the connection"
                    )
                buffer.extend(data)
                while got < len(chunk) and len(buffer) >= 4:
                    length = int.from_bytes(buffer[:4], "big")
                    if len(buffer) < 4 + length:
                        break
                    response = json.loads(bytes(buffer[4:4 + length]))
                    del buffer[:4 + length]
                    arrived = time.perf_counter()
                    k = position[int(response["id"])]
                    values[k] = float(response["value"])
                    latencies[k] = arrived - t0
                    got += 1
    finally:
        sock.close()
    out_q.put((rows, values, latencies))


def _frontdoor_run(
    backend: Any,
    queries: "RectSet",
    *,
    concurrency: int,
    max_batch: int,
    wait_steps: int,
    window: int,
) -> Tuple["npt.NDArray[np.float64]", "npt.NDArray[np.float64]",
           float, Dict[str, float]]:
    """Serve ``queries`` through a front door over ``backend``.

    ``concurrency`` client processes split the workload and drive it
    with ``window``-deep pipelining (:func:`_frontdoor_client`).
    Returns ``(values, per-request latencies in seconds, wall seconds,
    batcher stats)``.  The caller passes a stateless backend (shard
    caches off) so the batched and the ``max_batch=1`` run see
    identical per-dispatch work regardless of order.
    """
    import multiprocessing as mp

    from ..serving import FrontDoorThread

    coords = queries.coords
    n = len(queries)
    front = FrontDoorThread(
        backend, max_batch=max_batch, max_wait_steps=wait_steps
    )
    front.start()
    try:
        ctx = mp.get_context("spawn")
        out_q = ctx.Queue()
        n_clients = max(1, min(concurrency, n))
        barrier = ctx.Barrier(n_clients + 1)
        slices = np.array_split(
            np.arange(n, dtype=np.int64), n_clients
        )
        procs = [
            ctx.Process(
                target=_frontdoor_client,
                args=(front.host, front.port, coords[rows], rows,
                      max(1, window), out_q, barrier),
            )
            for rows in slices
        ]
        for proc in procs:
            proc.start()
        barrier.wait()
        t0 = time.perf_counter()
        values = np.zeros(n, dtype=np.float64)
        latencies = np.zeros(n, dtype=np.float64)
        for _ in procs:
            rows, part_values, part_latencies = out_q.get()
            values[rows] = part_values
            latencies[rows] = part_latencies
        seconds = time.perf_counter() - t0
        for proc in procs:
            proc.join(timeout=30.0)
        stats = front.stats()
    finally:
        front.stop()
    return values, latencies, seconds, stats


def _bench_server_technique(
    technique: str,
    data: "RectSet",
    queries: "RectSet",
    truth: "npt.NDArray[np.float64]",
    config: BenchConfig,
) -> Dict[str, Any]:
    """One technique's front-door latency/throughput cell.

    The backend is the sharded scatter-gather tier (the same layout
    ``engine="sharded"`` benches, shard caches off so both runs are
    stateless).  Two complete runs over the same workload: the
    micro-batched front door (``config.server_max_batch``,
    ``config.concurrency`` pipelined client processes) and the *same*
    server path pinned to ``max_batch=1`` — the honest
    single-query-per-call dispatch baseline, since both pay identical
    framing, event-loop, and client costs and differ only in
    coalescing.  ``server.speedup`` is the qps ratio;
    ``server.server_matches`` gates both runs bit-for-bit against a
    direct ``router.estimate_batch`` call.  Latency percentiles are
    client-observed (window send to reply arrival), in milliseconds.
    """
    from ..serving import ShardedHistogram, ShardRouter

    OBS.reset()
    start = time.perf_counter()
    sharded = ShardedHistogram.build(
        data,
        n_shards=config.n_shards,
        n_buckets=config.n_buckets,
        partitioner_factory=lambda quota: build_partitioner(
            technique, quota, n_regions=config.n_regions
        ),
        n_regions=config.n_regions,
        cache_size=0,
    )
    build_seconds = time.perf_counter() - start

    router = ShardRouter(sharded, workers=1)
    try:
        reference = router.estimate_batch(queries)

        batched_values, batched_lat, batched_seconds, stats = \
            _frontdoor_run(
                router, queries,
                concurrency=config.concurrency,
                max_batch=config.server_max_batch,
                wait_steps=config.server_wait_steps,
                window=config.server_window,
            )
        single_values, single_lat, single_seconds, _ = _frontdoor_run(
            router, queries,
            concurrency=config.concurrency,
            max_batch=1,
            wait_steps=0,
            window=config.server_window,
        )
        size_words = int(router.size_words())
    finally:
        router.close()

    n = len(queries)
    server_matches = bool(
        np.array_equal(batched_values, reference)
        and np.array_equal(single_values, reference)
    )
    summary = error_summary(truth, batched_values)
    return {
        "technique": technique,
        "build_seconds": build_seconds,
        "estimate_seconds": batched_seconds,
        "size_words": size_words,
        "accuracy": {
            "average_relative_error": summary.average_relative_error,
            "mean_per_query_error": summary.mean_per_query_error,
            "median_per_query_error": summary.median_per_query_error,
            "rmse": summary.rmse,
            "n_queries": summary.n_queries,
        },
        "metrics": OBS.snapshot(),
        "server": {
            "concurrency": int(config.concurrency),
            "max_batch": int(config.server_max_batch),
            "wait_steps": int(config.server_wait_steps),
            "window": int(config.server_window),
            "requests": int(n),
            "batches": int(stats["batches"]),
            "avg_batch": float(stats["avg_batch"]),
            "shed": int(stats["shed"]),
            "batched_seconds": batched_seconds,
            "batched_qps": (
                n / batched_seconds if batched_seconds > 0 else 0.0
            ),
            "p50_ms": float(np.percentile(batched_lat, 50) * 1e3),
            "p99_ms": float(np.percentile(batched_lat, 99) * 1e3),
            "single_seconds": single_seconds,
            "single_qps": (
                n / single_seconds if single_seconds > 0 else 0.0
            ),
            "single_p50_ms": float(
                np.percentile(single_lat, 50) * 1e3
            ),
            "single_p99_ms": float(
                np.percentile(single_lat, 99) * 1e3
            ),
            "speedup": (
                single_seconds / batched_seconds
                if batched_seconds > 0 else 0.0
            ),
            "server_matches": server_matches,
        },
    }


def _bench_technique(
    technique: str,
    data: "RectSet",
    queries: "RectSet",
    truth: "npt.NDArray[np.float64]",
    config: BenchConfig,
) -> Dict[str, Any]:
    """Build + evaluate one technique with a fresh metrics window.

    With ``config.engine == "batch"`` the workload is served through
    :class:`repro.serving.BatchServingEngine` (cold cache, auto-built
    bucket index) and the cell additionally records the scalar
    one-query-at-a-time loop's wall clock (``scalar_seconds``,
    measured *before* the index is attached — the pre-serving
    reference path), the resulting ``speedup``, and whether the two
    paths agreed to exact float equality (``scalar_matches``).

    ``config.engine == "live"`` cells are built by
    :func:`_bench_live_technique` instead (the ``truth`` argument is
    unused there — live cells score against the post-stream data).
    """
    if config.engine == "live":
        return _bench_live_technique(technique, data, queries, config)
    if config.engine == "tuned":
        return _bench_tuned_technique(technique, data, config)
    if config.engine == "sharded":
        return _bench_sharded_technique(
            technique, data, queries, truth, config
        )
    if config.engine == "server":
        return _bench_server_technique(
            technique, data, queries, truth, config
        )
    OBS.reset()
    start = time.perf_counter()
    estimator = build_estimator(
        technique,
        data,
        config.n_buckets,
        n_regions=config.n_regions,
    )
    build_seconds = time.perf_counter() - start

    extra: Dict[str, Any] = {}
    if config.engine == "batch":
        from ..serving import BatchServingEngine

        start = time.perf_counter()
        scalar = np.array(
            [estimator.estimate(q) for q in queries], dtype=np.float64
        )
        scalar_seconds = time.perf_counter() - start

        # the vectorised kernel itself: this is the speedup CI gates on
        start = time.perf_counter()
        estimates = estimator.estimate_batch(queries)
        estimate_seconds = time.perf_counter() - start

        # the full serving stack (cold cache + auto-attached index) on
        # the same workload; its per-query bookkeeping is Python-side,
        # so it is slower than the bare kernel but must still beat the
        # scalar loop
        served = BatchServingEngine(estimator)
        start = time.perf_counter()
        engine_estimates = served.estimate_batch(queries)
        engine_seconds = time.perf_counter() - start
        extra = {
            "scalar_seconds": scalar_seconds,
            "engine_seconds": engine_seconds,
            "speedup": (
                scalar_seconds / estimate_seconds
                if estimate_seconds > 0.0 else 0.0
            ),
            "scalar_matches": bool(
                np.array_equal(scalar, estimates)
                and np.array_equal(scalar, engine_estimates)
            ),
        }
    else:
        start = time.perf_counter()
        estimates = estimator.estimate_many(queries)
        estimate_seconds = time.perf_counter() - start

    summary = error_summary(truth, estimates)
    cell = {
        "technique": technique,
        "build_seconds": build_seconds,
        "estimate_seconds": estimate_seconds,
        "size_words": int(estimator.size_words()),
        "accuracy": {
            "average_relative_error": summary.average_relative_error,
            "mean_per_query_error": summary.mean_per_query_error,
            "median_per_query_error": summary.median_per_query_error,
            "rmse": summary.rmse,
            "n_queries": summary.n_queries,
        },
        "metrics": OBS.snapshot(),
    }
    cell.update(extra)
    return cell


def _bench_cell_task(
    task: Tuple[str, "RectSet", "RectSet",
                "npt.NDArray[np.float64]", BenchConfig],
) -> Dict[str, Any]:
    """Worker-side cell evaluation for parallel bench runs.

    Enables the worker's registry itself (``parallel_map`` snapshots a
    worker's registry for the *merge* path, but bench cells carry
    their own per-cell snapshot instead).
    """
    technique, data, queries, truth, config = task
    OBS.enable()
    return _bench_technique(technique, data, queries, truth, config)


def _bench_dataset(
    dataset: str,
    n: int,
    config: BenchConfig,
    *,
    store: Optional[CheckpointStore] = None,
    deterministic: bool = False,
) -> Dict[str, Any]:
    meta_key = f"{dataset}:{n}:meta"
    cells: Dict[str, Any] = {}
    meta: Optional[Dict[str, Any]] = None
    if store is not None:
        meta = store.load(meta_key)
        for technique in config.techniques:
            cached = store.load(f"{dataset}:{n}:{technique}")
            if cached is not None:
                cells[technique] = cached
    missing = [t for t in config.techniques if t not in cells]

    if missing or meta is None:
        data = make_dataset(dataset, n)
        queries = range_queries(
            data, config.qsize, config.n_queries, seed=config.query_seed
        )
        runner = ExperimentRunner(data)

        OBS.reset()
        start = time.perf_counter()
        truth = runner.true_counts(queries)
        truth_seconds = time.perf_counter() - start

        meta = {
            "dataset": dataset,
            "n": int(len(data)),
            "n_queries": int(len(queries)),
            "qsize": config.qsize,
            "truth_seconds": 0.0 if deterministic else truth_seconds,
        }
        if store is not None:
            store.save(meta_key, meta)
        if config.workers > 1:
            from ..serving import parallel_map

            tasks = [
                (technique, data, queries, truth, config)
                for technique in missing
            ]
            fresh = parallel_map(
                _bench_cell_task, tasks, workers=config.workers
            )
        else:
            fresh = [
                _bench_technique(technique, data, queries, truth,
                                 config)
                for technique in missing
            ]
        for technique, cell in zip(missing, fresh):
            if deterministic:
                cell = _scrub_cell(cell)
            cells[technique] = cell
            if store is not None:
                store.save(f"{dataset}:{n}:{technique}", cell)

    record = dict(meta)
    record["techniques"] = [cells[t] for t in config.techniques]
    return record


def run_bench(
    config: BenchConfig = QUICK_CONFIG,
    *,
    checkpoint_dir: Union[str, Path, None] = None,
    deterministic: bool = False,
) -> Dict[str, Any]:
    """Run the workload and return the (validated) artifact document.

    With ``checkpoint_dir``, completed (dataset, technique) cells are
    persisted as they finish and reused on the next invocation.  With
    ``deterministic``, every wall-clock field is zeroed so the artifact
    depends only on the config and seeds (and hence an interrupted and
    resumed run is byte-identical to a fresh one).
    """
    start = time.perf_counter()
    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        fingerprint = config_fingerprint(
            {
                "schema_version": SCHEMA_VERSION,
                "name": config.name,
                "datasets": [list(pair) for pair in config.datasets],
                "n_buckets": config.n_buckets,
                "n_regions": config.n_regions,
                "n_queries": config.n_queries,
                "qsize": config.qsize,
                "query_seed": config.query_seed,
                "techniques": list(config.techniques),
                "engine": config.engine,
                "live_ops": config.live_ops,
                "live_seed": config.live_seed,
                "live_drift": config.live_drift,
                "n_shards": config.n_shards,
                "shard_workers": config.shard_workers,
                "concurrency": config.concurrency,
                "server_max_batch": config.server_max_batch,
                "server_wait_steps": config.server_wait_steps,
                "server_window": config.server_window,
                "live_drift_xy": list(config.live_drift_xy),
                "tune_every": config.tune_every,
                "tune_max_ops": config.tune_max_ops,
                "feedback_sample": config.feedback_sample,
                "tune_window": config.tune_window,
                "live_query_frac": config.live_query_frac,
                "live_insert_frac": config.live_insert_frac,
                "deterministic": deterministic,
            }
        )
        store = CheckpointStore(checkpoint_dir, fingerprint)

    overhead = _zero_overhead() if deterministic else measure_overhead()

    datasets: List[Dict[str, Any]] = []
    with OBS.scope():
        try:
            for dataset, n in config.datasets:
                datasets.append(
                    _bench_dataset(
                        dataset,
                        n,
                        config,
                        store=store,
                        deterministic=deterministic,
                    )
                )
        finally:
            OBS.reset()

    doc: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "name": config.name,
        "created_unix": 0.0 if deterministic else time.time(),
        "config": {
            "datasets": [list(pair) for pair in config.datasets],
            "n_buckets": config.n_buckets,
            "n_regions": config.n_regions,
            "n_queries": config.n_queries,
            "qsize": config.qsize,
            "query_seed": config.query_seed,
            "techniques": list(config.techniques),
            "engine": config.engine,
            "workers": config.workers,
            "live_ops": config.live_ops,
            "live_seed": config.live_seed,
            "live_drift": config.live_drift,
            "n_shards": config.n_shards,
            "shard_workers": config.shard_workers,
            "concurrency": config.concurrency,
            "server_max_batch": config.server_max_batch,
            "server_wait_steps": config.server_wait_steps,
            "server_window": config.server_window,
            "live_drift_xy": list(config.live_drift_xy),
            "tune_every": config.tune_every,
            "tune_max_ops": config.tune_max_ops,
            "feedback_sample": config.feedback_sample,
            "tune_window": config.tune_window,
            "live_query_frac": config.live_query_frac,
            "live_insert_frac": config.live_insert_frac,
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "overhead": overhead,
        "datasets": datasets,
        "total_seconds": 0.0 if deterministic
        else time.perf_counter() - start,
    }
    validate_bench(doc)
    return doc


def write_bench(
    config: BenchConfig = QUICK_CONFIG,
    out_dir: Union[str, Path] = ".",
    *,
    checkpoint_dir: Union[str, Path, None] = None,
    deterministic: bool = False,
) -> Tuple[Dict[str, Any], Path]:
    """Run the workload and write ``BENCH_<name>.json`` to ``out_dir``.

    The artifact is written atomically (temp file + fsync + rename), so
    a crash mid-write never leaves a truncated BENCH file behind.
    """
    doc = run_bench(
        config,
        checkpoint_dir=checkpoint_dir,
        deterministic=deterministic,
    )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{config.name}.json"
    atomic_write_text(
        path, json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    return doc, path

"""Observability: metrics registry, bench schema, regression harness.

``repro.obs`` gives the estimator service eyes: :mod:`repro.obs.metrics`
is the near-zero-overhead counter/timer/histogram registry the hot
paths report to, :mod:`repro.obs.schema` pins the ``BENCH_<name>.json``
artifact format, and :mod:`repro.obs.bench` runs the fixed benchmark
workload behind ``repro-spatial bench``.
"""

from .metrics import (
    CounterStat,
    HistogramStat,
    MetricsRegistry,
    OBS,
    TimerStat,
    get_registry,
    snapshot_from_json,
)
from .schema import BENCH_SCHEMA, BenchSchemaError, validate_bench

__all__ = [
    "OBS",
    "MetricsRegistry",
    "CounterStat",
    "TimerStat",
    "HistogramStat",
    "get_registry",
    "snapshot_from_json",
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "validate_bench",
]

"""Integral images over density grids: O(1) block sums and SSE.

The spatial skew of a bucket (Definition 4.1) is ``n · variance`` of the
densities it covers, which equals the *sum of squared errors*

    SSE = Σ d²  -  (Σ d)² / n .

With 2-D prefix sums of ``d`` and ``d²`` (an "integral image" pair), the
SSE of any axis-aligned cell block is O(1), which is what lets Min-Skew
evaluate every candidate split of a bucket in O(width + height).

Cumulative-by-one-axis tables additionally give O(width) extraction of a
block's *marginal* distributions, the quantity the paper's implementation
actually uses to pick split points.
"""

from __future__ import annotations

import numpy as np


class BlockStats:
    """Prefix-sum tables over a ``(nx, ny)`` value grid.

    All block coordinates are *inclusive* cell index ranges
    ``[ix0..ix1] × [iy0..iy1]``.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be a 2-D array")
        self.nx, self.ny = values.shape
        # padded 2-D integral images of d and d^2
        self._sum = np.zeros((self.nx + 1, self.ny + 1), dtype=np.float64)
        self._sumsq = np.zeros((self.nx + 1, self.ny + 1), dtype=np.float64)
        np.cumsum(values, axis=0, out=self._sum[1:, 1:])
        np.cumsum(self._sum[1:, 1:], axis=1, out=self._sum[1:, 1:])
        sq = values * values
        np.cumsum(sq, axis=0, out=self._sumsq[1:, 1:])
        np.cumsum(self._sumsq[1:, 1:], axis=1, out=self._sumsq[1:, 1:])
        # cumulative along a single axis, for marginal extraction
        self._cum_y = np.zeros((self.nx, self.ny + 1), dtype=np.float64)
        np.cumsum(values, axis=1, out=self._cum_y[:, 1:])
        self._cum_x = np.zeros((self.nx + 1, self.ny), dtype=np.float64)
        np.cumsum(values, axis=0, out=self._cum_x[1:, :])

    # ------------------------------------------------------------------
    # O(1) block aggregates
    # ------------------------------------------------------------------
    def block_sum(self, ix0: int, ix1: int, iy0: int, iy1: int) -> float:
        """Sum of the block's values (O(1))."""
        s = self._sum
        return float(
            s[ix1 + 1, iy1 + 1]
            - s[ix0, iy1 + 1]
            - s[ix1 + 1, iy0]
            + s[ix0, iy0]
        )

    def block_sumsq(self, ix0: int, ix1: int, iy0: int, iy1: int) -> float:
        """Sum of the block's squared values (O(1))."""
        s = self._sumsq
        return float(
            s[ix1 + 1, iy1 + 1]
            - s[ix0, iy1 + 1]
            - s[ix1 + 1, iy0]
            + s[ix0, iy0]
        )

    def block_count(self, ix0: int, ix1: int, iy0: int, iy1: int) -> int:
        """Number of cells in the block."""
        return (ix1 - ix0 + 1) * (iy1 - iy0 + 1)

    def block_mean(self, ix0: int, ix1: int, iy0: int, iy1: int) -> float:
        """Mean cell value of the block (O(1))."""
        return self.block_sum(ix0, ix1, iy0, iy1) / self.block_count(
            ix0, ix1, iy0, iy1
        )

    def block_sse(self, ix0: int, ix1: int, iy0: int, iy1: int) -> float:
        """Sum of squared deviations of the block's cells from their mean.

        Equals ``n_cells × variance`` — the bucket's contribution to the
        grouping's spatial skew (Definition 4.1), with grid cells playing
        the role of points.
        """
        n = self.block_count(ix0, ix1, iy0, iy1)
        total = self.block_sum(ix0, ix1, iy0, iy1)
        total_sq = self.block_sumsq(ix0, ix1, iy0, iy1)
        sse = total_sq - (total * total) / n
        # guard against negative epsilon from float cancellation
        return max(sse, 0.0)

    def block_variance(self, ix0: int, ix1: int, iy0: int, iy1: int) -> float:
        """Population variance of the block's cells (O(1))."""
        n = self.block_count(ix0, ix1, iy0, iy1)
        return self.block_sse(ix0, ix1, iy0, iy1) / n

    # ------------------------------------------------------------------
    # marginal distributions
    # ------------------------------------------------------------------
    def marginal_x(
        self, ix0: int, ix1: int, iy0: int, iy1: int
    ) -> np.ndarray:
        """Per-column sums of the block: length ``ix1 - ix0 + 1``."""
        return (
            self._cum_y[ix0:ix1 + 1, iy1 + 1]
            - self._cum_y[ix0:ix1 + 1, iy0]
        )

    def marginal_y(
        self, ix0: int, ix1: int, iy0: int, iy1: int
    ) -> np.ndarray:
        """Per-row sums of the block: length ``iy1 - iy0 + 1``."""
        return (
            self._cum_x[ix1 + 1, iy0:iy1 + 1]
            - self._cum_x[ix0, iy0:iy1 + 1]
        )


def best_split_of_marginal(marginal: np.ndarray) -> "tuple[int, float]":
    """Best binary split of a 1-D frequency vector by SSE reduction.

    Returns ``(k, reduction)`` where the split puts ``marginal[:k]`` in
    the left part and ``marginal[k:]`` in the right, ``1 <= k < len``,
    and ``reduction = SSE(whole) - SSE(left) - SSE(right)`` is maximal.
    Returns ``(0, 0.0)`` when the vector cannot be split (length < 2).

    Vectorised: prefix sums of ``m`` and ``m²`` evaluate every candidate
    split simultaneously.
    """
    m = np.asarray(marginal, dtype=np.float64)
    length = m.shape[0]
    if length < 2:
        return 0, 0.0

    prefix = np.concatenate(([0.0], np.cumsum(m)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(m * m)))
    total = prefix[-1]
    total_sq = prefix_sq[-1]
    whole_sse = total_sq - total * total / length

    ks = np.arange(1, length)
    left_n = ks.astype(np.float64)
    right_n = (length - ks).astype(np.float64)
    left_sum = prefix[ks]
    left_sumsq = prefix_sq[ks]
    left_sse = left_sumsq - left_sum * left_sum / left_n
    right_sum = total - left_sum
    right_sumsq = total_sq - left_sumsq
    right_sse = right_sumsq - right_sum * right_sum / right_n

    reductions = whole_sse - left_sse - right_sse
    best = int(np.argmax(reductions))
    return int(ks[best]), float(max(reductions[best], 0.0))

"""Uniform grids of spatial densities (Section 4 of the paper).

To make BSP construction tractable, the paper replaces the raw input with
"a uniform grid of *rectangular regions*.  Each grid region is associated
with its *spatial density*, the number of input rectangles that intersect
with it."  The grid "can be obtained easily in a single sweep of the input
data" — we realise that sweep with a 2-D difference array: each rectangle
adds +1 over the block of cells it intersects, and two prefix sums turn
the difference array into per-cell counts.  Cost: O(N + nx·ny), one pass.

Grid cells are indexed ``[ix, iy]`` with ``ix`` along x (0 at the left
edge of the bounds) and ``iy`` along y (0 at the bottom), i.e. the density
array has shape ``(nx, ny)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..geometry import Rect, RectSet


class DensityGrid:
    """A ``nx × ny`` uniform grid of spatial densities over ``bounds``.

    Parameters
    ----------
    densities:
        ``(nx, ny)`` array of per-cell densities.
    bounds:
        The rectangle the grid tiles (normally the dataset MBR).
    source:
        Optional originating :class:`RectSet`; required by
        :meth:`refined`, which recomputes densities at double resolution
        from the actual data (the paper's progressive refinement
        recalculates region properties "using the new regions").
    """

    def __init__(
        self,
        densities: np.ndarray,
        bounds: Rect,
        *,
        source: Optional[RectSet] = None,
    ) -> None:
        densities = np.asarray(densities, dtype=np.float64)
        if densities.ndim != 2:
            raise ValueError("densities must be a 2-D array")
        if bounds.area <= 0:
            raise ValueError("grid bounds must have positive area")
        self.densities = densities
        self.bounds = bounds
        self.source = source

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rects(
        cls,
        rects: RectSet,
        nx: int,
        ny: int,
        *,
        bounds: Optional[Rect] = None,
    ) -> "DensityGrid":
        """Build the density grid in one sweep of the data.

        ``bounds`` defaults to the MBR of ``rects``.  Rectangles are
        clipped to the bounds; a rectangle whose closed extent touches a
        cell contributes to that cell.
        """
        if nx <= 0 or ny <= 0:
            raise ValueError("grid resolution must be positive")
        if bounds is None:
            bounds = rects.mbr()
        if bounds.area <= 0:
            raise ValueError("grid bounds must have positive area")

        cell_w = bounds.width / nx
        cell_h = bounds.height / ny

        # cell index ranges intersected by each rectangle (inclusive)
        ix0 = np.floor((rects.x1 - bounds.x1) / cell_w).astype(np.int64)
        ix1 = np.floor((rects.x2 - bounds.x1) / cell_w).astype(np.int64)
        iy0 = np.floor((rects.y1 - bounds.y1) / cell_h).astype(np.int64)
        iy1 = np.floor((rects.y2 - bounds.y1) / cell_h).astype(np.int64)
        np.clip(ix0, 0, nx - 1, out=ix0)
        np.clip(ix1, 0, nx - 1, out=ix1)
        np.clip(iy0, 0, ny - 1, out=iy0)
        np.clip(iy1, 0, ny - 1, out=iy1)

        diff = np.zeros((nx + 1, ny + 1), dtype=np.float64)
        np.add.at(diff, (ix0, iy0), 1.0)
        np.add.at(diff, (ix1 + 1, iy0), -1.0)
        np.add.at(diff, (ix0, iy1 + 1), -1.0)
        np.add.at(diff, (ix1 + 1, iy1 + 1), 1.0)

        densities = diff.cumsum(axis=0).cumsum(axis=1)[:nx, :ny]
        return cls(densities, bounds, source=rects)

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        nx: int,
        ny: int,
        *,
        bounds: Rect,
    ) -> "DensityGrid":
        """Histogram ``(N, 2)`` points into grid cells (used by the
        fractal estimator's box counting)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be an (N, 2) array")
        hist, _, _ = np.histogram2d(
            points[:, 0],
            points[:, 1],
            bins=(nx, ny),
            range=((bounds.x1, bounds.x2), (bounds.y1, bounds.y2)),
        )
        return cls(hist, bounds)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def nx(self) -> int:
        return self.densities.shape[0]

    @property
    def ny(self) -> int:
        return self.densities.shape[1]

    @property
    def n_regions(self) -> int:
        return self.nx * self.ny

    @property
    def cell_width(self) -> float:
        return self.bounds.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.bounds.height / self.ny

    def cell_rect(self, ix: int, iy: int) -> Rect:
        """Data-space rectangle of cell ``(ix, iy)``."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise IndexError(f"cell ({ix}, {iy}) outside grid")
        x1 = self.bounds.x1 + ix * self.cell_width
        y1 = self.bounds.y1 + iy * self.cell_height
        return Rect(x1, y1, x1 + self.cell_width, y1 + self.cell_height)

    def block_rect(self, ix0: int, ix1: int, iy0: int, iy1: int) -> Rect:
        """Data-space rectangle of the inclusive cell block
        ``[ix0..ix1] × [iy0..iy1]``."""
        if not (0 <= ix0 <= ix1 < self.nx and 0 <= iy0 <= iy1 < self.ny):
            raise IndexError("block outside grid")
        x1 = self.bounds.x1 + ix0 * self.cell_width
        y1 = self.bounds.y1 + iy0 * self.cell_height
        x2 = self.bounds.x1 + (ix1 + 1) * self.cell_width
        y2 = self.bounds.y1 + (iy1 + 1) * self.cell_height
        return Rect(x1, y1, x2, y2)

    # ------------------------------------------------------------------
    # refinement (Section 5.6)
    # ------------------------------------------------------------------
    def refined(self) -> "DensityGrid":
        """A grid with every region split into four identical regions.

        Densities are *recomputed from the source data* at the finer
        resolution (not subdivided arithmetically), exactly as the
        paper's progressive refinement prescribes.  Requires the grid to
        have been built with :meth:`from_rects`.
        """
        if self.source is None:
            raise ValueError(
                "refined() needs the source RectSet; build the grid "
                "with DensityGrid.from_rects()"
            )
        return DensityGrid.from_rects(
            self.source, self.nx * 2, self.ny * 2, bounds=self.bounds
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def total_density(self) -> float:
        """Sum of all cell densities."""
        return float(self.densities.sum())

    def shape(self) -> Tuple[int, int]:
        """Grid resolution as ``(nx, ny)``."""
        return (self.nx, self.ny)

    def __repr__(self) -> str:
        return f"DensityGrid({self.nx}x{self.ny}, bounds={self.bounds})"


def square_grid_shape(n_regions: int, bounds: Rect) -> Tuple[int, int]:
    """Pick (nx, ny) with nx·ny ≈ n_regions and cells roughly square.

    The paper quotes region budgets as scalar counts (10 000, 30 000, ...);
    this helper maps a budget to a grid whose cell aspect ratio matches
    the bounds' aspect ratio, so cells stay close to square in data space.
    """
    if n_regions <= 0:
        raise ValueError("n_regions must be positive")
    aspect = bounds.width / bounds.height
    nx = max(1, int(round(np.sqrt(n_regions * aspect))))
    ny = max(1, int(round(n_regions / nx)))
    return nx, ny

"""Uniform density grids, integral images, and split-search helpers — the
compact input representation Min-Skew partitions (paper Section 4)."""

from .density import DensityGrid, square_grid_shape
from .integral import BlockStats, best_split_of_marginal

__all__ = [
    "DensityGrid",
    "square_grid_shape",
    "BlockStats",
    "best_split_of_marginal",
]

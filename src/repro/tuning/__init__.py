"""Query-feedback self-tuning of maintained histograms.

Closes the loop the paper leaves open: a Min-Skew histogram is built
once and degrades as the data and the workload drift.  This package
samples served queries off the hot path, scores them against the exact
counting oracle, attributes the estimation error to buckets via the
Section 3.1 overlap fractions, and re-splits the highest-error buckets
(reusing the Min-Skew split criterion on the retained rows) while
merging cold, accurate siblings — all under the fixed bucket quota.

A tuning pass publishes through
:meth:`repro.core.MaintainedHistogram.replace_buckets`, i.e. as one
atomic mutation with exactly one epoch bump, so the whole serving tier
(estimator snapshots, batch engines, shard routers, the front door)
picks it up through the existing staleness machinery with no new
invalidation paths.
"""

from .feedback import (
    FeedbackCollector,
    FeedbackRecord,
    FeedbackTuner,
    TuningReport,
)

__all__ = [
    "FeedbackCollector",
    "FeedbackRecord",
    "FeedbackTuner",
    "TuningReport",
]

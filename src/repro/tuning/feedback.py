"""The feedback collector and the quota-preserving bucket tuner.

The loop has three stages, all off the query hot path:

1. **Collect** — :class:`FeedbackCollector` samples every Nth served
   (query, estimate) pair.  Sampling is deterministic (a modular
   counter, no RNG) and O(1) per query, so attaching a collector to a
   serving engine never perturbs answers or timing-sensitive paths.
2. **Score** — :meth:`FeedbackTuner.tune` first re-derives every
   bucket summary exactly from the retained rows (discarding the
   incremental-maintenance float drift), then asks the exact counting
   oracle for the truth of each sampled query and attributes each
   query's absolute error to buckets in proportion to the Section 3.1
   overlap fractions — the same per-bucket factor the range formula
   uses, so the blame lands on the buckets that actually produced the
   estimate.
3. **Re-shape** — under the fixed bucket quota, the pass pairs each
   *split* of a high-error bucket (split point chosen by the Min-Skew
   marginal criterion over a density grid of the bucket's own
   members) with a *merge* of the coldest, most accurate sibling pair
   whose union is an exact rectangle.  Merges and splits are paired
   one-for-one, so the bucket count is invariant; member sets are
   repartitioned with the documented half-open tie rule, so the total
   count is conserved exactly.

The new bucket list is published with
:meth:`~repro.core.maintenance.MaintainedHistogram.replace_buckets` —
one atomic mutation, one epoch bump — and every consumer of the
histogram picks it up through the existing epoch machinery.

Counters report under the ``tuning.*`` namespace: ``tuning.observed``,
``tuning.passes``, ``tuning.scored``, ``tuning.splits``,
``tuning.merges``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bucket import (
    Bucket,
    BucketArrays,
    assign_by_center,
    buckets_from_members,
    estimate_many,
)
from ..core.maintenance import MaintainedHistogram
from ..counting import ExactCountOracle
from ..geometry import Rect, RectSet
from ..grid import BlockStats, DensityGrid, best_split_of_marginal
from ..obs import OBS


@dataclass(frozen=True)
class FeedbackRecord:
    """One sampled observation: a served query and its estimate."""

    query: Rect
    estimate: float


class FeedbackCollector:
    """Deterministic every-Nth sampler of served queries.

    ``sample_every=1`` records everything; larger strides thin the
    stream.  The sampler is a modular counter over the queries *seen*
    (not recorded), so the same query stream always yields the same
    sample — no RNG, reproducible bit-for-bit.  ``capacity`` bounds
    memory; once full, further observations are counted but dropped
    (the tuner drains the buffer, reopening it).
    """

    def __init__(
        self, *, sample_every: int = 1, capacity: int = 4096
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._sample_every = int(sample_every)
        self._capacity = int(capacity)
        self._seen = 0
        self._records: List[FeedbackRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def seen(self) -> int:
        """Queries observed (recorded or not) since construction."""
        return self._seen

    def observe(self, query: Rect, estimate: float) -> None:
        """Register one served query; record it if the stride says so."""
        self._seen += 1
        if self._seen % self._sample_every:
            return
        if len(self._records) >= self._capacity:
            return
        self._records.append(FeedbackRecord(query, float(estimate)))
        OBS.add("tuning.observed")

    def observe_batch(
        self, queries: RectSet, estimates: np.ndarray
    ) -> None:
        """Register a served batch (same stride as scalar observes)."""
        n = len(queries)
        start = self._seen
        self._seen += n
        s = self._sample_every
        first = (-(start + 1)) % s  # first i with (start + i + 1) % s == 0
        recorded = 0
        for i in range(first, n, s):
            if len(self._records) >= self._capacity:
                break
            self._records.append(
                FeedbackRecord(queries[i], float(estimates[i]))
            )
            recorded += 1
        if recorded:
            OBS.add("tuning.observed", recorded)

    def drain(self) -> Tuple[RectSet, np.ndarray]:
        """Take (and clear) the recorded sample as columnar arrays."""
        records = self._records
        self._records = []
        if not records:
            return RectSet.empty(), np.zeros(0, dtype=np.float64)
        coords = np.array(
            [
                [r.query.x1, r.query.y1, r.query.x2, r.query.y2]
                for r in records
            ],
            dtype=np.float64,
        )
        served = np.array(
            [r.estimate for r in records], dtype=np.float64
        )
        return RectSet(coords, copy=False, validate=False), served


@dataclass(frozen=True)
class TuningReport:
    """What one :meth:`FeedbackTuner.tune` pass did.

    ``applied`` is False only for the empty-feedback no-op (no
    mutation, no epoch bump).  The error fields are mean absolute
    error over the scored queries, before (exact resummarisation, old
    layout) and after (new layout) — the pass's own measure of
    whether re-shaping helped.
    """

    scored: int
    splits: int
    merges: int
    applied: bool
    epoch: int
    mean_abs_error_before: float
    mean_abs_error_after: float


def _exact_union(a: Rect, b: Rect) -> Optional[Rect]:
    """The union of ``a`` and ``b`` iff it is an exact rectangle.

    True exactly when the boxes share a full edge: equal y-extents and
    abutting in x, or equal x-extents and abutting in y.  Coordinates
    compare exactly — split coordinates are shared floats by
    construction, so no tolerance is needed.
    """
    if a.y1 == b.y1 and a.y2 == b.y2:
        if a.x2 == b.x1:
            return Rect(a.x1, a.y1, b.x2, a.y2)
        if b.x2 == a.x1:
            return Rect(b.x1, a.y1, a.x2, a.y2)
    if a.x1 == b.x1 and a.x2 == b.x2:
        if a.y2 == b.y1:
            return Rect(a.x1, a.y1, a.x2, b.y2)
        if b.y2 == a.y1:
            return Rect(a.x1, b.y1, a.x2, a.y2)
    return None


def _min_skew_split(
    members: RectSet, bbox: Rect, nx: int, ny: int
) -> Optional[Tuple[int, float]]:
    """Best split of ``bbox`` by the Min-Skew marginal criterion.

    Builds a density grid of the bucket's own members, evaluates the
    best SSE-reducing split of each marginal (scaled by the other
    axis's extent, exactly as Min-Skew construction scores its
    blocks), and returns ``(axis, position)`` — axis 0 splits at
    ``x = position``, axis 1 at ``y = position``.  ``None`` when the
    box cannot be split (degenerate extent along both axes).
    """
    if bbox.area <= 0.0:
        return None
    grid = DensityGrid.from_rects(members, nx, ny, bounds=bbox)
    stats = BlockStats(grid.densities)
    best: Optional[Tuple[float, int, int]] = None
    kx, red_x = best_split_of_marginal(
        stats.marginal_x(0, grid.nx - 1, 0, grid.ny - 1)
    )
    if kx > 0:
        best = (red_x / grid.ny, 0, kx)
    ky, red_y = best_split_of_marginal(
        stats.marginal_y(0, grid.nx - 1, 0, grid.ny - 1)
    )
    if ky > 0 and (best is None or red_y / grid.nx > best[0]):
        best = (red_y / grid.nx, 1, ky)
    if best is None:
        return None
    _, axis, k = best
    if axis == 0:
        return 0, grid.bounds.x1 + k * grid.cell_width
    return 1, grid.bounds.y1 + k * grid.cell_height


class FeedbackTuner:
    """Re-shapes a :class:`MaintainedHistogram` from query feedback.

    Parameters
    ----------
    hist:
        The histogram to tune.  Mutated only through
        :meth:`~repro.core.maintenance.MaintainedHistogram.replace_buckets`.
    max_ops:
        Maximum split/merge *pairs* per pass.  Each pair removes one
        bucket (merge) and adds one (split), so the quota is invariant.
    grid_nx, grid_ny:
        Resolution of the per-bucket density grid the split criterion
        runs on.
    beam:
        How many top-ranked merge and split candidates each round
        trials before keeping the best strictly-improving pair.
    """

    def __init__(
        self,
        hist: MaintainedHistogram,
        *,
        max_ops: int = 4,
        grid_nx: int = 8,
        grid_ny: int = 8,
        beam: int = 4,
    ) -> None:
        if max_ops < 0:
            raise ValueError("max_ops must be non-negative")
        if grid_nx < 2 or grid_ny < 2:
            raise ValueError("split grid must be at least 2x2")
        if beam < 1:
            raise ValueError("beam must be >= 1")
        self._hist = hist
        self._max_ops = int(max_ops)
        self._grid_nx = int(grid_nx)
        self._grid_ny = int(grid_ny)
        self._beam = int(beam)

    # ------------------------------------------------------------------
    def tune(self, queries: RectSet) -> TuningReport:
        """Run one feedback pass over ``queries``.

        Scores the sampled queries against the exact oracle over the
        histogram's current rows, re-shapes under the quota, and
        publishes the result as one atomic epoch bump.  An empty
        feedback batch is a no-op (no mutation, no bump).
        """
        hist = self._hist
        if len(queries) == 0 or not hist.buckets:
            return TuningReport(
                scored=0, splits=0, merges=0, applied=False,
                epoch=hist.epoch, mean_abs_error_before=0.0,
                mean_abs_error_after=0.0,
            )

        data = hist.current_data()
        boxes = [b.bbox for b in hist.buckets]
        assignment = assign_by_center(data, boxes)
        # Stage 1: exact resummarisation — the drifted running
        # averages are replaced by from_members statistics before any
        # error is attributed, so re-shaping reacts to layout error,
        # not to maintenance float drift.
        buckets = buckets_from_members(data, boxes, assignment)
        members = [
            np.flatnonzero(assignment == i) for i in range(len(boxes))
        ]

        truth = ExactCountOracle(data).counts(queries)
        error_before = float(
            np.abs(estimate_many(buckets, queries) - truth).mean()
        )

        # Stages 2+3: attribute, re-shape, repeat.  Each round picks
        # one merge+split pair and keeps it only if the scored error
        # strictly drops, so a pass can never make the sampled
        # workload worse and repeated passes over the same feedback
        # reach a fixpoint instead of oscillating.
        applied_pairs = 0
        for _ in range(self._max_ops):
            picked = self._improve_once(
                data, truth, queries, boxes, members, buckets
            )
            if picked is None:
                break
            boxes, members, buckets = picked
            applied_pairs += 1

        hist.replace_buckets(buckets)

        error_after = float(
            np.abs(estimate_many(buckets, queries) - truth).mean()
        )
        OBS.add("tuning.passes")
        OBS.add("tuning.scored", len(queries))
        if applied_pairs:
            OBS.add("tuning.splits", applied_pairs)
            OBS.add("tuning.merges", applied_pairs)
        return TuningReport(
            scored=len(queries),
            splits=applied_pairs,
            merges=applied_pairs,
            applied=True,
            epoch=hist.epoch,
            mean_abs_error_before=error_before,
            mean_abs_error_after=error_after,
        )

    # ------------------------------------------------------------------
    def _improve_once(
        self,
        data: RectSet,
        truth: np.ndarray,
        queries: RectSet,
        boxes: List[Rect],
        members: List[np.ndarray],
        buckets: List[Bucket],
    ) -> Optional[
        Tuple[List[Rect], List[np.ndarray], List[Bucket]]
    ]:
        """Try one quota-preserving (merge, split) pair.

        Attribution ranks split candidates hottest-error first and
        merge candidates (pairs whose union is an exact rectangle)
        coldest and most accurate first; the top few of each ranking
        are trialled and the pair giving the lowest mean absolute
        error over the scored queries is kept — only if strictly
        below the current error.  Returns the updated layout, or
        ``None`` when no candidate improves.
        """
        n = len(buckets)
        if n < 2:
            return None
        arrays = BucketArrays(buckets)
        fractions = arrays.fraction_block(queries.coords)
        errors = np.abs(estimate_many(buckets, queries) - truth)
        current = float(errors.mean())

        # Attribution: each query's absolute error is shared among
        # the buckets it touched, weighted by the same overlap
        # fraction the range formula multiplied their counts by; heat
        # counts how many scored queries touched a bucket.
        touched = fractions > 0.0
        denom = fractions.sum(axis=1)
        safe = np.where(denom > 0.0, denom, 1.0)
        share = np.where(
            touched, fractions / safe[:, np.newaxis], 0.0
        )
        bucket_error = (share * errors[:, np.newaxis]).sum(axis=0)
        heat = touched.sum(axis=0)

        split_ranked = sorted(
            (
                i for i in range(n)
                if buckets[i].count >= 2 and buckets[i].bbox.area > 0.0
            ),
            key=lambda i: (-bucket_error[i], i),
        )[:self._beam]
        merge_ranked = sorted(
            (
                (i, j)
                for i in range(n)
                for j in range(i + 1, n)
                if _exact_union(boxes[i], boxes[j]) is not None
            ),
            key=lambda p: (
                int(heat[p[0]] + heat[p[1]]),
                bucket_error[p[0]] + bucket_error[p[1]],
                p,
            ),
        )[:self._beam]

        cuts: Dict[int, Optional[Tuple[int, float]]] = {}
        best: Optional[
            Tuple[float, List[Rect], List[np.ndarray], List[Bucket]]
        ] = None
        for i, j in merge_ranked:
            for s in split_ranked:
                if s == i or s == j:
                    continue
                if s not in cuts:
                    cuts[s] = _min_skew_split(
                        data.select(members[s]), boxes[s],
                        self._grid_nx, self._grid_ny,
                    )
                cut = cuts[s]
                if cut is None:
                    continue
                cand = self._apply_pair(
                    data, boxes, members, buckets, (i, j), (s, cut)
                )
                err = float(
                    np.abs(
                        estimate_many(cand[2], queries) - truth
                    ).mean()
                )
                if err < current and (best is None or err < best[0]):
                    best = (err, *cand)
        if best is None:
            return None
        return best[1], best[2], best[3]

    # ------------------------------------------------------------------
    def _apply_pair(
        self,
        data: RectSet,
        boxes: Sequence[Rect],
        members: Sequence[np.ndarray],
        buckets: Sequence[Bucket],
        merge: Tuple[int, int],
        split: Tuple[int, Tuple[int, float]],
    ) -> Tuple[List[Rect], List[np.ndarray], List[Bucket]]:
        """Materialise one merge plus one split as exact summaries.

        Untouched buckets keep their (already exact) summaries; the
        merge product and both split halves are rebuilt with
        :meth:`Bucket.from_members` over the member rows, partitioned
        by the half-open tie rule at the split coordinate.  One box
        removed by the merge, one added by the split — bucket quota
        and total member count are both conserved exactly.
        """
        i, j = merge
        s, (axis, position) = split
        used = {i, j, s}

        new_boxes: List[Rect] = []
        new_members: List[np.ndarray] = []
        new_buckets: List[Bucket] = []
        for k, b in enumerate(buckets):
            if k in used:
                continue
            new_boxes.append(boxes[k])
            new_members.append(members[k])
            new_buckets.append(b)

        union = _exact_union(boxes[i], boxes[j])
        if union is None:  # pragma: no cover - candidates pre-checked
            raise AssertionError("merge pair lost its shared edge")
        merged_idx = np.concatenate((members[i], members[j]))
        new_boxes.append(union)
        new_members.append(merged_idx)
        new_buckets.append(
            Bucket.from_members(union, data.select(merged_idx))
        )

        box = boxes[s]
        centers = data.centers()
        if axis == 0:
            left_box = Rect(box.x1, box.y1, position, box.y2)
            right_box = Rect(position, box.y1, box.x2, box.y2)
            side = centers[members[s], 0] < position
        else:
            left_box = Rect(box.x1, box.y1, box.x2, position)
            right_box = Rect(box.x1, position, box.x2, box.y2)
            side = centers[members[s], 1] < position
        for half_box, half_idx in (
            (left_box, members[s][side]),
            (right_box, members[s][~side]),
        ):
            new_boxes.append(half_box)
            new_members.append(half_idx)
            new_buckets.append(
                Bucket.from_members(half_box, data.select(half_idx))
            )
        return new_boxes, new_members, new_buckets

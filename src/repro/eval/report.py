"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures and
tables report; these helpers format experiment records as aligned ASCII
tables and pivot them into series (one line per technique, one column per
x value), which is the closest textual analogue of the paper's plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

Record = Dict[str, object]


def format_table(
    records: Sequence[Record],
    columns: Sequence[str],
    *,
    floatfmt: str = "{:.3f}",
) -> str:
    """Render records as an aligned ASCII table with a header row."""
    header = [str(c) for c in columns]
    rows: List[List[str]] = [header]
    for record in records:
        row = []
        for column in columns:
            value = record.get(column, "")
            if isinstance(value, float):
                row.append(floatfmt.format(value))
            else:
                row.append(str(value))
        rows.append(row)

    widths = [
        max(len(row[i]) for row in rows) for i in range(len(header))
    ]
    lines = []
    for idx, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def pivot_series(
    records: Sequence[Record],
    *,
    series_key: str = "technique",
    x_key: str = "qsize",
    y_key: str = "error",
) -> Dict[object, Dict[object, float]]:
    """Pivot records into ``{series: {x: y}}`` (a plot's data, as dicts).

    Records missing any of the keys are skipped; later duplicates win.
    """
    series: Dict[object, Dict[object, float]] = {}
    for record in records:
        if not all(k in record for k in (series_key, x_key, y_key)):
            continue
        series.setdefault(record[series_key], {})[record[x_key]] = \
            float(record[y_key])  # type: ignore[index,arg-type]
    return series


def format_series(
    records: Sequence[Record],
    *,
    series_key: str = "technique",
    x_key: str = "qsize",
    y_key: str = "error",
    floatfmt: str = "{:.3f}",
    title: str = "",
) -> str:
    """Render a pivot as the textual analogue of a paper figure.

    One row per series (technique), one column per x value, cells are
    the measured y (average relative error by default).
    """
    pivot = pivot_series(
        records, series_key=series_key, x_key=x_key, y_key=y_key
    )
    xs = sorted({x for ys in pivot.values() for x in ys})
    header = [series_key] + [str(x) for x in xs]
    rows = [header]
    for name in pivot:
        row = [str(name)]
        for x in xs:
            y = pivot[name].get(x)
            row.append("" if y is None else floatfmt.format(y))
        rows.append(row)

    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [title] if title else []
    for idx, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

"""Evaluation framework: the paper's metrics, Section 5.4 space
accounting, technique factory, experiment definitions, and reporting."""

from .metrics import ErrorSummary, average_relative_error, error_summary
from .runner import (
    ALL_TECHNIQUES,
    BUCKET_TECHNIQUES,
    COMPETITIVE_TECHNIQUES,
    BuildResult,
    ExperimentRunner,
    build_estimator,
    build_partitioner,
    timed_build,
)
from .space import (
    SAMPLE_LIBERAL_FACTOR,
    buckets_for_words,
    fair_sample_size,
    paper_sample_size,
    words_for_buckets,
)
from . import experiments, report

__all__ = [
    "average_relative_error",
    "error_summary",
    "ErrorSummary",
    "build_estimator",
    "build_partitioner",
    "timed_build",
    "BuildResult",
    "ExperimentRunner",
    "ALL_TECHNIQUES",
    "BUCKET_TECHNIQUES",
    "COMPETITIVE_TECHNIQUES",
    "words_for_buckets",
    "buckets_for_words",
    "fair_sample_size",
    "paper_sample_size",
    "SAMPLE_LIBERAL_FACTOR",
    "experiments",
    "report",
]

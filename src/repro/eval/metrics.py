"""Error metrics (paper Section 5).

The paper's headline metric is the *average relative error*

    ( Σ_{q ∈ Q} |r_q − e_q| ) / ( Σ_{q ∈ Q} r_q )

— total absolute error normalised by total true result size.  It is
"undefined if all queries in the query set produce no output"; we raise
in that case rather than return a silent NaN.  Additional diagnostics
(mean/median per-query error, RMSE) are provided for analyses beyond the
paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def average_relative_error(
    true_counts: np.ndarray, estimates: np.ndarray
) -> float:
    """The paper's error metric: Σ|r − e| / Σr."""
    r = np.asarray(true_counts, dtype=np.float64)
    e = np.asarray(estimates, dtype=np.float64)
    if r.shape != e.shape:
        raise ValueError(
            f"shape mismatch: true {r.shape} vs estimates {e.shape}"
        )
    denominator = r.sum()
    if denominator <= 0.0:
        raise ValueError(
            "average relative error is undefined when every query "
            "returns an empty result"
        )
    return float(np.abs(r - e).sum() / denominator)


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate error diagnostics for one (technique, workload) pair."""

    average_relative_error: float
    mean_per_query_error: float
    median_per_query_error: float
    rmse: float
    n_queries: int

    def __str__(self) -> str:
        return (
            f"ARE={self.average_relative_error:.3f} "
            f"mean={self.mean_per_query_error:.3f} "
            f"median={self.median_per_query_error:.3f} "
            f"rmse={self.rmse:.1f} (n={self.n_queries})"
        )


def error_summary(
    true_counts: np.ndarray, estimates: np.ndarray
) -> ErrorSummary:
    """Full error diagnostics; per-query ratios skip empty results."""
    r = np.asarray(true_counts, dtype=np.float64)
    e = np.asarray(estimates, dtype=np.float64)
    are = average_relative_error(r, e)
    nonzero = r > 0
    per_query = np.abs(r[nonzero] - e[nonzero]) / r[nonzero]
    rmse = float(np.sqrt(np.mean((r - e) ** 2)))
    return ErrorSummary(
        average_relative_error=are,
        mean_per_query_error=float(per_query.mean()) if per_query.size
        else 0.0,
        median_per_query_error=float(np.median(per_query))
        if per_query.size else 0.0,
        rmse=rmse,
        n_queries=int(r.size),
    )

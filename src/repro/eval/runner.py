"""Technique factory and experiment runner.

Builds any of the paper's techniques by name with fair space accounting,
measures preprocessing time (the paper's second metric), computes exact
ground truth once per workload via the counting oracle, and reduces
estimates to error summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from ..core.minskew import MinSkewPartitioner
from ..counting import ExactCountOracle
from ..estimators import (
    BucketEstimator,
    FractalEstimator,
    SampleEstimator,
    SelectivityEstimator,
    UniformEstimator,
)
from ..geometry import RectSet
from ..obs import OBS
from ..partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    FixedGridPartitioner,
    RTreePartitioner,
)
from .metrics import ErrorSummary, error_summary
from .space import paper_sample_size

#: All technique names, in the paper's reporting order, plus the
#: fixed-grid control histogram ("Grid") added by this reproduction.
ALL_TECHNIQUES = (
    "Min-Skew",
    "Equi-Count",
    "Equi-Area",
    "R-Tree",
    "Sample",
    "Uniform",
    "Fractal",
    "Grid",
)

#: The techniques shown in Figures 8–9 after Uniform and Fractal are
#: dropped for being uncompetitive.
COMPETITIVE_TECHNIQUES = (
    "Min-Skew",
    "Equi-Count",
    "Equi-Area",
    "R-Tree",
    "Sample",
)


def build_estimator(
    technique: str,
    rects: RectSet,
    n_buckets: int,
    *,
    n_regions: int = 10_000,
    refinements: int = 0,
    split_policy: str = "marginal",
    rtree_method: str = "insert",
    seed: int = 0,
) -> SelectivityEstimator:
    """Construct a technique by its paper name.

    Bucket-based techniques receive ``n_buckets``; Sample receives the
    paper's liberal allocation (four rectangles per bucket of budget);
    Uniform and Fractal use constant space regardless.
    """
    if technique == "Min-Skew":
        partitioner = MinSkewPartitioner(
            n_buckets,
            n_regions=n_regions,
            refinements=refinements,
            split_policy=split_policy,
        )
        return BucketEstimator.build(partitioner, rects)
    if technique == "Equi-Area":
        return BucketEstimator.build(EquiAreaPartitioner(n_buckets), rects)
    if technique == "Equi-Count":
        return BucketEstimator.build(EquiCountPartitioner(n_buckets),
                                     rects)
    if technique == "R-Tree":
        return BucketEstimator.build(
            RTreePartitioner(n_buckets, method=rtree_method), rects
        )
    if technique == "Sample":
        return SampleEstimator(
            rects, paper_sample_size(n_buckets), seed=seed
        )
    if technique == "Uniform":
        return UniformEstimator(rects)
    if technique == "Fractal":
        return FractalEstimator(rects)
    if technique == "Grid":
        return BucketEstimator.build(FixedGridPartitioner(n_buckets),
                                     rects)
    raise ValueError(
        f"unknown technique {technique!r}; known: {ALL_TECHNIQUES}"
    )


@dataclass
class BuildResult:
    """An estimator plus how long it took to construct."""

    estimator: SelectivityEstimator
    build_seconds: float


def timed_build(
    technique: str, rects: RectSet, n_buckets: int, **kwargs
) -> BuildResult:
    """Build a technique and measure its preprocessing time."""
    start = time.perf_counter()
    with OBS.timer(f"build.{technique}"):
        estimator = build_estimator(technique, rects, n_buckets, **kwargs)
    elapsed = time.perf_counter() - start
    return BuildResult(estimator, elapsed)


class ExperimentRunner:
    """Shared ground truth and evaluation for one dataset.

    Computes exact counts lazily per workload (keyed by the workload's
    object identity) so sweeps that reuse a query set never pay for the
    oracle twice.
    """

    def __init__(self, data: RectSet) -> None:
        self.data = data
        self._oracle = ExactCountOracle(data)
        self._truth_cache: Dict[int, Tuple[RectSet, np.ndarray]] = {}

    def true_counts(self, queries: RectSet) -> np.ndarray:
        """Exact result sizes for ``queries`` (cached per workload)."""
        key = id(queries)
        cached = self._truth_cache.get(key)
        if cached is not None and cached[0] is queries:
            OBS.add("oracle.cache_hits")
            return cached[1]
        OBS.add("oracle.queries", len(queries))
        with OBS.timer("oracle.exact_counts"):
            counts = self._oracle.counts(queries)
        self._truth_cache[key] = (queries, counts)
        return counts

    def evaluate(
        self,
        estimator: SelectivityEstimator,
        queries: RectSet,
    ) -> ErrorSummary:
        """Error summary of ``estimator`` on ``queries``."""
        estimates = estimator.estimate_many(queries)
        return error_summary(self.true_counts(queries), estimates)

    def evaluate_technique(
        self,
        technique: str,
        queries: RectSet,
        n_buckets: int,
        **build_kwargs,
    ) -> Tuple[ErrorSummary, float]:
        """Build + evaluate; returns (errors, build_seconds)."""
        built = timed_build(technique, self.data, n_buckets,
                            **build_kwargs)
        return self.evaluate(built.estimator, queries), \
            built.build_seconds

    def evaluate_sweep(
        self,
        techniques: Sequence[str],
        queries: RectSet,
        n_buckets: int,
        *,
        checkpoint_dir: Union[str, Path, None] = None,
        **build_kwargs,
    ) -> Dict[str, ErrorSummary]:
        """Evaluate several techniques, checkpointing each as it lands.

        With ``checkpoint_dir``, every finished technique's error
        summary is written through :class:`repro.storage.CheckpointStore`
        (atomic, checksummed); a killed sweep restarted with the same
        arguments resumes from the last completed technique.  The store
        is fingerprinted over the sweep parameters, so a checkpoint
        directory left over from a different sweep raises rather than
        contaminating results.
        """
        store = None
        if checkpoint_dir is not None:
            # Deferred import: repro.storage pulls in the resilience
            # fault sites, which the plain evaluation path never needs.
            from ..storage.checkpoint import (
                CheckpointStore,
                config_fingerprint,
            )

            fingerprint = config_fingerprint(
                {
                    "techniques": list(techniques),
                    "n_buckets": n_buckets,
                    "n_data": len(self.data),
                    "n_queries": len(queries),
                    "build_kwargs": {
                        k: repr(v) for k, v in sorted(build_kwargs.items())
                    },
                }
            )
            store = CheckpointStore(checkpoint_dir, fingerprint)

        results: Dict[str, ErrorSummary] = {}
        for technique in techniques:
            if store is not None:
                cached = store.load(technique)
                if cached is not None:
                    results[technique] = ErrorSummary(**cached)
                    continue
            summary, _ = self.evaluate_technique(
                technique, queries, n_buckets, **build_kwargs
            )
            results[technique] = summary
            if store is not None:
                store.save(
                    technique,
                    {
                        "average_relative_error":
                            summary.average_relative_error,
                        "mean_per_query_error":
                            summary.mean_per_query_error,
                        "median_per_query_error":
                            summary.median_per_query_error,
                        "rmse": summary.rmse,
                        "n_queries": summary.n_queries,
                    },
                )
        return results

"""Technique factory and experiment runner.

Builds any of the paper's techniques by name with fair space accounting,
measures preprocessing time (the paper's second metric), computes exact
ground truth once per workload via the counting oracle, and reduces
estimates to error summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from ..core.minskew import MinSkewPartitioner
from ..counting import ExactCountOracle
from ..estimators import (
    BucketEstimator,
    FractalEstimator,
    SampleEstimator,
    SelectivityEstimator,
    UniformEstimator,
)
from ..geometry import RectSet
from ..obs import OBS
from ..partitioners import (
    EquiAreaPartitioner,
    EquiCountPartitioner,
    FixedGridPartitioner,
    RTreePartitioner,
)
from .metrics import ErrorSummary, error_summary
from .space import paper_sample_size

#: All technique names, in the paper's reporting order, plus the
#: fixed-grid control histogram ("Grid") added by this reproduction.
ALL_TECHNIQUES = (
    "Min-Skew",
    "Equi-Count",
    "Equi-Area",
    "R-Tree",
    "Sample",
    "Uniform",
    "Fractal",
    "Grid",
)

#: The techniques shown in Figures 8–9 after Uniform and Fractal are
#: dropped for being uncompetitive.
COMPETITIVE_TECHNIQUES = (
    "Min-Skew",
    "Equi-Count",
    "Equi-Area",
    "R-Tree",
    "Sample",
)


def build_estimator(
    technique: str,
    rects: RectSet,
    n_buckets: int,
    *,
    n_regions: int = 10_000,
    refinements: int = 0,
    split_policy: str = "marginal",
    rtree_method: str = "insert",
    seed: int = 0,
) -> SelectivityEstimator:
    """Construct a technique by its paper name.

    Bucket-based techniques receive ``n_buckets``; Sample receives the
    paper's liberal allocation (four rectangles per bucket of budget);
    Uniform and Fractal use constant space regardless.
    """
    if technique == "Min-Skew":
        partitioner = MinSkewPartitioner(
            n_buckets,
            n_regions=n_regions,
            refinements=refinements,
            split_policy=split_policy,
        )
        return BucketEstimator.build(partitioner, rects)
    if technique == "Equi-Area":
        return BucketEstimator.build(EquiAreaPartitioner(n_buckets), rects)
    if technique == "Equi-Count":
        return BucketEstimator.build(EquiCountPartitioner(n_buckets),
                                     rects)
    if technique == "R-Tree":
        return BucketEstimator.build(
            RTreePartitioner(n_buckets, method=rtree_method), rects
        )
    if technique == "Sample":
        return SampleEstimator(
            rects, paper_sample_size(n_buckets), seed=seed
        )
    if technique == "Uniform":
        return UniformEstimator(rects)
    if technique == "Fractal":
        return FractalEstimator(rects)
    if technique == "Grid":
        return BucketEstimator.build(FixedGridPartitioner(n_buckets),
                                     rects)
    raise ValueError(
        f"unknown technique {technique!r}; known: {ALL_TECHNIQUES}"
    )


#: Techniques whose summary is a bucket partitioning (and can therefore
#: be maintained live through a
#: :class:`~repro.core.maintenance.MaintainedHistogram`).
BUCKET_TECHNIQUES = (
    "Min-Skew",
    "Equi-Count",
    "Equi-Area",
    "R-Tree",
    "Grid",
)


def build_partitioner(
    technique: str,
    n_buckets: int,
    *,
    n_regions: int = 10_000,
    refinements: int = 0,
    split_policy: str = "marginal",
    rtree_method: str = "insert",
):
    """Construct a bucket technique's partitioner by its paper name.

    The partitioner (rather than a built estimator) is what the
    maintenance layer needs: a
    :class:`~repro.core.maintenance.MaintainedHistogram` re-runs it on
    every refresh.  Only the techniques in :data:`BUCKET_TECHNIQUES`
    have one — Sample, Uniform, and Fractal summarise without buckets
    and raise here.
    """
    if technique == "Min-Skew":
        return MinSkewPartitioner(
            n_buckets,
            n_regions=n_regions,
            refinements=refinements,
            split_policy=split_policy,
        )
    if technique == "Equi-Area":
        return EquiAreaPartitioner(n_buckets)
    if technique == "Equi-Count":
        return EquiCountPartitioner(n_buckets)
    if technique == "R-Tree":
        return RTreePartitioner(n_buckets, method=rtree_method)
    if technique == "Grid":
        return FixedGridPartitioner(n_buckets)
    raise ValueError(
        f"technique {technique!r} has no bucket partitioner; "
        f"choose from {BUCKET_TECHNIQUES}"
    )


def _sweep_task(
    task: Tuple[str, RectSet, RectSet, int, Dict[str, object]],
) -> Tuple[str, np.ndarray, float]:
    """One technique's build + batch estimation (worker side).

    Module-level so it pickles into a ``ProcessPoolExecutor``; returns
    the raw estimates (not the error summary) so the parent can reduce
    against its cached ground truth — the reduction is then identical
    whether the sweep ran with 1 worker or 8.
    """
    technique, data, queries, n_buckets, build_kwargs = task
    built = timed_build(technique, data, n_buckets, **build_kwargs)
    estimates = built.estimator.estimate_many(queries)
    return technique, estimates, built.build_seconds


def _summary_payload(summary: ErrorSummary) -> Dict[str, object]:
    """The checkpoint payload of one technique's error summary."""
    return {
        "average_relative_error": summary.average_relative_error,
        "mean_per_query_error": summary.mean_per_query_error,
        "median_per_query_error": summary.median_per_query_error,
        "rmse": summary.rmse,
        "n_queries": summary.n_queries,
    }


@dataclass
class BuildResult:
    """An estimator plus how long it took to construct."""

    estimator: SelectivityEstimator
    build_seconds: float


def timed_build(
    technique: str, rects: RectSet, n_buckets: int, **kwargs
) -> BuildResult:
    """Build a technique and measure its preprocessing time."""
    start = time.perf_counter()
    with OBS.timer(f"build.{technique}"):
        estimator = build_estimator(technique, rects, n_buckets, **kwargs)
    elapsed = time.perf_counter() - start
    return BuildResult(estimator, elapsed)


class ExperimentRunner:
    """Shared ground truth and evaluation for one dataset.

    Computes exact counts lazily per workload (keyed by the workload's
    object identity) so sweeps that reuse a query set never pay for the
    oracle twice.
    """

    def __init__(self, data: RectSet) -> None:
        self.data = data
        self._oracle = ExactCountOracle(data)
        self._truth_cache: Dict[int, Tuple[RectSet, np.ndarray]] = {}

    def true_counts(self, queries: RectSet) -> np.ndarray:
        """Exact result sizes for ``queries`` (cached per workload)."""
        key = id(queries)
        cached = self._truth_cache.get(key)
        if cached is not None and cached[0] is queries:
            OBS.add("oracle.cache_hits")
            return cached[1]
        OBS.add("oracle.queries", len(queries))
        with OBS.timer("oracle.exact_counts"):
            counts = self._oracle.counts(queries)
        self._truth_cache[key] = (queries, counts)
        return counts

    def evaluate(
        self,
        estimator: SelectivityEstimator,
        queries: RectSet,
    ) -> ErrorSummary:
        """Error summary of ``estimator`` on ``queries``."""
        estimates = estimator.estimate_many(queries)
        return error_summary(self.true_counts(queries), estimates)

    def evaluate_technique(
        self,
        technique: str,
        queries: RectSet,
        n_buckets: int,
        **build_kwargs,
    ) -> Tuple[ErrorSummary, float]:
        """Build + evaluate; returns (errors, build_seconds)."""
        built = timed_build(technique, self.data, n_buckets,
                            **build_kwargs)
        return self.evaluate(built.estimator, queries), \
            built.build_seconds

    def evaluate_sweep(
        self,
        techniques: Sequence[str],
        queries: RectSet,
        n_buckets: int,
        *,
        checkpoint_dir: Union[str, Path, None] = None,
        workers: int = 1,
        **build_kwargs,
    ) -> Dict[str, ErrorSummary]:
        """Evaluate several techniques, checkpointing each as it lands.

        With ``checkpoint_dir``, every finished technique's error
        summary is written through :class:`repro.storage.CheckpointStore`
        (atomic, checksummed); a killed sweep restarted with the same
        arguments resumes from the last completed technique.  The store
        is fingerprinted over the sweep parameters, so a checkpoint
        directory left over from a different sweep raises rather than
        contaminating results.

        With ``workers > 1`` the per-technique builds and batch
        estimations fan out over
        :func:`repro.serving.parallel_map`; workers return raw
        estimate arrays and the parent reduces them against its cached
        ground truth, so the returned summaries (and their dict order)
        are byte-identical to a ``workers=1`` sweep.  Worker metrics
        merge into :data:`repro.obs.OBS` in technique order.
        Checkpoints are written after the parallel batch completes
        (serial sweeps still checkpoint technique-by-technique).
        """
        store = None
        if checkpoint_dir is not None:
            # Deferred import: repro.storage pulls in the resilience
            # fault sites, which the plain evaluation path never needs.
            from ..storage.checkpoint import (
                CheckpointStore,
                config_fingerprint,
            )

            fingerprint = config_fingerprint(
                {
                    "techniques": list(techniques),
                    "n_buckets": n_buckets,
                    "n_data": len(self.data),
                    "n_queries": len(queries),
                    "build_kwargs": {
                        k: repr(v) for k, v in sorted(build_kwargs.items())
                    },
                }
            )
            store = CheckpointStore(checkpoint_dir, fingerprint)

        results: Dict[str, ErrorSummary] = {}
        if workers > 1:
            # Deferred import: repro.serving depends on the estimator
            # and resilience layers; the serial path never needs it.
            from ..serving import parallel_map

            pending = []
            for technique in techniques:
                cached = store.load(technique) if store is not None \
                    else None
                if cached is not None:
                    results[technique] = ErrorSummary(**cached)
                else:
                    pending.append(technique)
            tasks = [
                (technique, self.data, queries, n_buckets,
                 dict(build_kwargs))
                for technique in pending
            ]
            for technique, estimates, _secs in parallel_map(
                _sweep_task, tasks, workers=workers
            ):
                summary = error_summary(
                    self.true_counts(queries), estimates
                )
                results[technique] = summary
                if store is not None:
                    store.save(technique, _summary_payload(summary))
            # dict order must match the requested technique order, not
            # the cached-vs-computed split above
            return {t: results[t] for t in techniques}
        for technique in techniques:
            if store is not None:
                cached = store.load(technique)
                if cached is not None:
                    results[technique] = ErrorSummary(**cached)
                    continue
            summary, _ = self.evaluate_technique(
                technique, queries, n_buckets, **build_kwargs
            )
            results[technique] = summary
            if store is not None:
                store.save(technique, _summary_payload(summary))
        return results

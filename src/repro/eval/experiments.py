"""The paper's experiments as reusable functions.

Each function reproduces one quantitative artifact of Section 5 and
returns plain records (lists of dicts) that the report module renders and
the benchmark suite asserts on:

=============================  =======================================
Function                       Paper artifact
=============================  =======================================
:func:`error_vs_qsize`         Figure 8 (error vs QSize, 100 buckets)
:func:`error_vs_buckets`       Figure 9 (error vs bucket count)
:func:`error_vs_regions`       Figure 10(a)/(b) (Min-Skew region sweep)
:func:`progressive_refinement` Figure 11 (error vs refinement count)
:func:`construction_times`     Table 1 (preprocessing time)
=============================  =======================================

Dataset sizes and query counts default to scaled-down values so the suite
runs in CI time; pass the paper-scale parameters for full fidelity (see
EXPERIMENTS.md for both sets of numbers).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.minskew import MinSkewPartitioner
from ..estimators import BucketEstimator
from ..geometry import RectSet
from ..workload import point_queries, range_queries
from .runner import (
    COMPETITIVE_TECHNIQUES,
    ExperimentRunner,
    build_estimator,
    timed_build,
)

Record = Dict[str, object]


def error_vs_qsize(
    data: RectSet,
    *,
    techniques: Sequence[str] = COMPETITIVE_TECHNIQUES,
    qsizes: Sequence[float] = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25),
    n_buckets: int = 100,
    n_queries: int = 2_000,
    n_regions: int = 10_000,
    seed: int = 42,
    rtree_method: str = "insert",
) -> List[Record]:
    """Figure 8: relative error as a function of query size.

    One record per (technique, qsize): the estimator is built once per
    technique and evaluated on every workload.
    """
    runner = ExperimentRunner(data)
    workloads = {
        q: range_queries(data, q, n_queries, seed=seed + i)
        for i, q in enumerate(qsizes)
    }
    records: List[Record] = []
    for technique in techniques:
        built = timed_build(
            technique,
            data,
            n_buckets,
            n_regions=n_regions,
            rtree_method=rtree_method,
            seed=seed,
        )
        for qsize, queries in workloads.items():
            errors = runner.evaluate(built.estimator, queries)
            records.append(
                {
                    "technique": technique,
                    "qsize": qsize,
                    "n_buckets": n_buckets,
                    "error": errors.average_relative_error,
                    "build_seconds": built.build_seconds,
                }
            )
    return records


def error_vs_buckets(
    data: RectSet,
    *,
    techniques: Sequence[str] = COMPETITIVE_TECHNIQUES,
    bucket_counts: Sequence[int] = (50, 100, 200, 400, 750),
    qsizes: Sequence[float] = (0.05, 0.25),
    n_queries: int = 2_000,
    n_regions: int = 10_000,
    seed: int = 42,
    rtree_method: str = "insert",
) -> List[Record]:
    """Figure 9: relative error as a function of the bucket budget.

    The paper plots two panels (QSize 5 % and 25 %); one record per
    (technique, bucket count, qsize).
    """
    runner = ExperimentRunner(data)
    workloads = {
        q: range_queries(data, q, n_queries, seed=seed + i)
        for i, q in enumerate(qsizes)
    }
    records: List[Record] = []
    for technique in techniques:
        for n_buckets in bucket_counts:
            built = timed_build(
                technique,
                data,
                n_buckets,
                n_regions=n_regions,
                rtree_method=rtree_method,
                seed=seed,
            )
            for qsize, queries in workloads.items():
                errors = runner.evaluate(built.estimator, queries)
                records.append(
                    {
                        "technique": technique,
                        "qsize": qsize,
                        "n_buckets": n_buckets,
                        "error": errors.average_relative_error,
                        "build_seconds": built.build_seconds,
                    }
                )
    return records


def error_vs_regions(
    data: RectSet,
    *,
    region_counts: Sequence[int] = (
        100, 400, 1_000, 4_000, 10_000, 30_000
    ),
    qsizes: Sequence[float] = (0.05, 0.25),
    n_buckets: int = 100,
    n_queries: int = 2_000,
    seed: int = 42,
) -> List[Record]:
    """Figures 10(a)/(b): Min-Skew sensitivity to the region count.

    On real-life-like data errors fall then flatten (10a); on the
    extreme corner-skewed Charminar data the large-query error *rises*
    with very fine grids (10b) — the effect progressive refinement
    repairs.
    """
    runner = ExperimentRunner(data)
    workloads = {
        q: range_queries(data, q, n_queries, seed=seed + i)
        for i, q in enumerate(qsizes)
    }
    records: List[Record] = []
    for n_regions in region_counts:
        built = timed_build(
            "Min-Skew", data, n_buckets, n_regions=n_regions, seed=seed
        )
        for qsize, queries in workloads.items():
            errors = runner.evaluate(built.estimator, queries)
            records.append(
                {
                    "technique": "Min-Skew",
                    "qsize": qsize,
                    "n_buckets": n_buckets,
                    "n_regions": n_regions,
                    "error": errors.average_relative_error,
                    "build_seconds": built.build_seconds,
                }
            )
    return records


def progressive_refinement(
    data: RectSet,
    *,
    refinement_counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
    n_regions: int = 30_000,
    qsize: float = 0.25,
    n_buckets: int = 100,
    n_queries: int = 2_000,
    seed: int = 42,
    baseline_regions: Optional[Sequence[int]] = None,
) -> List[Record]:
    """Figure 11: error vs number of refinements for large queries.

    ``baseline_regions`` optionally adds the "minimum achievable by
    picking the correct region size" reference line of the figure: the
    plain Min-Skew error minimised over those region counts is attached
    to every record as ``baseline_error``.
    """
    runner = ExperimentRunner(data)
    queries = range_queries(data, qsize, n_queries, seed=seed)

    baseline_error: Optional[float] = None
    if baseline_regions:
        candidates = []
        for regions in baseline_regions:
            built = timed_build(
                "Min-Skew", data, n_buckets, n_regions=regions, seed=seed
            )
            errors = runner.evaluate(built.estimator, queries)
            candidates.append(errors.average_relative_error)
        baseline_error = min(candidates)

    records: List[Record] = []
    for refinements in refinement_counts:
        start = time.perf_counter()
        partitioner = MinSkewPartitioner(
            n_buckets, n_regions=n_regions, refinements=refinements
        )
        estimator = BucketEstimator.build(partitioner, data)
        build_seconds = time.perf_counter() - start
        errors = runner.evaluate(estimator, queries)
        records.append(
            {
                "technique": "Min-Skew",
                "refinements": refinements,
                "qsize": qsize,
                "n_buckets": n_buckets,
                "n_regions": n_regions,
                "error": errors.average_relative_error,
                "baseline_error": baseline_error,
                "build_seconds": build_seconds,
            }
        )
    return records


def point_query_error(
    data: RectSet,
    *,
    techniques: Sequence[str] = COMPETITIVE_TECHNIQUES,
    n_buckets: int = 100,
    n_queries: int = 2_000,
    n_regions: int = 10_000,
    seed: int = 42,
    rtree_method: str = "insert",
) -> List[Record]:
    """Point-query accuracy (Section 3.1's zero-extent special case).

    A point query is the hardest regime for every technique: no bucket
    is ever fully contained, so the entire answer rides on the local
    uniformity assumption.  One record per technique.
    """
    runner = ExperimentRunner(data)
    queries = point_queries(data, n_queries, seed=seed)
    records: List[Record] = []
    for technique in techniques:
        built = timed_build(
            technique,
            data,
            n_buckets,
            n_regions=n_regions,
            rtree_method=rtree_method,
            seed=seed,
        )
        errors = runner.evaluate(built.estimator, queries)
        records.append(
            {
                "technique": technique,
                "qsize": 0.0,
                "n_buckets": n_buckets,
                "error": errors.average_relative_error,
                "build_seconds": built.build_seconds,
            }
        )
    return records


def construction_times(
    datasets: Dict[str, RectSet],
    *,
    techniques: Sequence[str] = (
        "Min-Skew", "Equi-Area", "Equi-Count", "R-Tree", "Uniform"
    ),
    bucket_counts: Sequence[int] = (100, 750),
    n_regions: int = 10_000,
    rtree_method: str = "insert",
) -> List[Record]:
    """Table 1: preprocessing time per (technique, dataset, buckets).

    ``datasets`` maps a label (the paper uses input sizes: "50K",
    "400K") to the rectangles.  Estimation quality is not measured here;
    only construction is timed.
    """
    records: List[Record] = []
    for label, data in datasets.items():
        for technique in techniques:
            for n_buckets in bucket_counts:
                start = time.perf_counter()
                build_estimator(
                    technique,
                    data,
                    n_buckets,
                    n_regions=n_regions,
                    rtree_method=rtree_method,
                )
                elapsed = time.perf_counter() - start
                records.append(
                    {
                        "technique": technique,
                        "dataset": label,
                        "input_size": len(data),
                        "n_buckets": n_buckets,
                        "build_seconds": elapsed,
                    }
                )
    return records

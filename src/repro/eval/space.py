"""Space accounting (paper Section 5.4).

"The space overhead of each of the bucket-based techniques is eight times
the number of buckets ...  The Sample technique requires half that since
it needs to only store the bounding box of each sample rectangle.
Consequently, in terms of space overhead, 2n rectangles for the Sample
technique correspond to n buckets ...  However, in the following
experiments, we liberally give Sample twice the fair amount", i.e. four
sample rectangles per bucket of budget.

All experiment code sizes techniques through these helpers so the
comparison stays fair (or deliberately Sample-favouring, as published).
"""

from __future__ import annotations

from ..estimators.bucket_estimator import WORDS_PER_BUCKET
from ..estimators.sampling import WORDS_PER_SAMPLE

#: The paper grants Sample twice its fair space.
SAMPLE_LIBERAL_FACTOR = 2


def words_for_buckets(n_buckets: int) -> int:
    """Word budget consumed by ``n_buckets`` buckets."""
    if n_buckets < 0:
        raise ValueError("n_buckets must be non-negative")
    return WORDS_PER_BUCKET * n_buckets


def buckets_for_words(words: int) -> int:
    """Largest bucket count fitting in ``words``."""
    if words < 0:
        raise ValueError("words must be non-negative")
    return words // WORDS_PER_BUCKET


def fair_sample_size(n_buckets: int) -> int:
    """Sample size with the same footprint as ``n_buckets`` buckets."""
    return words_for_buckets(n_buckets) // WORDS_PER_SAMPLE


def paper_sample_size(n_buckets: int) -> int:
    """The paper's liberal allocation: twice the fair sample size."""
    return SAMPLE_LIBERAL_FACTOR * fair_sample_size(n_buckets)

"""Typed error hierarchy for the whole library.

Every failure the library can *recover from* — a corrupt histogram
artifact, a transient IO fault, an exhausted per-call budget, a
degenerate query rectangle — is raised as a :class:`ReproError`
subclass, so callers can tell recoverable degradation apart from
programming bugs with one ``except ReproError`` clause, and the
resilience layer (:mod:`repro.resilience`) can route each class to the
right policy: retry what is :attr:`~ReproError.retryable`, fall back to
a coarser estimator on the rest, and surface the remainder to the user
as a one-line actionable message (:attr:`~ReproError.hint`).

Two design rules keep the hierarchy backward compatible:

* validation errors also derive from :class:`ValueError`, so code (and
  tests) written against the pre-hierarchy API keep working;
* storage errors derive from the matching OS-level class
  (:class:`FileNotFoundError` / :class:`OSError`), so generic file
  handling still catches them.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ValidationError",
    "GeometryError",
    "EmptyInputError",
    "EstimationError",
    "EstimatorFailedError",
    "FallbackExhaustedError",
    "ShardWorkerError",
    "OverloadedError",
    "DeadlineError",
    "StorageError",
    "ArtifactMissingError",
    "ArtifactCorruptError",
    "TransientIOError",
    "CheckpointError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class of every recoverable library error.

    Attributes
    ----------
    retryable:
        Whether retrying the same operation may succeed (transient IO
        faults are; corrupt artifacts and invalid inputs are not).
    hint:
        One-line remedy shown by the CLI after the error message
        (``"regenerate the file with repro-spatial ..."``).
    """

    retryable: bool = False

    def __init__(self, message: str, *, hint: Optional[str] = None) -> None:
        super().__init__(message)
        self.hint: str = hint or ""


# ----------------------------------------------------------------------
# input validation
# ----------------------------------------------------------------------
class ValidationError(ReproError, ValueError):
    """Invalid caller-supplied input (never retryable)."""


class GeometryError(ValidationError):
    """A rectangle is geometrically invalid: NaN/inf coordinates or an
    inverted extent (``x2 < x1`` / ``y2 < y1``).  Zero-area rectangles
    are *valid* — a point query is a degenerate rectangle."""


class EmptyInputError(ValidationError):
    """An operation that needs at least one rectangle got an empty set."""


# ----------------------------------------------------------------------
# estimation pipeline
# ----------------------------------------------------------------------
class EstimationError(ReproError):
    """An estimator could not produce a usable estimate."""


class EstimatorFailedError(EstimationError):
    """One estimator in a fallback chain failed (poisoned summary,
    non-finite result, injected fault); the chain degrades to the next
    link."""


class FallbackExhaustedError(EstimationError):
    """Every link of a fallback chain failed for one query."""


class ShardWorkerError(EstimationError):
    """A shard worker process died, wedged past its reply deadline, or
    reported a per-request failure.  Retryable: the pool respawns the
    worker (replaying its write-ahead log), so the same request is
    expected to succeed on a fresh process; a shard that keeps failing
    is quarantined by the router and served degraded instead."""

    retryable = True


class OverloadedError(EstimationError):
    """The serving front door shed this request instead of queueing it
    unboundedly: the pending queue hit its admission bound, or the
    ingress circuit breaker is open after repeated dispatch failures.
    Retryable by design — the shed exists so a backed-up tier drains
    instead of accumulating latency, and a later attempt is expected
    to be admitted."""

    retryable = True


class DeadlineError(ReproError):
    """A per-call step budget was exhausted before the call finished."""


# ----------------------------------------------------------------------
# storage and persistence
# ----------------------------------------------------------------------
class StorageError(ReproError):
    """Base class for persistence failures."""


class ArtifactMissingError(StorageError, FileNotFoundError):
    """A dataset/histogram/checkpoint file does not exist."""


class ArtifactCorruptError(StorageError):
    """An artifact exists but fails its checksum, magic, or parse —
    the crash-safe reader refuses to return partial data."""


class TransientIOError(StorageError, IOError):
    """A (possibly injected) transient IO fault; safe to retry."""

    retryable = True


class CheckpointError(StorageError):
    """A checkpoint store cannot be resumed (config fingerprint
    mismatch or unwritable directory)."""


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class InjectedFault(ReproError):
    """A generic failure raised by the fault-injection harness at sites
    where no more specific error class applies."""

"""Simulated TIGER road data (substitution for the paper's NJ Road set).

The paper evaluates on the TIGER/Line *NJ Road* dataset: the 414 442 road
line segments of New Jersey, reduced to their bounding boxes.  The raw
Census files are not available offline, so this module synthesises a road
network with the same statistical character and exposes its segment MBRs:

* **Population clusters** — cities with Zipf-distributed sizes placed in
  the space; road density follows population (real road density tracks
  settlement).
* **Highway backbone** — a minimum-spanning-tree of the cities plus a few
  redundancy edges, drawn as gently-curved polylines chopped into
  segments: the long-distance corridors that connect clusters in real
  TIGER data.
* **Arterial grids** — Manhattan-style street grids around each city,
  sized by population: the dense urban cores.
* **Local roads** — short, randomly-oriented segments scattered with a
  density that decays away from the nearest city: suburban and rural
  fill.

The result is *moderately* skewed placement (dense cores, connected
corridors, thin rural coverage) with small, thin, axis-diverse MBRs —
exactly the features the paper's experiments exercise on NJ Road (errors
fall smoothly with region count, Figure 10(a), unlike the extreme
corner-skew of Charminar in Figure 10(b)).  The tests verify these
distributional properties.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..geometry import Rect, RectSet
from .synthetic import SeedLike, _as_rng

#: Size of the real NJ Road dataset, for full-scale runs.
NJ_ROAD_N = 414_442

#: Default simulation space (abstract units; aspect ratio ~ New Jersey's
#: tall-and-narrow bounding box).
NJ_SPACE = Rect(0.0, 0.0, 7_000.0, 10_000.0)


def _mst_edges(points: np.ndarray) -> List[Tuple[int, int]]:
    """Minimum spanning tree edges over 2-D points (Prim, O(k²))."""
    k = points.shape[0]
    if k <= 1:
        return []
    in_tree = np.zeros(k, dtype=np.bool_)
    in_tree[0] = True
    best_dist = ((points - points[0]) ** 2).sum(axis=1)
    best_from = np.zeros(k, dtype=np.int64)
    edges: List[Tuple[int, int]] = []
    for _ in range(k - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        nxt = int(np.argmin(candidates))
        edges.append((int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        dist_new = ((points - points[nxt]) ** 2).sum(axis=1)
        closer = dist_new < best_dist
        best_dist = np.where(closer, dist_new, best_dist)
        best_from = np.where(closer, nxt, best_from)
    return edges


def _chop_polyline(
    vertices: np.ndarray, segment_length: float
) -> np.ndarray:
    """Split a polyline into segments of roughly ``segment_length``.

    Returns an ``(M, 4)`` array of segment endpoints (x1, y1, x2, y2) —
    unordered ends, not yet MBRs.
    """
    segments = []
    for a, b in zip(vertices[:-1], vertices[1:]):
        span = np.linalg.norm(b - a)
        pieces = max(1, int(math.ceil(span / segment_length)))
        ts = np.linspace(0.0, 1.0, pieces + 1)
        pts = a[np.newaxis, :] + ts[:, np.newaxis] * (b - a)[np.newaxis, :]
        segments.append(np.hstack((pts[:-1], pts[1:])))
    return np.vstack(segments) if segments else np.empty((0, 4))


def _segments_to_rects(endpoints: np.ndarray, bounds: Rect) -> np.ndarray:
    """Convert segment endpoints to clipped MBR coordinate rows."""
    x1 = np.minimum(endpoints[:, 0], endpoints[:, 2])
    x2 = np.maximum(endpoints[:, 0], endpoints[:, 2])
    y1 = np.minimum(endpoints[:, 1], endpoints[:, 3])
    y2 = np.maximum(endpoints[:, 1], endpoints[:, 3])
    x1 = np.clip(x1, bounds.x1, bounds.x2)
    x2 = np.clip(x2, bounds.x1, bounds.x2)
    y1 = np.clip(y1, bounds.y1, bounds.y2)
    y2 = np.clip(y2, bounds.y1, bounds.y2)
    return np.column_stack((x1, y1, x2, y2))


def nj_road_like(
    n: int = 50_000,
    *,
    bounds: Rect = NJ_SPACE,
    n_cities: int = 24,
    highway_frac: float = 0.06,
    arterial_frac: float = 0.34,
    seed: SeedLike = 1992,
) -> RectSet:
    """Simulated NJ-Road segment MBRs.

    Parameters
    ----------
    n:
        Number of segment bounding boxes to return (pass
        :data:`NJ_ROAD_N` for the full published scale).
    bounds:
        The simulation space.
    n_cities:
        Number of population clusters.
    highway_frac, arterial_frac:
        Fractions of the segment budget spent on the backbone and on the
        urban grids; the rest becomes local roads.
    seed:
        RNG seed (fixed default so the dataset is reproducible).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if highway_frac + arterial_frac >= 1.0:
        raise ValueError("highway_frac + arterial_frac must be < 1")
    gen = _as_rng(seed)

    # --- population clusters -----------------------------------------
    margin = 0.06
    cities = np.column_stack(
        (
            gen.uniform(
                bounds.x1 + margin * bounds.width,
                bounds.x2 - margin * bounds.width,
                n_cities,
            ),
            gen.uniform(
                bounds.y1 + margin * bounds.height,
                bounds.y2 - margin * bounds.height,
                n_cities,
            ),
        )
    )
    pop = np.arange(1, n_cities + 1, dtype=np.float64) ** -0.8
    pop /= pop.sum()
    gen.shuffle(pop)

    seg_len = bounds.width / 450.0  # typical road-segment length
    rows: List[np.ndarray] = []

    # --- highway backbone --------------------------------------------
    n_highway = int(n * highway_frac)
    edges = _mst_edges(cities)
    # a few redundancy edges between random city pairs
    extra = max(2, n_cities // 5)
    for _ in range(extra):
        i, j = gen.choice(n_cities, size=2, replace=False)
        edges.append((int(i), int(j)))
    highway_rows: List[np.ndarray] = []
    for a_idx, b_idx in edges:
        a, b = cities[a_idx], cities[b_idx]
        # gentle curve: midpoints jittered perpendicular to the chord
        n_mid = 6
        ts = np.linspace(0.0, 1.0, n_mid + 2)[1:-1]
        chord = b - a
        normal = np.array([-chord[1], chord[0]])
        norm_len = np.linalg.norm(normal)
        if norm_len > 0:
            normal /= norm_len
        amp = 0.03 * np.linalg.norm(chord)
        mids = (
            a[np.newaxis, :]
            + ts[:, np.newaxis] * chord[np.newaxis, :]
            + (gen.normal(0.0, amp, n_mid))[:, np.newaxis]
            * normal[np.newaxis, :]
        )
        vertices = np.vstack((a, mids, b))
        highway_rows.append(_chop_polyline(vertices, seg_len * 1.5))
    highway = np.vstack(highway_rows)
    if highway.shape[0] > n_highway:
        keep = gen.choice(highway.shape[0], size=n_highway, replace=False)
        highway = highway[keep]
    rows.append(highway)

    # --- arterial grids ------------------------------------------------
    n_arterial = int(n * arterial_frac)
    per_city = np.maximum(1, (pop * n_arterial).astype(np.int64))
    arterial_rows: List[np.ndarray] = []
    for c in range(n_cities):
        budget = int(per_city[c])
        radius = (0.02 + 0.10 * pop[c] / pop.max()) * bounds.width
        # a Manhattan grid: streets parallel to the axes with a random
        # city-specific rotation
        n_streets = max(2, int(math.sqrt(budget / 4)))
        theta = gen.uniform(0, math.pi / 2)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        offsets = np.linspace(-radius, radius, n_streets)
        pieces: List[np.ndarray] = []
        for off in offsets:
            # street direction u, offset along v = perpendicular
            for ux, uy in ((cos_t, sin_t), (-sin_t, cos_t)):
                vx, vy = -uy, ux
                start = cities[c] + off * np.array([vx, vy]) \
                    - radius * np.array([ux, uy])
                end = cities[c] + off * np.array([vx, vy]) \
                    + radius * np.array([ux, uy])
                pieces.append(
                    _chop_polyline(np.vstack((start, end)), seg_len)
                )
        grid = np.vstack(pieces)
        if grid.shape[0] > budget:
            keep = gen.choice(grid.shape[0], size=budget, replace=False)
            grid = grid[keep]
        arterial_rows.append(grid)
    rows.append(np.vstack(arterial_rows))

    # --- local roads ----------------------------------------------------
    produced = sum(r.shape[0] for r in rows)
    n_local = max(0, n - produced)
    city_pick = gen.choice(n_cities, size=n_local, p=pop)
    spread = (0.03 + 0.12 * pop[city_pick] / pop.max()) * bounds.width
    centers = cities[city_pick] + gen.normal(
        0.0, 1.0, (n_local, 2)
    ) * spread[:, np.newaxis]
    # mostly axis-aligned short streets with some diagonal jitter
    length = gen.uniform(0.4, 1.6, n_local) * seg_len
    axis_aligned = gen.uniform(0, 1, n_local) < 0.8
    angle = np.where(
        axis_aligned,
        gen.choice([0.0, math.pi / 2], size=n_local),
        gen.uniform(0, math.pi, n_local),
    )
    angle = angle + gen.normal(0.0, 0.05, n_local)
    dx = 0.5 * length * np.cos(angle)
    dy = 0.5 * length * np.sin(angle)
    local = np.column_stack(
        (
            centers[:, 0] - dx,
            centers[:, 1] - dy,
            centers[:, 0] + dx,
            centers[:, 1] + dy,
        )
    )
    rows.append(local)

    endpoints = np.vstack(rows)
    coords = _segments_to_rects(endpoints, bounds)

    # trim or pad to exactly n (padding duplicates random local roads
    # with jitter — negligible at the scales involved)
    if coords.shape[0] > n:
        keep = gen.choice(coords.shape[0], size=n, replace=False)
        coords = coords[keep]
    elif coords.shape[0] < n:
        deficit = n - coords.shape[0]
        idx = gen.choice(coords.shape[0], size=deficit)
        jitter = gen.normal(0.0, seg_len * 0.2, (deficit, 1))
        extra_rows = coords[idx] + jitter
        extra_rows = _segments_to_rects(
            extra_rows[:, [0, 1, 2, 3]], bounds
        )
        # re-sort corners in case jitter inverted an axis
        coords = np.vstack((coords, extra_rows))

    order = gen.permutation(coords.shape[0])
    return RectSet(coords[order], copy=False, validate=True)

"""Named dataset registry.

Benchmarks, examples, and the CLI refer to datasets by the names used in
the paper ("charminar", "nj_road", ...).  The registry maps each name to
its generator so every consumer builds exactly the same distribution for
a given (name, n, seed) triple.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..geometry import RectSet
from .charminar import CHARMINAR_N, charminar
from .sequoia import sequoia_like
from .synthetic import (
    clustered_rects,
    diagonal_rects,
    skewed_rects,
    uniform_rects,
)
from .tiger import NJ_ROAD_N, nj_road_like

#: Generator signature: (n, seed) -> RectSet.
DatasetFactory = Callable[[int, Optional[int]], RectSet]

_REGISTRY: Dict[str, DatasetFactory] = {}
_DEFAULT_SIZES: Dict[str, int] = {}


def register(
    name: str, factory: DatasetFactory, default_n: int
) -> None:
    """Register a dataset generator under ``name``."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"dataset {name!r} is already registered")
    _REGISTRY[key] = factory
    _DEFAULT_SIZES[key] = default_n


def dataset_names() -> List[str]:
    """All registered dataset names, sorted."""
    return sorted(_REGISTRY)


def default_size(name: str) -> int:
    """The paper-scale default size of a registered dataset."""
    key = name.lower()
    if key not in _DEFAULT_SIZES:
        raise KeyError(
            f"unknown dataset {name!r}; known: {dataset_names()}"
        )
    return _DEFAULT_SIZES[key]


def make_dataset(
    name: str, n: Optional[int] = None, seed: Optional[int] = None
) -> RectSet:
    """Build a registered dataset.

    Parameters
    ----------
    name:
        Registered dataset name (case-insensitive); see
        :func:`dataset_names`.
    n:
        Number of rectangles; defaults to the dataset's paper-scale size.
    seed:
        RNG seed; ``None`` uses each generator's fixed default so
        repeated calls agree across processes.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; known: {dataset_names()}"
        )
    if n is None:
        n = _DEFAULT_SIZES[key]
    return _REGISTRY[key](n, seed)


# ----------------------------------------------------------------------
# built-in datasets
# ----------------------------------------------------------------------
def _with_default_seed(factory, default_seed):
    def build(n: int, seed: Optional[int]) -> RectSet:
        return factory(n, seed=default_seed if seed is None else seed)

    return build


register("charminar", _with_default_seed(charminar, 1999), CHARMINAR_N)
register("nj_road", _with_default_seed(nj_road_like, 1992), NJ_ROAD_N)
register("sequoia", _with_default_seed(sequoia_like, 1993), 62_000)
register("uniform", _with_default_seed(uniform_rects, 7), 40_000)
register("skewed", _with_default_seed(skewed_rects, 7), 40_000)
register("clustered", _with_default_seed(clustered_rects, 7), 40_000)
register("diagonal", _with_default_seed(diagonal_rects, 7), 40_000)

"""Dataset generators and persistence: the paper's synthetic families
(Charminar, Zipf size/placement skew) and simulated stand-ins for the
TIGER NJ-Road and Sequoia real-life sets (see DESIGN.md §5)."""

from .charminar import CHARMINAR_N, CHARMINAR_SIDE, CHARMINAR_SPACE, charminar
from .io import load_csv, load_npy, load_rects, save_csv, save_npy
from .registry import (
    dataset_names,
    default_size,
    make_dataset,
    register,
)
from .sequoia import SEQUOIA_SPACE, sequoia_like
from .synthetic import (
    clustered_rects,
    diagonal_rects,
    skewed_rects,
    uniform_rects,
    zipf_positions_2d,
    zipf_values,
)
from .tiger import NJ_ROAD_N, NJ_SPACE, nj_road_like

__all__ = [
    "charminar",
    "CHARMINAR_N",
    "CHARMINAR_SIDE",
    "CHARMINAR_SPACE",
    "nj_road_like",
    "NJ_ROAD_N",
    "NJ_SPACE",
    "sequoia_like",
    "SEQUOIA_SPACE",
    "uniform_rects",
    "skewed_rects",
    "clustered_rects",
    "diagonal_rects",
    "zipf_values",
    "zipf_positions_2d",
    "make_dataset",
    "dataset_names",
    "default_size",
    "register",
    "save_npy",
    "load_npy",
    "save_csv",
    "load_csv",
    "load_rects",
]

"""Simulated Sequoia 2000 landmark data.

The paper cites the Sequoia benchmark dataset as its second real-life set
("results using the other data sets are available in the full paper").
Sequoia's point data are geographic landmarks over California: heavily
coastal/urban-clustered with long sparse inland stretches.  This
generator produces point-like landmark MBRs with that character so the
full experiment matrix can be run on a second "real-life-like" input.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet
from .synthetic import SeedLike, _as_rng

#: Default simulation space (tall strip, like California's bounding box).
SEQUOIA_SPACE = Rect(0.0, 0.0, 6_000.0, 10_000.0)


def sequoia_like(
    n: int = 62_000,
    *,
    bounds: Rect = SEQUOIA_SPACE,
    coastal_frac: float = 0.6,
    n_inland_clusters: int = 14,
    point_extent: float = 2.0,
    seed: SeedLike = 1993,
) -> RectSet:
    """Landmark-style point MBRs: a dense coastal band plus inland clusters.

    Parameters
    ----------
    n:
        Number of landmarks (the real set has ~62 000 points).
    coastal_frac:
        Fraction of landmarks on the "coast" — a curved dense band along
        the left edge of the space.
    n_inland_clusters:
        Number of inland population clusters for the remainder.
    point_extent:
        Landmarks are tiny squares of this side (0 gives true points).
    """
    if not 0.0 <= coastal_frac <= 1.0:
        raise ValueError("coastal_frac must be in [0, 1]")
    gen = _as_rng(seed)

    n_coast = int(round(n * coastal_frac))
    n_inland = n - n_coast

    # coastal band: x follows a curve x(y) with small spread
    y = gen.uniform(bounds.y1, bounds.y2, n_coast)
    t = (y - bounds.y1) / bounds.height
    curve = bounds.x1 + bounds.width * (0.12 + 0.10 * np.sin(2.3 * np.pi * t))
    x = curve + np.abs(gen.normal(0.0, 0.05 * bounds.width, n_coast))

    # inland clusters with Zipf weights
    centers = np.column_stack(
        (
            gen.uniform(
                bounds.x1 + 0.25 * bounds.width, bounds.x2, n_inland_clusters
            ),
            gen.uniform(bounds.y1, bounds.y2, n_inland_clusters),
        )
    )
    weights = np.arange(1, n_inland_clusters + 1, dtype=np.float64) ** -1.1
    weights /= weights.sum()
    pick = gen.choice(n_inland_clusters, size=n_inland, p=weights)
    spread = 0.04 * bounds.width
    inland = centers[pick] + gen.normal(0.0, spread, (n_inland, 2))

    cx = np.concatenate((x, inland[:, 0]))
    cy = np.concatenate((y, inland[:, 1]))
    half = point_extent / 2.0
    np.clip(cx, bounds.x1 + half, bounds.x2 - half, out=cx)
    np.clip(cy, bounds.y1 + half, bounds.y2 - half, out=cy)

    order = gen.permutation(n)
    return RectSet.from_centers(
        cx[order],
        cy[order],
        np.full(n, point_extent),
        np.full(n, point_extent),
    )

"""Dataset persistence: save/load :class:`RectSet` to npy and CSV.

Experiments that sweep many configurations over the same dataset save the
generated rectangles once and reload them, so all techniques see exactly
the same input (and so full-scale datasets need not be regenerated per
run).

:func:`load_rects` is the guarded entry point the CLI and resilience
layer use: it dispatches on the file suffix, announces the
``data.load`` fault-injection site, and converts every failure mode —
missing file, unparseable content, invalid rectangles — into the typed
:mod:`repro.errors` hierarchy with an actionable hint.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ArtifactCorruptError, ArtifactMissingError
from ..geometry import RectSet
from ..resilience.faults import fire

PathLike = Union[str, Path]

_CSV_HEADER = ["x1", "y1", "x2", "y2"]


def save_npy(rects: RectSet, path: PathLike) -> None:
    """Save to a ``.npy`` file holding the ``(N, 4)`` coordinate array."""
    np.save(Path(path), rects.coords)


def load_npy(path: PathLike) -> RectSet:
    """Load a :class:`RectSet` saved with :func:`save_npy`."""
    arr = np.load(Path(path))
    return RectSet(arr, copy=False, validate=True)


def save_csv(rects: RectSet, path: PathLike) -> None:
    """Save to CSV with an ``x1,y1,x2,y2`` header row."""
    with open(Path(path), "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_CSV_HEADER)
        writer.writerows(rects.coords.tolist())


def load_csv(path: PathLike) -> RectSet:
    """Load a :class:`RectSet` from CSV written by :func:`save_csv`.

    Also accepts header-less files whose rows are four floats per line.
    """
    path = Path(path)
    with open(path, newline="") as f:
        reader = csv.reader(f)
        rows = []
        for i, row in enumerate(reader):
            if not row:
                continue
            if i == 0 and row == _CSV_HEADER:
                continue
            if len(row) != 4:
                raise ValueError(
                    f"{path}:{i + 1}: expected 4 columns, got {len(row)}"
                )
            try:
                rows.append([float(v) for v in row])
            except ValueError as exc:
                raise ValueError(f"{path}:{i + 1}: non-numeric value") \
                    from exc
    if not rows:
        return RectSet.empty()
    return RectSet(np.asarray(rows), copy=False, validate=True)


#: Suffixes :func:`load_rects` understands, mapped to their loaders.
_LOADERS = {".npy": load_npy, ".csv": load_csv}


def load_rects(path: PathLike) -> RectSet:
    """Load a rectangle file (``.npy`` or ``.csv``) with typed errors.

    Raises
    ------
    ArtifactMissingError
        ``path`` does not exist (or has an unsupported suffix).
    ArtifactCorruptError
        The file exists but cannot be parsed into valid rectangles.
    """
    fire("data.load")
    path = Path(path)
    loader = _LOADERS.get(path.suffix.lower())
    if loader is None:
        raise ArtifactMissingError(
            f"unsupported dataset file type {path.suffix!r}: {path}",
            hint="supported suffixes: "
                 + ", ".join(sorted(_LOADERS)),
        )
    if not path.exists():
        raise ArtifactMissingError(
            f"dataset file not found: {path}",
            hint="check the path, or generate one with "
                 "repro.data.save_npy/save_csv",
        )
    try:
        return loader(path)
    except (ValueError, OSError) as exc:
        raise ArtifactCorruptError(
            f"corrupt dataset file {path}: {exc}",
            hint="regenerate the file; partial or non-rectangular "
                 "content is rejected",
        ) from exc

"""Dataset persistence: save/load :class:`RectSet` to npy and CSV.

Experiments that sweep many configurations over the same dataset save the
generated rectangles once and reload them, so all techniques see exactly
the same input (and so full-scale datasets need not be regenerated per
run).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from ..geometry import RectSet

PathLike = Union[str, Path]

_CSV_HEADER = ["x1", "y1", "x2", "y2"]


def save_npy(rects: RectSet, path: PathLike) -> None:
    """Save to a ``.npy`` file holding the ``(N, 4)`` coordinate array."""
    np.save(Path(path), rects.coords)


def load_npy(path: PathLike) -> RectSet:
    """Load a :class:`RectSet` saved with :func:`save_npy`."""
    arr = np.load(Path(path))
    return RectSet(arr, copy=False, validate=True)


def save_csv(rects: RectSet, path: PathLike) -> None:
    """Save to CSV with an ``x1,y1,x2,y2`` header row."""
    with open(Path(path), "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_CSV_HEADER)
        writer.writerows(rects.coords.tolist())


def load_csv(path: PathLike) -> RectSet:
    """Load a :class:`RectSet` from CSV written by :func:`save_csv`.

    Also accepts header-less files whose rows are four floats per line.
    """
    path = Path(path)
    with open(path, newline="") as f:
        reader = csv.reader(f)
        rows = []
        for i, row in enumerate(reader):
            if not row:
                continue
            if i == 0 and row == _CSV_HEADER:
                continue
            if len(row) != 4:
                raise ValueError(
                    f"{path}:{i + 1}: expected 4 columns, got {len(row)}"
                )
            try:
                rows.append([float(v) for v in row])
            except ValueError as exc:
                raise ValueError(f"{path}:{i + 1}: non-numeric value") \
                    from exc
    if not rows:
        return RectSet.empty()
    return RectSet(np.asarray(rows), copy=False, validate=True)

"""Synthetic rectangle distributions (paper Section 5.1.2).

The paper "systematically generated several synthetic datasets varying in
size, sparsity, placement skew, and size skew.  Sparsity was controlled by
adjusting the dataset size relative to the total input area.  Size skew
was modeled by generating widths and heights from the Zipf Distribution.
Placement skew was modeled using two-dimensional Zipf distributions."

This module provides those generator families.  Every generator is
deterministic given a seed (or an explicit ``numpy.random.Generator``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..geometry import Rect, RectSet

SeedLike = Union[int, np.random.Generator, None]


def _as_rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Zipf building blocks
# ----------------------------------------------------------------------
def zipf_values(
    n: int,
    z: float,
    vmin: float,
    vmax: float,
    rng: SeedLike = None,
    *,
    n_ranks: int = 1000,
) -> np.ndarray:
    """Draw ``n`` values in ``[vmin, vmax]`` with Zipfian frequencies.

    The value range is discretised into ``n_ranks`` levels; level ``k``
    (1-based) is drawn with probability proportional to ``1 / k**z``, so
    small values are common and large values are rare — the standard way
    histogram papers model *size skew*.  ``z = 0`` degenerates to the
    uniform distribution over the levels.

    Parameters
    ----------
    n:
        Number of samples.
    z:
        Zipf skew parameter (>= 0).
    vmin, vmax:
        Value range (``vmin <= vmax``).
    rng:
        Seed or generator.
    n_ranks:
        Number of discrete levels spanning the range.
    """
    if z < 0:
        raise ValueError("zipf parameter z must be non-negative")
    if vmin > vmax:
        raise ValueError("vmin must not exceed vmax")
    gen = _as_rng(rng)
    ranks = np.arange(1, n_ranks + 1, dtype=np.float64)
    probs = ranks ** (-z)
    probs /= probs.sum()
    chosen = gen.choice(n_ranks, size=n, p=probs)
    levels = np.linspace(vmin, vmax, n_ranks)
    return levels[chosen]


def zipf_positions_2d(
    n: int,
    z: float,
    bounds: Rect,
    rng: SeedLike = None,
    *,
    n_cells: int = 100,
) -> np.ndarray:
    """Draw ``n`` points with two-dimensional Zipfian placement skew.

    Each axis is divided into ``n_cells`` strips; strip ``k`` has
    probability proportional to ``1 / k**z`` and points are uniform
    within their strip, independently per axis.  High ``z`` concentrates
    points towards the lower-left corner of ``bounds``; ``z = 0`` is the
    uniform distribution.

    Returns an ``(n, 2)`` array.
    """
    if z < 0:
        raise ValueError("zipf parameter z must be non-negative")
    gen = _as_rng(rng)
    ranks = np.arange(1, n_cells + 1, dtype=np.float64)
    probs = ranks ** (-z)
    probs /= probs.sum()

    def axis_sample(lo: float, hi: float) -> np.ndarray:
        cell = gen.choice(n_cells, size=n, p=probs)
        width = (hi - lo) / n_cells
        return lo + (cell + gen.uniform(0.0, 1.0, size=n)) * width

    x = axis_sample(bounds.x1, bounds.x2)
    y = axis_sample(bounds.y1, bounds.y2)
    return np.column_stack((x, y))


# ----------------------------------------------------------------------
# dataset families
# ----------------------------------------------------------------------
def uniform_rects(
    n: int,
    *,
    bounds: Rect = Rect(0.0, 0.0, 10_000.0, 10_000.0),
    width: float = 100.0,
    height: float = 100.0,
    seed: SeedLike = None,
) -> RectSet:
    """``n`` identical ``width × height`` rectangles placed uniformly.

    The zero-skew control dataset: the Uniform estimator should be nearly
    exact on it, which the test suite checks.
    Rectangle centers are kept inside ``bounds`` shrunk by half an extent
    so every rectangle lies fully within the space.
    """
    gen = _as_rng(seed)
    cx = gen.uniform(bounds.x1 + width / 2, bounds.x2 - width / 2, n)
    cy = gen.uniform(bounds.y1 + height / 2, bounds.y2 - height / 2, n)
    return RectSet.from_centers(cx, cy, np.full(n, width), np.full(n, height))


def skewed_rects(
    n: int,
    *,
    bounds: Rect = Rect(0.0, 0.0, 10_000.0, 10_000.0),
    placement_z: float = 1.0,
    size_z: float = 1.0,
    min_side: float = 10.0,
    max_side: float = 500.0,
    seed: SeedLike = None,
) -> RectSet:
    """Rectangles with Zipfian placement skew *and* size skew.

    ``placement_z`` controls how strongly centers concentrate towards a
    corner (2-D Zipf per the paper); ``size_z`` controls how heavy the
    size distribution's head of small rectangles is.
    """
    gen = _as_rng(seed)
    centers = zipf_positions_2d(n, placement_z, bounds, gen)
    widths = zipf_values(n, size_z, min_side, max_side, gen)
    heights = zipf_values(n, size_z, min_side, max_side, gen)
    return RectSet.from_centers(
        centers[:, 0], centers[:, 1], widths, heights
    )


def clustered_rects(
    n: int,
    *,
    bounds: Rect = Rect(0.0, 0.0, 10_000.0, 10_000.0),
    n_clusters: int = 8,
    cluster_std_frac: float = 0.03,
    background_frac: float = 0.1,
    width: float = 80.0,
    height: float = 80.0,
    size_jitter: float = 0.5,
    seed: SeedLike = None,
) -> RectSet:
    """Gaussian cluster mixture with a uniform background.

    Cluster weights follow a Zipf law so cluster densities vary — a
    moderate-skew family between ``uniform_rects`` and ``charminar``.

    Parameters
    ----------
    cluster_std_frac:
        Cluster standard deviation as a fraction of the bounds width.
    background_frac:
        Fraction of rectangles placed uniformly over the whole space.
    size_jitter:
        Rect sides are scaled by ``U[1 - j, 1 + j]``.
    """
    if not 0.0 <= background_frac <= 1.0:
        raise ValueError("background_frac must be in [0, 1]")
    gen = _as_rng(seed)
    n_background = int(round(n * background_frac))
    n_clustered = n - n_background

    cluster_centers = np.column_stack(
        (
            gen.uniform(bounds.x1, bounds.x2, n_clusters),
            gen.uniform(bounds.y1, bounds.y2, n_clusters),
        )
    )
    weights = np.arange(1, n_clusters + 1, dtype=np.float64) ** -1.0
    weights /= weights.sum()
    assignment = gen.choice(n_clusters, size=n_clustered, p=weights)
    std = cluster_std_frac * bounds.width
    pts = cluster_centers[assignment] + gen.normal(0.0, std,
                                                   (n_clustered, 2))

    bg = np.column_stack(
        (
            gen.uniform(bounds.x1, bounds.x2, n_background),
            gen.uniform(bounds.y1, bounds.y2, n_background),
        )
    )
    centers = np.vstack((pts, bg))
    np.clip(centers[:, 0], bounds.x1, bounds.x2, out=centers[:, 0])
    np.clip(centers[:, 1], bounds.y1, bounds.y2, out=centers[:, 1])

    scale = gen.uniform(1.0 - size_jitter, 1.0 + size_jitter, n)
    return RectSet.from_centers(
        centers[:, 0], centers[:, 1], width * scale, height * scale
    )


def diagonal_rects(
    n: int,
    *,
    bounds: Rect = Rect(0.0, 0.0, 10_000.0, 10_000.0),
    spread_frac: float = 0.05,
    width: float = 100.0,
    height: float = 100.0,
    seed: SeedLike = None,
) -> RectSet:
    """Rectangles concentrated along the main diagonal.

    An adversarial case for axis-aligned partitionings: no horizontal or
    vertical split isolates the dense band, so it stresses the BSP
    restriction that Min-Skew accepts for tractability.
    """
    gen = _as_rng(seed)
    t = gen.uniform(0.0, 1.0, n)
    spread = spread_frac * bounds.width
    cx = bounds.x1 + t * bounds.width + gen.normal(0.0, spread, n)
    cy = bounds.y1 + t * bounds.height + gen.normal(0.0, spread, n)
    np.clip(cx, bounds.x1, bounds.x2, out=cx)
    np.clip(cy, bounds.y1, bounds.y2, out=cy)
    return RectSet.from_centers(cx, cy, np.full(n, width),
                                np.full(n, height))

"""The Charminar dataset (paper Section 3.3 / 5.1.2, Figure 1).

"It contains 40000 rectangles of identical height and width of 100 units
distributed in a 10000 × 10000 space.  As can be seen, most of the
rectangles are concentrated in the four corners creating areas of varying
levels of spatial densities."  (The name refers to the Charminar monument
with four corner minarets.)

Our generator reproduces the published properties *and* the published
behaviour.  The paper's quantitative claims about this dataset are the
Figure 10(b) anomaly — Min-Skew's large-query error **rises** when the
density grid gets very fine — and its repair by progressive refinement
(Figure 11).  Reproducing both constrains the shape of the distribution:

* four *compact* corner clusters ("those relatively compact areas") with
  different weights and sharp power-law peaks, so that a fine grid
  exposes enormous cell-to-cell variance that soaks up the entire bucket
  budget, while a coarse grid averages the peaks away;
* a *mildly skewed* interior — a handful of broad Gaussian blobs — so
  large queries spanning the middle need buckets there and actually lose
  accuracy when the corners steal them all.

With this profile the reproduction shows the paper's full story: small
queries improve with finer grids; large queries degrade several-fold
beyond ~1 000 regions; progressive refinement recovers most (not all) of
the loss.  All rectangles are identical 100 × 100 squares as published.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry import Rect, RectSet
from .synthetic import SeedLike, _as_rng

#: Published dataset parameters.
CHARMINAR_N = 40_000
CHARMINAR_SIDE = 100.0
CHARMINAR_SPACE = Rect(0.0, 0.0, 10_000.0, 10_000.0)

#: Fraction of rectangles in each corner cluster (lower-left,
#: lower-right, upper-left, upper-right).  Distinct weights create the
#: "varying levels of spatial densities" of Figure 5.
DEFAULT_CORNER_WEIGHTS = (0.259, 0.196, 0.147, 0.098)
#: Fraction of rectangles in the mildly-skewed interior.
DEFAULT_INTERIOR_WEIGHT = 0.3


def charminar(
    n: int = CHARMINAR_N,
    *,
    bounds: Rect = CHARMINAR_SPACE,
    side: float = CHARMINAR_SIDE,
    corner_weights: Sequence[float] = DEFAULT_CORNER_WEIGHTS,
    interior_weight: float = DEFAULT_INTERIOR_WEIGHT,
    cluster_extent_frac: float = 0.10,
    concentration: float = 3.0,
    n_interior_blobs: int = 6,
    blob_std_frac: float = 0.09,
    seed: SeedLike = 1999,
) -> RectSet:
    """Generate a Charminar-style dataset.

    Parameters
    ----------
    n:
        Number of rectangles (paper default 40 000).
    bounds:
        The input space (paper default 10 000 × 10 000).
    side:
        Rectangle width and height (paper default 100).
    corner_weights:
        Fractions assigned to the four corners; together with
        ``interior_weight`` they must sum to 1.
    interior_weight:
        Fraction of rectangles in the interior blob mixture.
    cluster_extent_frac:
        How far a corner cluster reaches into the space, as a fraction
        of the bounds extent (compact corners: default 10 %).
    concentration:
        Power-law exponent of the fall-off from each corner: the
        distance fraction is ``u**concentration`` for ``u ~ U[0, 1]``,
        so larger values pile rectangles tighter into the corner.
    n_interior_blobs:
        Number of broad Gaussian clusters forming the interior.
    blob_std_frac:
        Blob standard deviation as a fraction of the bounds width.
    seed:
        RNG seed (defaults to a fixed value so ``charminar()`` is the
        same dataset everywhere — tests, examples, and benchmarks).
    """
    weights = list(corner_weights) + [interior_weight]
    if len(corner_weights) != 4:
        raise ValueError("exactly four corner weights are required")
    if abs(sum(weights) - 1.0) > 1e-9:
        raise ValueError(f"weights must sum to 1, got {sum(weights)}")
    if not 0.0 < cluster_extent_frac <= 0.5:
        raise ValueError("cluster_extent_frac must be in (0, 0.5]")
    if n_interior_blobs < 1:
        raise ValueError("n_interior_blobs must be at least 1")

    gen = _as_rng(seed)
    counts = np.floor(np.asarray(weights) * n).astype(np.int64)
    counts[0] += n - counts.sum()  # absorb rounding into the densest corner

    corners = (
        (bounds.x1, bounds.y1, +1.0, +1.0),  # lower-left
        (bounds.x2, bounds.y1, -1.0, +1.0),  # lower-right
        (bounds.x1, bounds.y2, +1.0, -1.0),  # upper-left
        (bounds.x2, bounds.y2, -1.0, -1.0),  # upper-right
    )
    extent_x = cluster_extent_frac * bounds.width
    extent_y = cluster_extent_frac * bounds.height
    half = side / 2.0

    xs = []
    ys = []
    for (corner_x, corner_y, dir_x, dir_y), count in zip(corners, counts):
        # power-law fall-off from the corner, independently per axis
        ux = gen.uniform(0.0, 1.0, count) ** concentration
        uy = gen.uniform(0.0, 1.0, count) ** concentration
        xs.append(corner_x + dir_x * ux * extent_x)
        ys.append(corner_y + dir_y * uy * extent_y)

    # interior: Zipf-weighted broad Gaussian blobs (mild placement skew)
    n_interior = int(counts[4])
    inset_x = 0.15 * bounds.width
    inset_y = 0.15 * bounds.height
    blob_centers = np.column_stack(
        (
            gen.uniform(bounds.x1 + inset_x, bounds.x2 - inset_x,
                        n_interior_blobs),
            gen.uniform(bounds.y1 + inset_y, bounds.y2 - inset_y,
                        n_interior_blobs),
        )
    )
    blob_weights = np.arange(1, n_interior_blobs + 1,
                             dtype=np.float64) ** -0.7
    blob_weights /= blob_weights.sum()
    pick = gen.choice(n_interior_blobs, size=n_interior, p=blob_weights)
    std = blob_std_frac * bounds.width
    blob_pts = blob_centers[pick] + gen.normal(0.0, std, (n_interior, 2))
    xs.append(blob_pts[:, 0])
    ys.append(blob_pts[:, 1])

    cx = np.concatenate(xs)
    cy = np.concatenate(ys)
    # keep every rectangle fully inside the space
    np.clip(cx, bounds.x1 + half, bounds.x2 - half, out=cx)
    np.clip(cy, bounds.y1 + half, bounds.y2 - half, out=cy)

    # shuffle so record order carries no cluster information (samples
    # taken from a prefix would otherwise be biased)
    order = gen.permutation(n)
    return RectSet.from_centers(
        cx[order], cy[order], np.full(n, side), np.full(n, side)
    )

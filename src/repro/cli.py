"""Command-line interface.

``repro-spatial`` (or ``python -m repro``) exposes the library's main
flows: inspecting datasets, building and rendering partitionings,
evaluating techniques, and regenerating the paper's figures and tables::

    repro-spatial datasets
    repro-spatial show --dataset charminar
    repro-spatial partition --dataset charminar --technique Min-Skew \
        --buckets 50
    repro-spatial evaluate --dataset nj_road --n 40000 --qsize 0.05
    repro-spatial fig8 --dataset nj_road --n 40000
    repro-spatial table1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .data import dataset_names, make_dataset
from .errors import ReproError
from .eval import ALL_TECHNIQUES, ExperimentRunner, experiments, report, \
    timed_build
from .geometry import RectSet
from .grid import DensityGrid
from .viz import render_dataset, render_partition
from .workload import range_queries


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="charminar", choices=dataset_names(),
        help="input dataset (default: charminar)",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="dataset size (default: paper scale for the dataset)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="dataset RNG seed (default: the dataset's fixed seed)",
    )
    parser.add_argument(
        "--dataset-file", default=None, metavar="PATH",
        help="load rectangles from a .npy/.csv file instead of "
             "generating --dataset",
    )


def _load_data(args: argparse.Namespace) -> RectSet:
    """The command's input: a file when given, a generator otherwise."""
    if getattr(args, "dataset_file", None):
        from .data import load_rects

        return load_rects(args.dataset_file)
    return make_dataset(args.dataset, args.n, args.seed)


def _cmd_datasets(_: argparse.Namespace) -> int:
    for name in dataset_names():
        print(name)
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    data = _load_data(args)
    print(f"# {args.dataset}: {len(data)} rectangles, MBR {data.mbr()}")
    print(render_dataset(data))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    data = _load_data(args)
    built = timed_build(
        args.technique, data, args.buckets, n_regions=args.regions
    )
    estimator = built.estimator
    print(
        f"# {args.technique} on {args.dataset}: "
        f"{args.buckets} buckets, built in {built.build_seconds:.2f}s"
    )
    buckets = getattr(estimator, "buckets", None)
    if buckets is None:
        if args.save_histogram:
            raise ReproError(
                f"technique {args.technique!r} has no bucket "
                "histogram to save",
                hint="use a bucket-based technique such as Min-Skew",
            )
        print("(technique has no bucket layout to draw)")
        return 0
    if args.save_histogram:
        from .storage.persist import save_buckets

        save_buckets(args.save_histogram, buckets)
        print(f"# saved {len(buckets)} buckets to {args.save_histogram}")
    print(render_partition(buckets, data.mbr()))
    grid = DensityGrid.from_rects(data, 64, 64)
    from .core import grouping_skew_on_boxes

    skew = grouping_skew_on_boxes(grid, [b.bbox for b in buckets])
    print(f"# spatial skew on a 64x64 grid: {skew:.1f}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    estimator = None
    if args.histogram:
        # Load before the (possibly expensive) dataset build so a bad
        # path fails fast.
        from .estimators import BucketEstimator
        from .storage.persist import load_buckets

        estimator = BucketEstimator(
            load_buckets(args.histogram), name="histogram"
        )
    data = _load_data(args)
    runner = ExperimentRunner(data)
    queries = range_queries(data, args.qsize, args.queries, seed=42)
    print(
        f"# {args.dataset} n={len(data)} qsize={args.qsize} "
        f"queries={args.queries} buckets={args.buckets}"
    )
    if estimator is not None:
        errors = runner.evaluate(estimator, queries)
        print(
            f"{'histogram':11s} "
            f"ARE={errors.average_relative_error:7.3f} "
            f"({estimator.n_buckets} buckets from {args.histogram})"
        )
        return 0
    techniques = [args.technique] if args.technique else ALL_TECHNIQUES
    for technique in techniques:
        errors, build_s = runner.evaluate_technique(
            technique, queries, args.buckets, n_regions=args.regions
        )
        print(
            f"{technique:11s} ARE={errors.average_relative_error:7.3f} "
            f"build={build_s:7.2f}s"
        )
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    data = _load_data(args)
    records = experiments.error_vs_qsize(
        data, n_buckets=args.buckets, n_queries=args.queries,
        rtree_method=args.rtree_method,
    )
    print(report.format_series(
        records, x_key="qsize",
        title=f"Figure 8: error vs QSize ({args.dataset}, "
              f"{args.buckets} buckets)",
    ))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    data = _load_data(args)
    records = experiments.error_vs_buckets(
        data, n_queries=args.queries, rtree_method=args.rtree_method,
    )
    for qsize in (0.05, 0.25):
        subset = [r for r in records if r["qsize"] == qsize]
        print(report.format_series(
            subset, x_key="n_buckets",
            title=f"Figure 9: error vs buckets "
                  f"({args.dataset}, QSize={qsize:.0%})",
        ))
        print()
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    data = _load_data(args)
    records = experiments.error_vs_regions(
        data, n_queries=args.queries, n_buckets=args.buckets,
    )
    print(report.format_series(
        records, series_key="qsize", x_key="n_regions",
        title=f"Figure 10: Min-Skew error vs regions ({args.dataset})",
    ))
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    data = _load_data(args)
    records = experiments.progressive_refinement(
        data, n_queries=args.queries, n_buckets=args.buckets,
        n_regions=args.regions,
    )
    print(report.format_table(
        records,
        ["refinements", "error", "build_seconds"],
    ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.feedback:
        return _cmd_tune_feedback(args)
    from .core import tune_min_skew

    data = _load_data(args)
    result = tune_min_skew(
        data, args.buckets, n_queries=args.queries, truth=args.truth
    )
    print(f"# tuned Min-Skew for {args.dataset} "
          f"(buckets={args.buckets}, truth={args.truth})")
    print(f"{'regions':>8s} {'refinements':>12s} {'error':>8s} "
          f"{'build':>7s}")
    for c in result.candidates:
        marker = " <-- chosen" if (
            c.n_regions == result.n_regions
            and c.refinements == result.refinements
        ) else ""
        print(f"{c.n_regions:>8d} {c.refinements:>12d} "
              f"{c.error:>8.3f} {c.build_seconds:>6.2f}s{marker}")
    return 0


def _format_tuned_line(tech: dict) -> "tuple[str, bool]":
    """One ``engine="tuned"`` summary line plus its pass/fail verdict.

    Fails on a bit-for-bit mismatch with the fresh rebuild, on a
    conservation violation, or when feedback tuning did not strictly
    beat the static control at equal bucket budget.
    """
    tuned = tech["tuned"]
    line = (
        f"{tech['technique']:11s} "
        f"ops={tuned['ops']:5d} "
        f"(q={tuned['queries']} i={tuned['inserts']} "
        f"d={tuned['deletes']}) "
        f"passes={tuned['tuning_passes']:2d} "
        f"pairs={tuned['tuning_pairs']:2d} "
        f"epoch={tuned['final_epoch']:4d} "
        f"buckets={tuned['n_buckets_tuned']}/"
        f"{tuned['n_buckets_static']} "
        f"ARE static={tuned['are_static']:.3f} "
        f"tuned={tuned['are_tuned']:.3f} "
        f"({tuned['improvement']:+.3f})"
    )
    ok = True
    if not tuned["tuned_matches"]:
        line += " STALE-SERVING MISMATCH"
        ok = False
    if not tuned["count_conserved"]:
        line += " COUNT-NOT-CONSERVED"
        ok = False
    if tuned["improvement"] <= 0:
        line += " NO-IMPROVEMENT"
        ok = False
    return line, ok


def _cmd_tune_feedback(args: argparse.Namespace) -> int:
    """``repro-spatial tune --feedback``: the self-tuning benchmark.

    Replays the drifting live stream against a feedback-tuned
    histogram and its static control (the ``engine="tuned"`` bench
    cell), writes ``BENCH_<name>.json``, and fails unless the tuned
    histogram strictly beat the static one with bit-identical serving.
    """
    from .obs.bench import TUNING_CONFIG, write_bench

    config = TUNING_CONFIG
    changes: dict = {
        "name": args.name or "tuned",
        "datasets": (
            (args.dataset, args.n if args.n is not None else 2_000),
        ),
        "n_buckets": args.buckets,
        "n_queries": args.queries,
    }
    if args.regions is not None:
        changes["n_regions"] = args.regions
    if args.ops is not None:
        if args.ops < 1:
            raise SystemExit("--ops must be >= 1")
        changes["live_ops"] = args.ops
    if args.tune_every is not None:
        if args.tune_every < 0:
            raise SystemExit("--tune-every must be >= 0")
        changes["tune_every"] = args.tune_every
    if args.drift_x is not None:
        changes["live_drift_xy"] = (
            args.drift_x,
            args.drift_y if args.drift_y is not None
            else config.live_drift_xy[1],
        )
    elif args.drift_y is not None:
        changes["live_drift_xy"] = (
            config.live_drift_xy[0], args.drift_y
        )
    config = config.replace(**changes)

    doc, path = write_bench(
        config, out_dir=args.out, deterministic=args.deterministic
    )
    consistent = True
    print(f"# tune {config.name}: {doc['total_seconds']:.1f}s total")
    for ds in doc["datasets"]:
        print(f"## {ds['dataset']} n={ds['n']}")
        for tech in ds["techniques"]:
            line, ok = _format_tuned_line(tech)
            consistent = consistent and ok
            print(line)
    print(f"wrote {path}")
    if not consistent:
        print("feedback tuning gate violated: served answers differ "
              "from a freshly built engine over the tuned buckets, "
              "counts were not conserved, or the tuned histogram did "
              "not beat the static control", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs.bench import FULL_CONFIG, QUICK_CONFIG, SERVING_CONFIG, \
        TUNING_CONFIG, write_bench

    if args.full:
        config = FULL_CONFIG
    elif args.serving:
        config = SERVING_CONFIG
    elif args.tuning:
        config = TUNING_CONFIG
    else:
        config = QUICK_CONFIG
    changes = {}
    if args.name:
        changes["name"] = args.name
    if args.buckets is not None:
        changes["n_buckets"] = args.buckets
    if args.regions is not None:
        changes["n_regions"] = args.regions
    if args.queries is not None:
        changes["n_queries"] = args.queries
    if args.engine is not None:
        changes["engine"] = args.engine
    if args.workers is not None:
        if args.workers < 1:
            raise SystemExit("--workers must be >= 1")
        changes["workers"] = args.workers
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("--shards must be >= 1")
        changes["n_shards"] = args.shards
    if args.shard_workers is not None:
        if args.shard_workers < 1:
            raise SystemExit("--shard-workers must be >= 1")
        changes["shard_workers"] = args.shard_workers
    if args.concurrency is not None:
        if args.concurrency < 1:
            raise SystemExit("--concurrency must be >= 1")
        changes["concurrency"] = args.concurrency
    if args.max_batch is not None:
        if args.max_batch < 1:
            raise SystemExit("--max-batch must be >= 1")
        changes["server_max_batch"] = args.max_batch
    if args.window is not None:
        if args.window < 1:
            raise SystemExit("--window must be >= 1")
        changes["server_window"] = args.window
    if args.datasets:
        pairs = []
        for spec in args.datasets.split(","):
            name, _, size = spec.partition(":")
            if name not in dataset_names():
                raise SystemExit(
                    f"unknown dataset {name!r}; known: {dataset_names()}"
                )
            try:
                pairs.append((name, int(size) if size else None))
            except ValueError:
                raise SystemExit(
                    f"invalid dataset size {size!r} in {spec!r}; "
                    "expected name:size, e.g. charminar:6000"
                ) from None
        changes["datasets"] = tuple(
            (name, size if size is not None else dict(config.datasets)
             .get(name, 6_000))
            for name, size in pairs
        )
    if changes:
        config = config.replace(**changes)
    if config.engine in ("sharded", "server", "tuned"):
        from .eval import BUCKET_TECHNIQUES
        kept = tuple(t for t in config.techniques
                     if t in BUCKET_TECHNIQUES)
        if not kept:
            raise SystemExit(
                f"engine={config.engine!r} needs at least one "
                f"bucket-based technique; choose from "
                f"{BUCKET_TECHNIQUES}"
            )
        if kept != config.techniques:
            config = config.replace(techniques=kept)

    doc, path = write_bench(
        config,
        out_dir=args.out,
        checkpoint_dir=args.checkpoint_dir,
        deterministic=args.deterministic,
    )
    overhead = doc["overhead"]
    print(f"# bench {config.name}: {doc['total_seconds']:.1f}s total")
    print(
        f"# obs overhead/call disabled: "
        f"counter {overhead['disabled_counter_ns']:.0f}ns, "
        f"timer {overhead['disabled_timer_ns']:.0f}ns"
    )
    for ds in doc["datasets"]:
        print(f"## {ds['dataset']} n={ds['n']} "
              f"truth={ds['truth_seconds']:.2f}s")
        for tech in ds["techniques"]:
            acc = tech["accuracy"]
            line = (
                f"{tech['technique']:11s} "
                f"build={tech['build_seconds']:7.2f}s "
                f"estimate={tech['estimate_seconds']:6.3f}s "
                f"ARE={acc['average_relative_error']:7.3f}"
            )
            if "speedup" in tech:
                line += (
                    f" scalar={tech['scalar_seconds']:6.3f}s "
                    f"speedup={tech['speedup']:6.1f}x"
                )
                if not tech.get("scalar_matches", True):
                    line += " MISMATCH"
            if "sharded" in tech:
                shard = tech["sharded"]
                line += (
                    f" shards={shard['n_shards']} "
                    f"fanout={shard['avg_shards_per_query']:.2f}/q"
                )
                if not shard["sharded_matches"]:
                    line += " SHARD-MISMATCH"
                if not shard["owner_only_invalidation"]:
                    line += " CROSS-SHARD-INVALIDATION"
            if "server" in tech:
                server = tech["server"]
                line += (
                    f" qps={server['batched_qps']:8.0f} "
                    f"p50={server['p50_ms']:.1f}ms "
                    f"p99={server['p99_ms']:.1f}ms "
                    f"batch={server['avg_batch']:.1f} "
                    f"vs-single={server['speedup']:.2f}x"
                )
                if not server["server_matches"]:
                    line += " SERVER-MISMATCH"
            if "tuned" in tech:
                tuned = tech["tuned"]
                line += (
                    f" passes={tuned['tuning_passes']} "
                    f"vs-static={tuned['improvement']:+.3f}"
                )
                if not tuned["tuned_matches"]:
                    line += " TUNED-MISMATCH"
            print(line)
    print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro-spatial serve``: the micro-batching TCP front door.

    Builds the estimator (or the sharded scatter-gather tier with
    ``--shards``), binds the asyncio server, prints the bound address,
    and serves until interrupted.  The sharded tier accepts
    ``insert``/``delete`` ops over the wire; a direct engine is
    read-only and answers mutations with a typed error.
    """
    import asyncio

    from .serving import FrontDoor

    data = _load_data(args)
    closer = None
    if args.shards > 0:
        from .eval import BUCKET_TECHNIQUES, build_partitioner
        from .serving import ShardedHistogram, ShardRouter

        if args.technique not in BUCKET_TECHNIQUES:
            raise SystemExit(
                f"--shards needs a bucket-based technique; choose "
                f"from {BUCKET_TECHNIQUES}"
            )
        sharded = ShardedHistogram.build(
            data,
            n_shards=args.shards,
            n_buckets=args.buckets,
            partitioner_factory=lambda quota: build_partitioner(
                args.technique, quota, n_regions=args.regions
            ),
            n_regions=args.regions,
        )
        router = ShardRouter(sharded, workers=args.shard_workers)
        backend = router
        closer = router.close
        detail = f"{args.shards}-shard tier"
    else:
        from .eval import build_estimator
        from .serving import BatchServingEngine

        backend = BatchServingEngine(build_estimator(
            args.technique, data, args.buckets,
            n_regions=args.regions,
        ))
        detail = "direct engine (read-only)"

    door = FrontDoor(
        backend,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_steps=args.wait_steps,
        max_pending=args.max_pending,
    )

    async def run() -> None:
        await door.start()
        print(
            f"# front door on {door.host}:{door.port} — "
            f"{args.technique} over {len(data)} rects, {detail}, "
            f"max_batch={args.max_batch}, "
            f"max_wait_steps={args.wait_steps}",
            flush=True,
        )
        await door.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        if closer is not None:
            closer()
    return 0


def _cmd_serve_live(args: argparse.Namespace) -> int:
    from .obs.bench import LIVE_CONFIG, TUNING_CONFIG, write_bench

    if args.tune and args.sharded is not None:
        raise SystemExit("--tune and --sharded are mutually exclusive")
    config = TUNING_CONFIG if args.tune else LIVE_CONFIG
    changes = {}
    if args.tune:
        if args.tune_every is not None:
            if args.tune_every < 0:
                raise SystemExit("--tune-every must be >= 0")
            changes["tune_every"] = args.tune_every
        drift = list(config.live_drift_xy)
        if args.drift_x is not None:
            drift[0] = args.drift_x
        if args.drift_y is not None:
            drift[1] = args.drift_y
        changes["live_drift_xy"] = tuple(drift)
    if args.name:
        changes["name"] = args.name
    if args.buckets is not None:
        changes["n_buckets"] = args.buckets
    if args.regions is not None:
        changes["n_regions"] = args.regions
    if args.queries is not None:
        changes["n_queries"] = args.queries
    if args.ops is not None:
        if args.ops < 1:
            raise SystemExit("--ops must be >= 1")
        changes["live_ops"] = args.ops
    if args.seed is not None:
        changes["live_seed"] = args.seed
    if args.sharded is not None:
        if args.sharded < 1:
            raise SystemExit("--sharded must be >= 1")
        changes["engine"] = "sharded"
        changes["n_shards"] = args.sharded
    if args.shard_workers is not None:
        if args.shard_workers < 1:
            raise SystemExit("--shard-workers must be >= 1")
        changes["shard_workers"] = args.shard_workers
    if args.dataset is not None:
        name, _, size = args.dataset.partition(":")
        if name not in dataset_names():
            raise SystemExit(
                f"unknown dataset {name!r}; known: {dataset_names()}"
            )
        try:
            n = int(size) if size else dict(config.datasets).get(
                name, 4_000
            )
        except ValueError:
            raise SystemExit(
                f"invalid dataset size {size!r}; expected name:size, "
                "e.g. charminar:4000"
            ) from None
        changes["datasets"] = ((name, n),)
    if changes:
        config = config.replace(**changes)

    doc, path = write_bench(
        config, out_dir=args.out, deterministic=args.deterministic
    )
    consistent = True
    print(f"# serve-live {config.name}: "
          f"{doc['total_seconds']:.1f}s total")
    for ds in doc["datasets"]:
        print(f"## {ds['dataset']} n={ds['n']}")
        for tech in ds["techniques"]:
            acc = tech["accuracy"]
            if "sharded" in tech:
                shard = tech["sharded"]
                bumps = ",".join(
                    str(b) for b in shard["shard_epoch_bumps"]
                )
                line = (
                    f"{tech['technique']:11s} "
                    f"ops={shard['ops']:5d} "
                    f"mutations={shard['mutations']:4d} "
                    f"shards={shard['n_shards']} "
                    f"epoch-bumps=[{bumps}] "
                    f"fanout={shard['avg_shards_per_query']:.2f}/q "
                    f"ARE={acc['average_relative_error']:7.3f}"
                )
                if not shard["sharded_matches"]:
                    line += " SHARD-MISMATCH"
                    consistent = False
                if not shard["owner_only_invalidation"]:
                    line += " CROSS-SHARD-INVALIDATION"
                    consistent = False
                print(line)
                continue
            if "tuned" in tech:
                line, ok = _format_tuned_line(tech)
                consistent = consistent and ok
                print(line)
                continue
            live = tech["live"]
            line = (
                f"{tech['technique']:11s} "
                f"ops={live['ops']:5d} "
                f"(q={live['queries']} i={live['inserts']} "
                f"d={live['deletes']}) "
                f"refreshes={live['refreshes']:2d} "
                f"epoch={live['final_epoch']:4d} "
                f"flushes={live['cache_flushes']:3d} "
                f"ARE={acc['average_relative_error']:7.3f}"
            )
            if not live["live_matches"]:
                line += " STALE-SERVING MISMATCH"
                consistent = False
            print(line)
    print(f"wrote {path}")
    if not consistent:
        if config.engine == "sharded":
            message = (
                "serving consistency violated: sharded answers "
                "diverged from the single-engine reference or a "
                "mutation invalidated a non-owning shard"
            )
        elif config.engine == "tuned":
            message = (
                "feedback tuning gate violated: served answers "
                "differ from a freshly built engine over the tuned "
                "buckets, counts were not conserved, or the tuned "
                "histogram did not beat the static control"
            )
        else:
            message = (
                "epoch consistency violated: served answers differ "
                "from a freshly built engine"
            )
        print(message, file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from .resilience.chaos import ChaosConfig, format_report, run_chaos

    if args.kill_shard_workers:
        return _cmd_chaos_worker_kill(args)
    options = {}
    if args.budget is not None:
        options["call_budget_steps"] = args.budget
    config = ChaosConfig(
        dataset=args.dataset,
        n=args.n if args.n is not None else 2_000,
        n_buckets=args.buckets,
        n_regions=args.regions,
        n_queries=args.queries,
        qsize=args.qsize,
        plan_seed=args.plan_seed,
        fault_rate=args.fault_rate,
        **options,
    )
    report_ = run_chaos(config)
    if args.format == "json":
        print(_json.dumps(report_.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_report(report_))
    return 0 if report_.survival == 1.0 else 1


def _cmd_chaos_worker_kill(args: argparse.Namespace) -> int:
    """``chaos --kill-shard-workers``: SIGKILL workers mid-stream.

    Exit 0 iff every query batch survived AND the recovered tier is
    bit-identical to the union reference (answers and per-shard state
    digests) — the fault-tolerance acceptance gate.
    """
    import json as _json

    from .resilience.chaos import (
        WorkerKillConfig,
        format_worker_kill_report,
        run_worker_kill_chaos,
    )

    config = WorkerKillConfig(
        dataset=args.dataset,
        n=args.n if args.n is not None else 1_200,
        n_shards=args.shards,
        n_buckets=args.buckets,
        n_regions=min(args.regions, 512),
        workers=args.shard_workers,
        n_batches=max(1, args.queries // 25),
        batch_size=25,
        qsize=args.qsize,
        plan_seed=args.plan_seed,
        kill_rate=args.fault_rate,
        through_server=args.through_server,
    )
    report_ = run_worker_kill_chaos(config)
    if args.format == "json":
        print(_json.dumps(report_.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_worker_kill_report(report_))
    return 0 if report_.passed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        DEFAULT_CONFIG,
        PROJECT_RULES,
        RULES,
        apply_baseline,
        lint_paths,
        lint_project,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )
    from .errors import ValidationError

    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code}  {rule.summary}")
        for code, project_rule in sorted(PROJECT_RULES.items()):
            print(f"{code}  [project]  {project_rule.summary}")
        return 0

    known = set(RULES) | set(PROJECT_RULES)
    config = DEFAULT_CONFIG
    if args.rules is not None:
        wanted = frozenset(
            part.strip().upper()
            for part in args.rules.split(",") if part.strip()
        )
        if not wanted:
            raise ValidationError(
                f"--rules {args.rules!r} selects no rules",
                hint="pass comma-separated codes, e.g. "
                     "--rules DET001,EPOCH001",
            )
        unknown = wanted - known
        if unknown:
            raise ValidationError(
                f"unknown rule(s): {', '.join(sorted(unknown))}",
                hint=f"known rules: {', '.join(sorted(known))}",
            )
        project_only = wanted & set(PROJECT_RULES)
        if project_only and not args.project:
            raise ValidationError(
                f"rule(s) {', '.join(sorted(project_only))} need the "
                f"whole-program pass",
                hint="add --project",
            )
        config = config.replace(select=wanted)

    paths = args.paths or ["src"]
    if args.project:
        result = lint_project(paths, config)
    else:
        result = lint_paths(paths, config)

    if args.write_baseline:
        count = write_baseline(result, args.write_baseline)
        print(f"wrote {count} fingerprint"
              f"{'s' if count != 1 else ''} to {args.write_baseline}")
        return 0
    if args.baseline:
        result = apply_baseline(result, load_baseline(args.baseline))

    if args.sarif:
        Path(args.sarif).write_text(
            render_sarif(result) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    datasets = {
        f"{args.small // 1000}K": make_dataset(
            args.dataset, args.small, args.seed
        ),
        f"{args.large // 1000}K": make_dataset(
            args.dataset, args.large, args.seed
        ),
    }
    records = experiments.construction_times(
        datasets, rtree_method=args.rtree_method
    )
    print(report.format_table(
        records,
        ["technique", "dataset", "n_buckets", "build_seconds"],
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-spatial",
        description="Min-Skew spatial selectivity estimation "
                    "(SIGMOD 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available datasets") \
        .set_defaults(func=_cmd_datasets)

    p = sub.add_parser("show", help="render a dataset as ASCII density")
    _add_dataset_args(p)
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser("partition", help="build and draw a partitioning")
    _add_dataset_args(p)
    p.add_argument("--technique", default="Min-Skew",
                   choices=list(ALL_TECHNIQUES))
    p.add_argument("--buckets", type=int, default=50)
    p.add_argument("--regions", type=int, default=10_000)
    p.add_argument(
        "--save-histogram", default=None, metavar="PATH",
        help="persist the bucket histogram as a checksummed artifact",
    )
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("evaluate", help="estimate a workload, print ARE")
    _add_dataset_args(p)
    p.add_argument("--technique", default=None,
                   choices=list(ALL_TECHNIQUES))
    p.add_argument("--buckets", type=int, default=100)
    p.add_argument("--regions", type=int, default=10_000)
    p.add_argument("--qsize", type=float, default=0.05)
    p.add_argument("--queries", type=int, default=2_000)
    p.add_argument(
        "--histogram", default=None, metavar="PATH",
        help="evaluate a histogram saved with "
             "'partition --save-histogram' instead of building one",
    )
    p.set_defaults(func=_cmd_evaluate)

    for name, func, extra in (
        ("fig8", _cmd_fig8, {"buckets": 100}),
        ("fig9", _cmd_fig9, {}),
        ("fig10", _cmd_fig10, {"buckets": 100}),
        ("fig11", _cmd_fig11, {"buckets": 100, "regions": 30_000}),
    ):
        p = sub.add_parser(name, help=f"reproduce paper {name}")
        _add_dataset_args(p)
        p.add_argument("--queries", type=int, default=2_000)
        p.add_argument("--rtree-method", default="insert",
                       choices=("insert", "str"))
        if "buckets" in extra:
            p.add_argument("--buckets", type=int,
                           default=extra["buckets"])
        if "regions" in extra:
            p.add_argument("--regions", type=int,
                           default=extra["regions"])
        p.set_defaults(func=func)

    p = sub.add_parser(
        "tune",
        help="auto-select Min-Skew regions/refinements (the paper's "
             "open problem), or with --feedback run the query-feedback "
             "self-tuning benchmark against a static control",
    )
    _add_dataset_args(p)
    p.add_argument("--buckets", type=int, default=100)
    p.add_argument("--queries", type=int, default=400)
    p.add_argument("--truth", default="exact",
                   choices=("exact", "sample"))
    p.add_argument(
        "--feedback", action="store_true",
        help="replay a drifting live stream against a feedback-tuned "
             "histogram and a static control, write BENCH_<name>.json, "
             "and fail unless tuning strictly improved ARE with "
             "bit-identical serving",
    )
    p.add_argument("--regions", type=int, default=None,
                   help="Min-Skew grid regions (--feedback only)")
    p.add_argument("--ops", type=int, default=None,
                   help="drifting stream length (--feedback only)")
    p.add_argument("--tune-every", type=int, default=None,
                   help="operations between tuning passes "
                        "(--feedback only; 0 disables tuning)")
    p.add_argument("--drift-x", type=float, default=None,
                   help="per-insert x bias as a fraction of the MBR "
                        "width (--feedback only)")
    p.add_argument("--drift-y", type=float, default=None,
                   help="per-insert y bias as a fraction of the MBR "
                        "height (--feedback only)")
    p.add_argument("--name", default=None,
                   help="artifact name (--feedback only)")
    p.add_argument("--out", default=".",
                   help="output directory (--feedback only)")
    p.add_argument(
        "--deterministic", action="store_true",
        help="zero all wall-clock fields (--feedback only)",
    )
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "bench",
        help="run the perf-regression workload, write BENCH_<name>.json",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="reduced workload, <60s (the default)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="paper-scale workload (expect several minutes)",
    )
    mode.add_argument(
        "--serving", action="store_true",
        help="serving-tier workload: 10k queries through the sharded "
             "scatter-gather router, differentially gated bit-for-bit "
             "against the single-engine union reference",
    )
    mode.add_argument(
        "--tuning", action="store_true",
        help="self-tuning workload: a drifting live stream served by "
             "a feedback-tuned histogram vs an equal-budget static "
             "control, with the ARE differential and the bit-for-bit "
             "rebuild gate",
    )
    p.add_argument("--name", default=None,
                   help="artifact name (BENCH_<name>.json)")
    p.add_argument(
        "--engine", default=None,
        choices=("scalar", "batch", "sharded", "server", "tuned"),
        help="estimation path: plain per-technique batch call, the "
             "serving engine with cache+index and a measured speedup "
             "vs the scalar loop, the sharded scatter-gather "
             "router gated against the single-engine reference, "
             "the micro-batching TCP front door measuring p50/p99 "
             "latency and the speedup over single-query-per-call "
             "dispatch, or the query-feedback self-tuning cell with "
             "its ARE-vs-static differential",
    )
    p.add_argument(
        "--concurrency", type=int, default=None, metavar="C",
        help="load-generator client processes for engine=server "
             "(default: 4)",
    )
    p.add_argument(
        "--max-batch", type=int, default=None, metavar="B",
        help="micro-batch size cap for engine=server (default: 64)",
    )
    p.add_argument(
        "--window", type=int, default=None, metavar="W",
        help="per-client pipelining window for engine=server "
             "(default: 64)",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the per-technique bench cells "
             "(default: 1, in-process)",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="shard count of the scatter-gather tier "
             "(engine=sharded; default: 4)",
    )
    p.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="router worker processes for the sharded tier "
             "(default: 1, inline)",
    )
    p.add_argument("--out", default=".",
                   help="output directory (default: current directory)")
    p.add_argument("--buckets", type=int, default=None)
    p.add_argument("--regions", type=int, default=None)
    p.add_argument("--queries", type=int, default=None)
    p.add_argument(
        "--datasets", default=None,
        help="comma-separated name:size pairs, e.g. charminar:2000",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist per-cell checkpoints; an interrupted run "
             "resumes from the last completed cell",
    )
    p.add_argument(
        "--deterministic", action="store_true",
        help="zero all wall-clock fields so the artifact depends only "
             "on config and seeds (resume becomes byte-identical)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the micro-batching TCP front door: single-rect "
             "JSON frames in, coalesced engine batches underneath",
    )
    _add_dataset_args(p)
    p.add_argument("--technique", default="Min-Skew",
                   choices=list(ALL_TECHNIQUES))
    p.add_argument("--buckets", type=int, default=50)
    p.add_argument("--regions", type=int, default=10_000)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: 0, pick a free port and "
                        "print it)")
    p.add_argument(
        "--shards", type=int, default=0, metavar="K",
        help="serve through the K-shard scatter-gather tier (accepts "
             "insert/delete ops); 0 = direct engine, read-only "
             "(default: 0)",
    )
    p.add_argument("--shard-workers", type=int, default=1, metavar="N",
                   help="router worker processes for --shards "
                        "(default: 1, inline)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch size cap (default: 64)")
    p.add_argument("--wait-steps", type=int, default=4,
                   help="logical-wait trigger in event-loop passes "
                        "(default: 4; 0 disables)")
    p.add_argument("--max-pending", type=int, default=2048,
                   help="admission bound on queued operations "
                        "(default: 2048)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "serve-live",
        help="replay an interleaved query/insert/delete stream against "
             "maintained histograms through the serving engine; write "
             "BENCH_live.json and fail on any stale-serving mismatch",
    )
    p.add_argument("--name", default=None,
                   help="artifact name (BENCH_<name>.json)")
    p.add_argument(
        "--dataset", default=None, metavar="NAME[:SIZE]",
        help="dataset name:size pair, e.g. charminar:4000",
    )
    p.add_argument("--buckets", type=int, default=None)
    p.add_argument("--regions", type=int, default=None)
    p.add_argument("--queries", type=int, default=None,
                   help="size of the final consistency-check batch")
    p.add_argument("--ops", type=int, default=None,
                   help="length of the interleaved operation stream")
    p.add_argument("--seed", type=int, default=None,
                   help="seed of the interleaved stream")
    p.add_argument(
        "--sharded", type=int, default=None, metavar="K",
        help="serve through the K-shard scatter-gather tier instead "
             "of a single engine; fails on any bit-for-bit mismatch "
             "with the union reference or any cross-shard "
             "invalidation",
    )
    p.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="router worker processes for --sharded "
             "(default: 1, inline)",
    )
    p.add_argument(
        "--tune", action="store_true",
        help="serve a *drifting* stream through a feedback-tuned "
             "histogram against an equal-budget static control; fails "
             "unless tuning strictly improved ARE with bit-identical "
             "serving (mutually exclusive with --sharded)",
    )
    p.add_argument("--tune-every", type=int, default=None,
                   help="operations between tuning passes (--tune "
                        "only; 0 disables tuning)")
    p.add_argument("--drift-x", type=float, default=None,
                   help="per-insert x bias as a fraction of the MBR "
                        "width (--tune only)")
    p.add_argument("--drift-y", type=float, default=None,
                   help="per-insert y bias as a fraction of the MBR "
                        "height (--tune only)")
    p.add_argument("--out", default=".",
                   help="output directory (default: current directory)")
    p.add_argument(
        "--deterministic", action="store_true",
        help="zero all wall-clock fields so the artifact depends only "
             "on config and seeds",
    )
    p.set_defaults(func=_cmd_serve_live)

    p = sub.add_parser(
        "chaos",
        help="run the workload under deterministic fault injection "
             "and report survival",
    )
    p.add_argument("--dataset", default="charminar",
                   choices=dataset_names())
    p.add_argument("--n", type=int, default=None,
                   help="dataset size (default: 2000)")
    p.add_argument("--buckets", type=int, default=40)
    p.add_argument("--regions", type=int, default=2_500)
    p.add_argument("--queries", type=int, default=300)
    p.add_argument("--qsize", type=float, default=0.05)
    p.add_argument("--fault-rate", type=float, default=0.2,
                   help="per-call fault probability (default: 0.2)")
    p.add_argument("--plan-seed", type=int, default=7,
                   help="fault plan RNG seed (default: 7)")
    p.add_argument("--budget", type=int, default=None,
                   help="per-query step budget "
                        "(default: the chain's standard budget)")
    p.add_argument("--kill-shard-workers", action="store_true",
                   help="SIGKILL sharded-tier worker processes "
                        "mid-stream (per --fault-rate) and assert "
                        "100%% request survival plus bit-identical "
                        "post-recovery answers")
    p.add_argument("--shards", type=int, default=4,
                   help="shard count for --kill-shard-workers "
                        "(default: 4)")
    p.add_argument("--shard-workers", type=int, default=2,
                   help="worker processes for --kill-shard-workers "
                        "(default: 2)")
    p.add_argument("--through-server", action="store_true",
                   help="with --kill-shard-workers: serve every "
                        "batch through the micro-batching front door "
                        "over TCP, killing workers while client "
                        "requests are in flight; a client hanging "
                        "past its deadline fails the run")
    p.add_argument("--format", default="text",
                   choices=("text", "json"))
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "lint",
        help="run the repository's AST invariant linter "
             "(per-file DET/NPY/MUT/OBS/API rules; --project adds "
             "the cross-module EPOCH/PICKLE/SEED/ORDER/RES/SUP "
             "pass)",
    )
    p.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format", default="text", choices=("text", "json", "sarif"),
        help="report format (json follows the pinned report schema; "
             "sarif emits SARIF 2.1.0)",
    )
    p.add_argument(
        "--rules", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    p.add_argument(
        "--project", action="store_true",
        help="run the whole-program pass: loads every module, builds "
             "the call graph, and adds the cross-module rules",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="drop findings fingerprinted in this committed baseline",
    )
    p.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="snapshot current findings as a baseline and exit 0",
    )
    p.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("table1", help="reproduce paper Table 1")
    p.add_argument("--dataset", default="nj_road",
                   choices=dataset_names())
    p.add_argument("--small", type=int, default=50_000)
    p.add_argument("--large", type=int, default=400_000)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--rtree-method", default="insert",
                   choices=("insert", "str"))
    p.set_defaults(func=_cmd_table1)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Subcommand failures (bad input, missing files, broken invariants)
    exit non-zero with a one-line message on stderr — a traceback is a
    bug in the CLI, not an error report for the user.
    """
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BrokenPipeError:
        # Downstream consumer (``| head``) closed the pipe; not an error.
        return 0
    except ReproError as exc:
        kind = type(exc).__name__
        line = f"repro-spatial: error: {kind}: {exc}"
        if exc.hint:
            line += f" (hint: {exc.hint})"
        print(line, file=sys.stderr)
        return 1
    except Exception as exc:  # pragma: no cover - format check in tests
        kind = type(exc).__name__
        print(f"repro-spatial: error: {kind}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

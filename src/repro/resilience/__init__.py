"""Resilience layer: deterministic fault injection, guarded
estimation with a fallback chain, budgets, retries, and breakers.

The availability contract: a valid query always gets a finite
estimate; partial failure costs accuracy, never availability — and
every degradation is observable through :data:`repro.obs.OBS` under
the ``resilience.*`` namespace.

Import order note: :mod:`repro.storage.persist` imports
:mod:`~repro.resilience.faults` for its fault-injection sites, so this
package must not import :mod:`repro.storage` (or anything that does)
at module level; :mod:`~repro.resilience.chaos` defers its dataset and
workload imports for the same reason.
"""

from .chaos import (
    ChaosConfig,
    ChaosReport,
    WorkerKillConfig,
    WorkerKillReport,
    format_worker_kill_report,
    run_worker_kill_chaos,
    default_plan,
    format_report,
    run_chaos,
)
from .clock import Deadline, StepClock
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fire,
    installed,
    sites_from_rates,
)
from .guarded import (
    DEFAULT_CALL_BUDGET_STEPS,
    LAST_RESORT_LINK,
    CircuitBreaker,
    FallbackLink,
    GuardedEstimator,
    build_fallback_chain,
)
from .retry import RetryPolicy, with_retry

__all__ = [
    # clock
    "StepClock",
    "Deadline",
    # fault injection
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "fire",
    "active_injector",
    "installed",
    "sites_from_rates",
    # retry
    "RetryPolicy",
    "with_retry",
    # guarded pipeline
    "CircuitBreaker",
    "FallbackLink",
    "GuardedEstimator",
    "build_fallback_chain",
    "DEFAULT_CALL_BUDGET_STEPS",
    "LAST_RESORT_LINK",
    # chaos harness
    "ChaosConfig",
    "ChaosReport",
    "default_plan",
    "run_chaos",
    "format_report",
    "WorkerKillConfig",
    "WorkerKillReport",
    "run_worker_kill_chaos",
    "format_worker_kill_report",
]

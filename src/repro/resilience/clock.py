"""Deterministic logical time for the resilience layer.

Budgets, backoff, and circuit-breaker cooldowns must be byte-identical
run to run (the DET001 invariant forbids wall-clock reads in result
paths), so the resilience layer counts **steps** on an injectable
:class:`StepClock` instead of reading real time.  A "step" is one unit
of abstract work: call sites advance the clock when they do work, the
fault injector's ``slow`` faults advance it to simulate stalls, and
:class:`Deadline` turns a step budget into a typed
:class:`~repro.errors.DeadlineError`.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DeadlineError

__all__ = ["StepClock", "Deadline"]


class StepClock:
    """A monotone counter standing in for wall-clock time."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    def now(self) -> int:
        """Current step count."""
        return self._now

    def advance(self, steps: int = 1) -> int:
        """Advance by ``steps`` (must be non-negative); returns now()."""
        if steps < 0:
            raise ValueError("clock can only advance forward")
        self._now += int(steps)
        return self._now

    def __repr__(self) -> str:
        return f"StepClock(now={self._now})"


class Deadline:
    """A per-call step budget over a :class:`StepClock`.

    Parameters
    ----------
    clock:
        The logical clock charged against.
    budget_steps:
        Steps available before :meth:`check` raises; ``None`` means
        unlimited (every check passes).
    """

    __slots__ = ("_clock", "_budget", "_start")

    def __init__(
        self, clock: StepClock, budget_steps: Optional[int]
    ) -> None:
        if budget_steps is not None and budget_steps < 0:
            raise ValueError("budget_steps must be non-negative")
        self._clock = clock
        self._budget = budget_steps
        self._start = clock.now()

    def elapsed(self) -> int:
        """Steps consumed since this deadline was armed."""
        return self._clock.now() - self._start

    def remaining(self) -> Optional[int]:
        """Steps left, or ``None`` for an unlimited budget."""
        if self._budget is None:
            return None
        return max(0, self._budget - self.elapsed())

    def expired(self) -> bool:
        return self.remaining() == 0 if self._budget is not None \
            else False

    def check(self, label: str = "call") -> None:
        """Raise :class:`DeadlineError` when the budget is exhausted."""
        if self.expired():
            raise DeadlineError(
                f"{label} exceeded its budget of {self._budget} steps",
                hint="raise the step budget or use a cheaper technique",
            )

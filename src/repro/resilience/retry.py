"""Bounded retry with deterministic backoff.

Retries are reserved for errors that declare themselves
:attr:`~repro.errors.ReproError.retryable` (transient IO).  Backoff is
charged to the injectable :class:`~repro.resilience.clock.StepClock` —
no real sleeping, no wall clock — so retried runs stay byte-identical
and tests run at full speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import ReproError
from ..obs import OBS
from .clock import StepClock

__all__ = ["RetryPolicy", "with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a retryable failure.

    ``backoff_steps * backoff_factor**(attempt-1)`` clock steps are
    charged before attempt ``attempt+1``.
    """

    max_attempts: int = 3
    backoff_steps: int = 1
    backoff_factor: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_steps < 0 or self.backoff_factor < 1:
            raise ValueError("invalid backoff parameters")

    def backoff_for(self, attempt: int) -> int:
        """Steps to wait after failed attempt ``attempt`` (1-based)."""
        return self.backoff_steps * self.backoff_factor ** (attempt - 1)


def with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy,
    clock: StepClock,
    *,
    label: str = "operation",
) -> T:
    """Run ``operation``, retrying retryable :class:`ReproError`\\ s.

    Non-retryable errors propagate immediately; the last retryable
    error propagates once ``policy.max_attempts`` is exhausted.  Every
    retry is counted on ``resilience.retries``.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return operation()
        except ReproError as exc:
            if not exc.retryable or attempt >= policy.max_attempts:
                raise
            OBS.add("resilience.retries")
            clock.advance(policy.backoff_for(attempt))

"""Chaos harness: run a workload under a fault plan, measure survival.

``repro-spatial chaos`` builds the quick workload, arms a deterministic
:class:`~repro.resilience.faults.FaultPlan`, drives every query through
the guarded fallback chain, and reports what happened: how many queries
survived (returned a finite estimate), which links served them, how
many degradations and injections occurred.  The whole run is a
reproducible experiment — the report embeds a SHA-256 digest of the
estimate vector, so byte-determinism for a fixed seed is a testable
claim, not a hope.

Heavyweight subsystem imports (datasets, workload generation) are
deferred into :func:`run_chaos` so importing :mod:`repro.resilience`
stays cheap and cycle-free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..obs import OBS
from .clock import StepClock
from .faults import FaultInjector, FaultPlan, FaultSpec, installed
from .guarded import (
    DEFAULT_CALL_BUDGET_STEPS,
    GuardedEstimator,
    build_fallback_chain,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "default_plan",
    "run_chaos",
    "format_report",
]


def default_plan(
    seed: int, rate: float, *, slow_rate: float = 0.05
) -> FaultPlan:
    """The standard chaos mix at per-call probability ``rate``.

    Histogram-build poisoning, transient IO on histogram and sample
    reads, IO faults on the storage layer, and occasional slow calls
    that eat step budget.
    """
    return FaultPlan(seed, (
        FaultSpec("estimator.build.Min-Skew", kind="corrupt",
                  probability=min(1.0, 2 * rate)),
        FaultSpec("estimator.Min-Skew", kind="io", probability=rate),
        FaultSpec("estimator.Sample", kind="io",
                  probability=rate / 2),
        FaultSpec("storage.read", kind="io", probability=rate),
        FaultSpec("estimator.*", kind="slow", probability=slow_rate,
                  slow_steps=5),
    ))


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment definition (fully seeded)."""

    dataset: str = "charminar"
    n: int = 2_000
    n_buckets: int = 40
    n_regions: int = 2_500
    n_queries: int = 300
    qsize: float = 0.05
    query_seed: int = 42
    plan_seed: int = 7
    fault_rate: float = 0.2
    call_budget_steps: Optional[int] = DEFAULT_CALL_BUDGET_STEPS
    plan: Optional[FaultPlan] = None

    def resolved_plan(self) -> FaultPlan:
        if self.plan is not None:
            return self.plan
        return default_plan(self.plan_seed, self.fault_rate)


@dataclass(frozen=True)
class ChaosReport:
    """What a chaos run observed."""

    n_queries: int
    finite_estimates: int
    served: Dict[str, int]
    degraded: int
    last_resort: int
    deadline_exceeded: int
    breaker_open: int
    retries: int
    link_failures: Dict[str, int]
    injected: Dict[str, int]
    fired: Dict[str, int]
    estimates_sha256: str
    plan_seed: int
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def survival(self) -> float:
        """Fraction of queries that got a finite estimate."""
        if self.n_queries == 0:
            return 1.0
        return self.finite_estimates / self.n_queries

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_queries": self.n_queries,
            "finite_estimates": self.finite_estimates,
            "survival": self.survival,
            "served": dict(self.served),
            "degraded": self.degraded,
            "last_resort": self.last_resort,
            "deadline_exceeded": self.deadline_exceeded,
            "breaker_open": self.breaker_open,
            "retries": self.retries,
            "link_failures": dict(self.link_failures),
            "injected": dict(self.injected),
            "fired": dict(self.fired),
            "total_injected": self.total_injected,
            "estimates_sha256": self.estimates_sha256,
            "plan_seed": self.plan_seed,
        }


def _counter_group(
    counters: Dict[str, float], prefix: str
) -> Dict[str, int]:
    return {
        name[len(prefix):]: int(value)
        for name, value in counters.items()
        if name.startswith(prefix)
    }


def run_chaos(
    config: ChaosConfig,
    *,
    chain: Optional[GuardedEstimator] = None,
) -> ChaosReport:
    """Run the chaos experiment and return its report.

    The dataset and query workload are prepared *before* the injector
    is armed — the unit under test is the estimation pipeline, not the
    test's own setup.  Pass ``chain`` to test a custom chain (e.g. one
    whose histogram round-trips through checksummed storage).
    """
    from ..data import make_dataset
    from ..workload import range_queries

    data = make_dataset(config.dataset, config.n)
    queries = range_queries(
        data, config.qsize, config.n_queries, seed=config.query_seed
    )
    clock = StepClock()
    if chain is None:
        chain = build_fallback_chain(
            data,
            config.n_buckets,
            n_regions=config.n_regions,
            clock=clock,
            call_budget_steps=config.call_budget_steps,
        )
    injector = FaultInjector(config.resolved_plan(), clock=chain.clock)

    estimates = np.empty(len(queries), dtype=np.float64)
    with OBS.scope():
        OBS.reset()
        try:
            with installed(injector):
                for i, query in enumerate(queries):
                    estimates[i] = chain.estimate(query)
            counters: Dict[str, float] = dict(
                OBS.snapshot()["counters"]
            )
        finally:
            OBS.reset()

    stats = injector.stats()
    finite = int(np.isfinite(estimates).sum())
    digest = hashlib.sha256(estimates.tobytes()).hexdigest()
    return ChaosReport(
        n_queries=len(queries),
        finite_estimates=finite,
        served=_counter_group(counters, "resilience.served."),
        degraded=int(counters.get("resilience.degraded", 0)),
        last_resort=int(counters.get("resilience.last_resort", 0)),
        deadline_exceeded=int(
            counters.get("resilience.deadline_exceeded", 0)
        ),
        breaker_open=int(counters.get("resilience.breaker_open", 0)),
        retries=int(counters.get("resilience.retries", 0)),
        link_failures=_counter_group(
            counters, "resilience.link_failures."
        ),
        injected=stats["injected"],
        fired=stats["fired"],
        estimates_sha256=digest,
        plan_seed=config.plan_seed,
        counters=counters,
    )


def format_report(report: ChaosReport) -> str:
    """Human-readable chaos report for the CLI."""
    lines = [
        f"# chaos: {report.n_queries} queries, "
        f"{report.total_injected} faults injected, "
        f"survival {report.survival:.1%}",
        f"finite estimates : {report.finite_estimates}"
        f"/{report.n_queries}",
        f"degraded queries : {report.degraded}"
        f" (last resort: {report.last_resort}, "
        f"deadline: {report.deadline_exceeded})",
        f"retries          : {report.retries}"
        f" (breaker skips: {report.breaker_open})",
    ]
    for name, count in sorted(report.served.items()):
        lines.append(f"served by {name:9s}: {count}")
    for name, count in sorted(report.link_failures.items()):
        lines.append(f"failures  {name:9s}: {count}")
    for site, count in sorted(report.injected.items()):
        lines.append(f"injected  {site}: {count}")
    lines.append(f"estimates sha256 : {report.estimates_sha256}")
    return "\n".join(lines)

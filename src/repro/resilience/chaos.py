"""Chaos harness: run a workload under a fault plan, measure survival.

``repro-spatial chaos`` builds the quick workload, arms a deterministic
:class:`~repro.resilience.faults.FaultPlan`, drives every query through
the guarded fallback chain, and reports what happened: how many queries
survived (returned a finite estimate), which links served them, how
many degradations and injections occurred.  The whole run is a
reproducible experiment — the report embeds a SHA-256 digest of the
estimate vector, so byte-determinism for a fixed seed is a testable
claim, not a hope.

Heavyweight subsystem imports (datasets, workload generation) are
deferred into :func:`run_chaos` so importing :mod:`repro.resilience`
stays cheap and cycle-free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..obs import OBS
from .clock import StepClock
from .faults import FaultInjector, FaultPlan, FaultSpec, installed
from .guarded import (
    DEFAULT_CALL_BUDGET_STEPS,
    GuardedEstimator,
    build_fallback_chain,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "default_plan",
    "run_chaos",
    "format_report",
    "WorkerKillConfig",
    "WorkerKillReport",
    "run_worker_kill_chaos",
    "format_worker_kill_report",
]


def default_plan(
    seed: int, rate: float, *, slow_rate: float = 0.05
) -> FaultPlan:
    """The standard chaos mix at per-call probability ``rate``.

    Histogram-build poisoning, transient IO on histogram and sample
    reads, IO faults on the storage layer, and occasional slow calls
    that eat step budget.
    """
    return FaultPlan(seed, (
        FaultSpec("estimator.build.Min-Skew", kind="corrupt",
                  probability=min(1.0, 2 * rate)),
        FaultSpec("estimator.Min-Skew", kind="io", probability=rate),
        FaultSpec("estimator.Sample", kind="io",
                  probability=rate / 2),
        FaultSpec("storage.read", kind="io", probability=rate),
        FaultSpec("estimator.*", kind="slow", probability=slow_rate,
                  slow_steps=5),
    ))


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment definition (fully seeded)."""

    dataset: str = "charminar"
    n: int = 2_000
    n_buckets: int = 40
    n_regions: int = 2_500
    n_queries: int = 300
    qsize: float = 0.05
    query_seed: int = 42
    plan_seed: int = 7
    fault_rate: float = 0.2
    call_budget_steps: Optional[int] = DEFAULT_CALL_BUDGET_STEPS
    plan: Optional[FaultPlan] = None

    def resolved_plan(self) -> FaultPlan:
        if self.plan is not None:
            return self.plan
        return default_plan(self.plan_seed, self.fault_rate)


@dataclass(frozen=True)
class ChaosReport:
    """What a chaos run observed."""

    n_queries: int
    finite_estimates: int
    served: Dict[str, int]
    degraded: int
    last_resort: int
    deadline_exceeded: int
    breaker_open: int
    retries: int
    link_failures: Dict[str, int]
    injected: Dict[str, int]
    fired: Dict[str, int]
    estimates_sha256: str
    plan_seed: int
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def survival(self) -> float:
        """Fraction of queries that got a finite estimate."""
        if self.n_queries == 0:
            return 1.0
        return self.finite_estimates / self.n_queries

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_queries": self.n_queries,
            "finite_estimates": self.finite_estimates,
            "survival": self.survival,
            "served": dict(self.served),
            "degraded": self.degraded,
            "last_resort": self.last_resort,
            "deadline_exceeded": self.deadline_exceeded,
            "breaker_open": self.breaker_open,
            "retries": self.retries,
            "link_failures": dict(self.link_failures),
            "injected": dict(self.injected),
            "fired": dict(self.fired),
            "total_injected": self.total_injected,
            "estimates_sha256": self.estimates_sha256,
            "plan_seed": self.plan_seed,
        }


def _counter_group(
    counters: Dict[str, float], prefix: str
) -> Dict[str, int]:
    return {
        name[len(prefix):]: int(value)
        for name, value in counters.items()
        if name.startswith(prefix)
    }


def run_chaos(
    config: ChaosConfig,
    *,
    chain: Optional[GuardedEstimator] = None,
) -> ChaosReport:
    """Run the chaos experiment and return its report.

    The dataset and query workload are prepared *before* the injector
    is armed — the unit under test is the estimation pipeline, not the
    test's own setup.  Pass ``chain`` to test a custom chain (e.g. one
    whose histogram round-trips through checksummed storage).
    """
    from ..data import make_dataset
    from ..workload import range_queries

    data = make_dataset(config.dataset, config.n)
    queries = range_queries(
        data, config.qsize, config.n_queries, seed=config.query_seed
    )
    clock = StepClock()
    if chain is None:
        chain = build_fallback_chain(
            data,
            config.n_buckets,
            n_regions=config.n_regions,
            clock=clock,
            call_budget_steps=config.call_budget_steps,
        )
    injector = FaultInjector(config.resolved_plan(), clock=chain.clock)

    estimates = np.empty(len(queries), dtype=np.float64)
    with OBS.scope():
        OBS.reset()
        try:
            with installed(injector):
                for i, query in enumerate(queries):
                    estimates[i] = chain.estimate(query)
            counters: Dict[str, float] = dict(
                OBS.snapshot()["counters"]
            )
        finally:
            OBS.reset()

    stats = injector.stats()
    finite = int(np.isfinite(estimates).sum())
    digest = hashlib.sha256(estimates.tobytes()).hexdigest()
    return ChaosReport(
        n_queries=len(queries),
        finite_estimates=finite,
        served=_counter_group(counters, "resilience.served."),
        degraded=int(counters.get("resilience.degraded", 0)),
        last_resort=int(counters.get("resilience.last_resort", 0)),
        deadline_exceeded=int(
            counters.get("resilience.deadline_exceeded", 0)
        ),
        breaker_open=int(counters.get("resilience.breaker_open", 0)),
        retries=int(counters.get("resilience.retries", 0)),
        link_failures=_counter_group(
            counters, "resilience.link_failures."
        ),
        injected=stats["injected"],
        fired=stats["fired"],
        estimates_sha256=digest,
        plan_seed=config.plan_seed,
        counters=counters,
    )


@dataclass(frozen=True)
class WorkerKillConfig:
    """One worker-kill chaos experiment (fully seeded).

    A sharded serving tier with write-ahead-logged shards is driven
    through interleaved query batches and mutations while a seeded
    :class:`~repro.resilience.faults.FaultPlan` decides, between
    batches, which worker processes to SIGKILL.  The experiment
    asserts the fault-tolerance contract: every batch is answered
    (supervision + retry + degraded partials), and once quarantines
    drain the recovered tier answers bit-identically to the
    single-engine union reference.

    With ``through_server`` the same experiment runs over the wire:
    the router sits behind a :class:`~repro.serving.FrontDoorThread`
    and every batch is served by concurrent pipelined TCP clients
    while the kill decisions fire on a separate thread — workers die
    with client requests in flight.  The contract tightens to the
    front-door SLO: every client gets a correct answer or a typed
    error response, and none hangs past ``server_timeout``.
    """

    dataset: str = "charminar"
    n: int = 1_200
    n_shards: int = 4
    n_buckets: int = 24
    n_regions: int = 256
    workers: int = 2
    n_batches: int = 12
    batch_size: int = 25
    mutations_per_batch: int = 4
    qsize: float = 0.1
    query_seed: int = 42
    mutation_seed: int = 11
    plan_seed: int = 7
    kill_rate: float = 0.35
    budget_steps: Optional[int] = 400
    poll_interval: float = 0.01
    failure_threshold: int = 3
    reset_after_steps: int = 25
    checkpoint_every: int = 8
    wal_dir: Optional[str] = None
    through_server: bool = False
    server_concurrency: int = 8
    server_timeout: float = 20.0


@dataclass(frozen=True)
class WorkerKillReport:
    """What a worker-kill chaos run observed."""

    requests: int
    survived: int
    kills: int
    respawns: int
    replayed_ops: int
    wal_records: int
    checkpoints: int
    degraded_dispatches: int
    fanout: int
    recovered_matches: bool
    digests_match: bool
    estimates_sha256: str
    plan_seed: int
    through_server: bool = False
    timeouts: int = 0
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def survival(self) -> float:
        """Fraction of query batches answered with finite values."""
        if self.requests == 0:
            return 1.0
        return self.survived / self.requests

    @property
    def degraded_fraction(self) -> float:
        """Fraction of shard dispatches served by degraded partials."""
        if self.fanout == 0:
            return 0.0
        return self.degraded_dispatches / self.fanout

    @property
    def passed(self) -> bool:
        """The acceptance gate: nothing lost, nothing corrupted.

        A through-server run additionally requires that no client
        ever hit its deadline — degraded answers and typed errors
        are acceptable, hangs are not.
        """
        return (
            self.survival == 1.0
            and self.recovered_matches
            and self.digests_match
            and self.timeouts == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "survived": self.survived,
            "survival": self.survival,
            "kills": self.kills,
            "respawns": self.respawns,
            "replayed_ops": self.replayed_ops,
            "wal_records": self.wal_records,
            "checkpoints": self.checkpoints,
            "degraded_dispatches": self.degraded_dispatches,
            "fanout": self.fanout,
            "degraded_fraction": self.degraded_fraction,
            "recovered_matches": self.recovered_matches,
            "digests_match": self.digests_match,
            "estimates_sha256": self.estimates_sha256,
            "plan_seed": self.plan_seed,
            "through_server": self.through_server,
            "timeouts": self.timeouts,
        }


def run_worker_kill_chaos(
    config: WorkerKillConfig,
    *,
    data: Optional[Any] = None,
    partitioner_factory: Optional[Any] = None,
) -> WorkerKillReport:
    """SIGKILL shard workers mid-stream; prove nothing is lost.

    The run builds a write-ahead-logged sharded tier behind a
    supervised router, serves ``n_batches`` query batches with
    ``mutations_per_batch`` routed mutations between them, and between
    batches consults the seeded plan's ``chaos.worker-kill.w<i>``
    sites to decide which workers to SIGKILL.  After the stream it
    drains any quarantine (advancing the router's logical clock past
    the breaker cooldown) and checks the two recovery invariants:

    * the recovered tier's answer over the full query set is
      bit-identical to the :class:`ShardUnionEstimator` reference;
    * every worker-held shard's ``state_digest`` equals the parent's
      authoritative copy — checkpoint + WAL replay reconstructed the
      exact pre-crash state, not an approximation of it.

    With ``config.through_server`` the router serves behind a
    :class:`~repro.serving.FrontDoorThread` and every query batch is
    driven by pipelined TCP clients while the kill decisions run on a
    concurrent thread, so workers die with client requests in flight.
    Each client must then receive a correct answer or a typed error
    within ``config.server_timeout`` — a synthetic ``TimeoutError``
    response counts as a hang and fails the run.
    """
    import contextlib
    import os
    import shutil
    import signal
    import tempfile
    import threading

    from ..data import make_dataset
    from ..geometry import RectSet
    from ..serving import FrontDoorThread, ShardedHistogram, \
        ShardRouter, attach_wals, wal_recovery
    from ..workload import live_workload, range_queries
    from .retry import RetryPolicy

    if data is None:
        data = make_dataset(config.dataset, config.n)
    queries = range_queries(
        data, config.qsize,
        config.n_batches * config.batch_size,
        seed=config.query_seed,
    )
    mutations = [
        op for op in live_workload(
            data, config.qsize,
            4 * config.n_batches * config.mutations_per_batch,
            seed=config.mutation_seed,
            query_frac=0.0, insert_frac=0.6,
        )
        if op.kind != "query"
    ]
    wal_dir = config.wal_dir
    cleanup = wal_dir is None
    if wal_dir is None:
        wal_dir = tempfile.mkdtemp(prefix="repro-worker-kill-")
    plan = FaultPlan(config.plan_seed, (
        FaultSpec("chaos.worker-kill.*", kind="fail",
                  probability=config.kill_rate),
    ))

    kills = 0
    survived = 0
    requests = 0
    timeouts = 0
    try:
        with OBS.scope():
            OBS.reset()
            try:
                sharded = ShardedHistogram.build(
                    data,
                    n_shards=config.n_shards,
                    n_buckets=config.n_buckets,
                    n_regions=config.n_regions,
                    partitioner_factory=partitioner_factory,
                )
                wals = attach_wals(
                    sharded, wal_dir,
                    checkpoint_every=config.checkpoint_every,
                )
                router = ShardRouter(
                    sharded,
                    workers=config.workers,
                    recover=wal_recovery(sharded, wals),
                    retry=RetryPolicy(max_attempts=3),
                    budget_steps=config.budget_steps,
                    poll_interval=config.poll_interval,
                    failure_threshold=config.failure_threshold,
                    reset_after_steps=config.reset_after_steps,
                )
                injector = FaultInjector(plan, clock=router._clock)
                mutation_iter = iter(mutations)

                def _sigkill(pid: int) -> None:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except OSError:
                        # the worker died (or was respawned) between
                        # pid snapshot and signal — the race is the
                        # experiment, not an error
                        pass

                def _fire_kills() -> int:
                    with installed(injector):
                        return _kill_planned_workers(
                            router._pool, kill=_sigkill
                        )

                front: Optional[FrontDoorThread] = None
                with contextlib.ExitStack() as stack:
                    stack.enter_context(router)
                    if config.through_server:
                        front = FrontDoorThread(router).start()
                        # LIFO: the door stops before the router
                        # tears the worker pool down
                        stack.callback(front.stop)
                    for batch_no in range(config.n_batches):
                        lo = batch_no * config.batch_size
                        batch = RectSet(
                            queries.coords[
                                lo:lo + config.batch_size
                            ],
                            copy=False, validate=False,
                        )
                        requests += 1
                        if front is not None:
                            # fire the kill decisions on a thread so
                            # workers die while client requests are
                            # in flight on the wire
                            killer: Optional[threading.Thread] = None
                            kill_box: List[int] = []
                            if router._pool is not None:
                                killer = threading.Thread(
                                    target=lambda box=kill_box:
                                        box.append(_fire_kills()),
                                    daemon=True,
                                )
                                killer.start()
                            responses = front.estimate_many(
                                batch.coords,
                                concurrency=min(
                                    config.server_concurrency,
                                    len(batch),
                                ),
                                timeout=config.server_timeout,
                            )
                            if killer is not None:
                                killer.join(timeout=60.0)
                                kills += sum(kill_box)
                            answered = 0
                            for resp in responses:
                                if resp.get("error") == "TimeoutError":
                                    timeouts += 1
                                elif resp.get("ok", False):
                                    if np.isfinite(float(
                                        resp.get("value", np.nan)
                                    )):
                                        answered += 1
                                elif resp.get("error"):
                                    answered += 1
                            if answered == len(batch):
                                survived += 1
                        else:
                            if router._pool is not None:
                                kills += _fire_kills()
                            estimates = router.estimate_batch(batch)
                            if (
                                len(estimates) == len(batch)
                                and bool(
                                    np.isfinite(estimates).all()
                                )
                            ):
                                survived += 1
                        for _ in range(config.mutations_per_batch):
                            op = next(mutation_iter, None)
                            if op is None:
                                break
                            if front is not None:
                                front.mutate(
                                    op.kind,
                                    (op.rect.x1, op.rect.y1,
                                     op.rect.x2, op.rect.y2),
                                    timeout=config.server_timeout,
                                )
                            elif op.kind == "insert":
                                router.insert(op.rect)
                            else:
                                router.delete(op.rect)
                    # drain quarantine: past the cooldown every shard
                    # goes recovering, and the trial serve (no more
                    # kills) closes the loop back to healthy
                    router._clock.advance(
                        config.reset_after_steps + 1
                    )
                    if front is not None:
                        front.estimate_many(
                            queries.coords,
                            concurrency=config.server_concurrency,
                            timeout=config.server_timeout,
                        )
                        final_responses = front.estimate_many(
                            queries.coords,
                            concurrency=config.server_concurrency,
                            timeout=config.server_timeout,
                        )
                        all_ok = all(
                            r.get("ok", False)
                            for r in final_responses
                        )
                        annotated = any(
                            r.get("degraded")
                            for r in final_responses
                        )
                        final = np.array(
                            [
                                float(r["value"])
                                if r.get("ok", False) else np.nan
                                for r in final_responses
                            ],
                            dtype=np.float64,
                        )
                        recovered_matches = (
                            all_ok
                            and not annotated
                            and router.degraded_shards == ()
                            and bool(np.array_equal(
                                final,
                                sharded.union_estimator()
                                .estimate_batch(queries),
                            ))
                        )
                    else:
                        router.estimate_batch(queries)
                        final = router.estimate_batch(queries)
                        recovered_matches = (
                            router.degraded_shards == ()
                            and bool(np.array_equal(
                                final,
                                sharded.union_estimator()
                                .estimate_batch(queries),
                            ))
                        )
                    digests_match = True
                    if router._pool is not None:
                        for shard in sharded.shards:
                            parent = shard.state_digest()
                            held = router._pool.call(
                                shard.shard_id, "state_digest"
                            )
                            if held != parent:
                                digests_match = False
                counters: Dict[str, float] = dict(
                    OBS.snapshot()["counters"]
                )
            finally:
                OBS.reset()
    finally:
        if cleanup:
            shutil.rmtree(wal_dir, ignore_errors=True)

    digest = hashlib.sha256(
        np.asarray(final, dtype=np.float64).tobytes()
    ).hexdigest()
    return WorkerKillReport(
        requests=requests,
        survived=survived,
        kills=kills,
        respawns=int(counters.get("serving.pool.respawns", 0)),
        replayed_ops=int(counters.get("serving.wal.replayed", 0)),
        wal_records=int(counters.get("serving.wal.records", 0)),
        checkpoints=int(counters.get("serving.wal.checkpoints", 0)),
        degraded_dispatches=int(
            counters.get("serving.shard.degraded", 0)
        ),
        fanout=int(counters.get("serving.shard.fanout", 0)),
        recovered_matches=recovered_matches,
        digests_match=digests_match,
        estimates_sha256=digest,
        plan_seed=config.plan_seed,
        through_server=config.through_server,
        timeouts=timeouts,
        counters=counters,
    )


def _kill_planned_workers(pool: Any, *, kill: Any) -> int:
    """Consult the armed plan once per worker; SIGKILL the chosen.

    Separated out so the decision sites are plain
    :func:`~repro.resilience.faults.fire` calls — the same seeded
    machinery every other chaos path uses — and the kill itself is
    injected, which keeps the decision unit-testable without
    signals.
    """
    from ..errors import ReproError
    from .faults import fire

    killed = 0
    pids = pool.worker_pids()
    for worker, pid in enumerate(pids):
        try:
            fire(f"chaos.worker-kill.w{worker}")
        except ReproError:
            if pid > 0:
                # snapshot the process before signalling: with kills
                # concurrent to in-flight serving, supervision may
                # respawn the slot before the join — joining the
                # captured (dead) process never blocks on the live
                # replacement
                proc = pool._procs[worker]
                kill(pid)
                proc.join(timeout=10)
                killed += 1
    return killed


def format_worker_kill_report(report: WorkerKillReport) -> str:
    """Human-readable worker-kill report for the CLI."""
    lines = [
        f"# chaos --kill-shard-workers: {report.requests} batches, "
        f"{report.kills} workers killed, "
        f"survival {report.survival:.1%}",
    ]
    if report.through_server:
        lines.append(
            "front door        : kills fired with clients in flight"
            f" ({report.timeouts} deadline timeouts)"
        )
    lines += [
        f"respawns          : {report.respawns}"
        f" (replayed ops: {report.replayed_ops})",
        f"wal               : {report.wal_records} records, "
        f"{report.checkpoints} checkpoints",
        f"degraded partials : {report.degraded_dispatches}"
        f"/{report.fanout} dispatches"
        f" ({report.degraded_fraction:.1%})",
        "recovered answer  : "
        + ("bit-identical to union reference"
           if report.recovered_matches else "MISMATCH"),
        "worker state      : "
        + ("digests match parent copies"
           if report.digests_match else "DIGEST MISMATCH"),
        f"estimates sha256  : {report.estimates_sha256}",
    ]
    return "\n".join(lines)


def format_report(report: ChaosReport) -> str:
    """Human-readable chaos report for the CLI."""
    lines = [
        f"# chaos: {report.n_queries} queries, "
        f"{report.total_injected} faults injected, "
        f"survival {report.survival:.1%}",
        f"finite estimates : {report.finite_estimates}"
        f"/{report.n_queries}",
        f"degraded queries : {report.degraded}"
        f" (last resort: {report.last_resort}, "
        f"deadline: {report.deadline_exceeded})",
        f"retries          : {report.retries}"
        f" (breaker skips: {report.breaker_open})",
    ]
    for name, count in sorted(report.served.items()):
        lines.append(f"served by {name:9s}: {count}")
    for name, count in sorted(report.link_failures.items()):
        lines.append(f"failures  {name:9s}: {count}")
    for site, count in sorted(report.injected.items()):
        lines.append(f"injected  {site}: {count}")
    lines.append(f"estimates sha256 : {report.estimates_sha256}")
    return "\n".join(lines)

"""Deterministic fault injection.

A :class:`FaultPlan` is a seed plus a tuple of :class:`FaultSpec`
rules.  Installing it (:func:`installed`) arms the process-wide
injector; instrumented call sites — storage IO, dataset loading, and
every estimator call made through the guarded pipeline — announce
themselves with :func:`fire(site) <fire>` and the injector decides,
**deterministically**, whether that invocation fails.

Determinism contract (the dynamic half of the DET001 lint): every
decision comes from per-spec ``numpy.random.Generator`` streams seeded
by ``(plan.seed, spec_index)`` and from per-spec invocation counters,
never from wall clock or global RNG state.  Two runs with the same
plan, workload, and call order inject byte-identical fault sequences.

Fault kinds
-----------
``io``
    Raise :class:`~repro.errors.TransientIOError` (retryable).
``corrupt``
    Raise :class:`~repro.errors.ArtifactCorruptError` (not retryable —
    models a checksum failure, i.e. a poisoned artifact).
``slow``
    Advance the injector's :class:`~repro.resilience.clock.StepClock`
    by ``slow_steps``, driving per-call deadline budgets over the edge
    without raising directly.
``fail``
    Raise the generic :class:`~repro.errors.InjectedFault`.

A spec with ``recover_after=k`` stops matching after its first ``k``
injections, modelling a transient-then-recover outage.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import (
    ArtifactCorruptError,
    InjectedFault,
    TransientIOError,
)
from .clock import StepClock

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "fire",
    "active_injector",
    "installed",
    "sites_from_rates",
]

#: Recognised values of :attr:`FaultSpec.kind`.
FAULT_KINDS = ("io", "corrupt", "slow", "fail")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule.

    Attributes
    ----------
    site:
        Site name to match: exact (``"storage.read"``), or a prefix
        when it ends with ``*`` (``"estimator.*"``).
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Per-invocation injection probability in ``[0, 1]``.
    start_step, stop_step:
        Only invocations with ``start_step <= i < stop_step`` of the
        per-spec match counter are eligible (``stop_step=None`` means
        forever), giving deterministic step schedules.
    recover_after:
        When positive, the spec disarms after this many injections —
        a transient fault that later recovers.
    slow_steps:
        Clock advance for ``slow`` faults (ignored otherwise).
    """

    site: str
    kind: str = "io"
    probability: float = 1.0
    start_step: int = 0
    stop_step: Optional[int] = None
    recover_after: int = 0
    slow_steps: int = 10

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.start_step < 0 or self.slow_steps < 0 \
                or self.recover_after < 0:
            raise ValueError("step parameters must be non-negative")

    def matches(self, site: str) -> bool:
        """Whether this rule applies to calls at ``site``."""
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault rules it drives.

    The same plan always injects the same faults for the same call
    sequence — chaos runs are reproducible experiments, not noise.
    """

    seed: int
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        """A copy of this plan with one more rule appended."""
        return FaultPlan(self.seed, self.specs + (spec,))


class _SpecState:
    """Mutable per-spec runtime state (counters + RNG stream)."""

    __slots__ = ("spec", "rng", "seen", "injected")

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        # One independent stream per spec, derived from (plan seed,
        # spec index): interleaving of *other* sites cannot perturb
        # this spec's decisions.
        self.rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(seed, index))
        )
        self.seen = 0
        self.injected = 0


class FaultInjector:
    """Executes a :class:`FaultPlan` at instrumented call sites."""

    def __init__(
        self, plan: FaultPlan, *, clock: Optional[StepClock] = None
    ) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else StepClock()
        self._states = [
            _SpecState(spec, plan.seed, index)
            for index, spec in enumerate(plan.specs)
        ]
        self._fired: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Announce one invocation of ``site``; may raise a fault.

        Each matching spec sees its own invocation counter advance
        whether or not it injects, so step schedules stay aligned with
        the workload regardless of what other specs do.
        """
        self._fired[site] = self._fired.get(site, 0) + 1
        for state in self._states:
            spec = state.spec
            if not spec.matches(site):
                continue
            step = state.seen
            state.seen += 1
            if step < spec.start_step:
                continue
            if spec.stop_step is not None and step >= spec.stop_step:
                continue
            if spec.recover_after and \
                    state.injected >= spec.recover_after:
                continue
            if spec.probability < 1.0 \
                    and state.rng.random() >= spec.probability:
                continue
            state.injected += 1
            self._injected[site] = self._injected.get(site, 0) + 1
            self._raise(spec, site)

    def _raise(self, spec: FaultSpec, site: str) -> None:
        if spec.kind == "slow":
            self.clock.advance(spec.slow_steps)
            return
        message = f"injected {spec.kind} fault at {site}"
        if spec.kind == "io":
            raise TransientIOError(message, hint="retryable")
        if spec.kind == "corrupt":
            raise ArtifactCorruptError(
                message, hint="summary is poisoned; fall back"
            )
        raise InjectedFault(message)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site invocation and injection counts so far."""
        return {
            "fired": dict(sorted(self._fired.items())),
            "injected": dict(sorted(self._injected.items())),
        }

    def total_injected(self) -> int:
        return sum(self._injected.values())

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"specs={len(self.plan.specs)}, "
            f"injected={self.total_injected()})"
        )


# ----------------------------------------------------------------------
# process-wide installation (mirrors the OBS registry idiom: a no-op
# when nothing is installed, so instrumented sites cost one global
# read + one None check in normal operation)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


def fire(site: str) -> None:
    """Announce ``site`` to the installed injector (no-op when none)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site)


@contextmanager
def installed(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` process-wide for the duration of the block.

    Nested installations restore the previous injector on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def sites_from_rates(
    rates: Dict[str, float], *, kind: str = "io"
) -> List[FaultSpec]:
    """Convenience: one ``kind`` spec per ``{site: probability}``."""
    return [
        FaultSpec(site=site, kind=kind, probability=p)
        for site, p in sorted(rates.items())
    ]

"""The guarded estimation pipeline: validation, budgets, fallback.

The availability contract of the estimator service is: **a valid query
always gets a finite estimate**.  A poisoned Min-Skew histogram, a
corrupt artifact, a transient IO fault, or a blown step budget must
cost accuracy, never availability.  :class:`GuardedEstimator` delivers
that contract with a fallback chain — by default

    Min-Skew  →  Sample  →  Uniform

— where each link is built lazily (with bounded retry for retryable
faults), protected by a :class:`CircuitBreaker` so a persistently
failing link stops being tried on every query, and every degradation
is counted in :data:`repro.obs.OBS` under the ``resilience.*``
namespace so operators can see exactly what quality they are getting.

Invalid *inputs* (NaN/inf or inverted query rectangles) are the
caller's bug, not a degradation: they raise typed
:class:`~repro.errors.ValidationError` subclasses immediately and are
never sent down the chain.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np
import numpy.typing as npt

from ..errors import (
    DeadlineError,
    EstimatorFailedError,
    FallbackExhaustedError,
    ReproError,
)
from ..estimators import (
    BucketEstimator,
    SampleEstimator,
    SelectivityEstimator,
    UniformEstimator,
    WORDS_PER_BUCKET,
    WORDS_PER_SAMPLE,
)
from ..geometry import Rect, RectSet
from ..obs import OBS
from .clock import Deadline, StepClock
from .faults import fire
from .retry import RetryPolicy, with_retry

__all__ = [
    "CircuitBreaker",
    "FallbackLink",
    "GuardedEstimator",
    "build_fallback_chain",
    "DEFAULT_CALL_BUDGET_STEPS",
    "LAST_RESORT_LINK",
]

#: Default per-call step budget: generous for a three-link chain (each
#: link attempt costs one step; injected ``slow`` faults cost more).
DEFAULT_CALL_BUDGET_STEPS = 50

#: Pseudo link name reported by :attr:`GuardedEstimator.last_served`
#: when a call was answered by the last-resort constant rather than
#: any link.
LAST_RESORT_LINK = "last-resort"


class CircuitBreaker:
    """A minimal consecutive-failure circuit breaker on step time.

    Closed until ``failure_threshold`` consecutive failures, then open
    for ``reset_after_steps`` clock steps; the first trial after the
    cooldown (half-open) closes it again on success or re-opens it on
    failure.
    """

    __slots__ = (
        "_clock", "failure_threshold", "reset_after_steps",
        "_consecutive", "_opened_at",
    )

    def __init__(
        self,
        clock: StepClock,
        *,
        failure_threshold: int = 3,
        reset_after_steps: int = 25,
    ) -> None:
        if failure_threshold < 1 or reset_after_steps < 0:
            raise ValueError("invalid circuit-breaker parameters")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_after_steps = reset_after_steps
        self._consecutive = 0
        self._opened_at: Optional[int] = None

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        if self._clock.now() - self._opened_at \
                >= self.reset_after_steps:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a call may be attempted right now."""
        return self.state != "open"

    def record_success(self) -> None:
        self._consecutive = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive += 1
        if self._consecutive >= self.failure_threshold:
            self._opened_at = self._clock.now()


class FallbackLink:
    """One link of the chain: a named, lazily built estimator."""

    __slots__ = ("name", "_builder", "_estimator", "breaker")

    def __init__(
        self,
        name: str,
        builder: Callable[[], SelectivityEstimator],
        breaker: CircuitBreaker,
    ) -> None:
        self.name = name
        self._builder = builder
        self._estimator: Optional[SelectivityEstimator] = None
        self.breaker = breaker

    def estimator(
        self, retry: RetryPolicy, clock: StepClock
    ) -> SelectivityEstimator:
        """The built estimator, constructing it on first use.

        Construction announces the ``estimator.build.<name>`` fault
        site and retries retryable faults per ``retry``.
        """
        if self._estimator is None:

            def build() -> SelectivityEstimator:
                fire(f"estimator.build.{self.name}")
                return self._builder()

            self._estimator = with_retry(
                build, retry, clock, label=f"build {self.name}"
            )
        return self._estimator

    @property
    def built(self) -> bool:
        return self._estimator is not None

    @property
    def built_estimator(self) -> Optional[SelectivityEstimator]:
        """The estimator if already built, without building it."""
        return self._estimator


class GuardedEstimator(SelectivityEstimator):
    """Fallback-chain estimator with validation, budgets, breakers.

    Parameters
    ----------
    links:
        Ordered chain, most accurate first.  Each link's estimator is
        built lazily on first use so a link whose *construction* fails
        (corrupt histogram artifact, injected build fault) degrades
        exactly like one whose *queries* fail.
    clock:
        Logical clock charged one step per link attempt; shared with
        the fault injector in chaos runs so ``slow`` faults consume
        call budgets.
    call_budget_steps:
        Per-call deadline budget (``None`` = unlimited).
    retry:
        Retry policy for retryable faults inside one link attempt.
    last_resort:
        Estimate returned when every link fails for a query (the
        degenerate-but-available answer).  Counted separately on
        ``resilience.last_resort``; set to ``None`` to raise
        :class:`FallbackExhaustedError` instead.
    """

    name = "Guarded"

    def __init__(
        self,
        links: Sequence[FallbackLink],
        *,
        clock: Optional[StepClock] = None,
        call_budget_steps: Optional[int] = DEFAULT_CALL_BUDGET_STEPS,
        retry: Optional[RetryPolicy] = None,
        last_resort: Optional[float] = 0.0,
    ) -> None:
        if not links:
            raise ValueError("at least one fallback link is required")
        self.links: List[FallbackLink] = list(links)
        self.clock = clock if clock is not None else StepClock()
        self.call_budget_steps = call_budget_steps
        self.retry = retry if retry is not None else RetryPolicy()
        self.last_resort = last_resort
        #: Name of the link that answered the most recent call
        #: (:data:`LAST_RESORT_LINK` for a last-resort answer, ``None``
        #: before the first).  The serving engine watches this to flush
        #: its cache on degradation/recovery transitions.
        self.last_served: Optional[str] = None

    @property
    def is_degraded(self) -> bool:
        """Whether the most recent call was served below full quality
        (by any link other than the first, or by the last resort)."""
        return (
            self.last_served is not None
            and self.last_served != self.links[0].name
        )

    # ------------------------------------------------------------------
    def _attempt(
        self, link: FallbackLink, query: Rect, deadline: Deadline
    ) -> float:
        """One link attempt for one query; typed errors on any failure."""
        self.clock.advance(1)
        deadline.check(f"estimate via {link.name}")
        estimator = link.estimator(self.retry, self.clock)

        def call() -> float:
            fire(f"estimator.{link.name}")
            return estimator.estimate(query)

        value = with_retry(
            call, self.retry, self.clock, label=f"estimate {link.name}"
        )
        if not np.isfinite(value) or value < 0.0:
            raise EstimatorFailedError(
                f"{link.name} returned a non-finite or negative "
                f"estimate ({value!r})",
                hint="the summary is poisoned; fall back",
            )
        return float(value)

    def estimate(self, query: Rect) -> float:
        """Estimate through the chain; finite for every valid query."""
        OBS.add("resilience.queries")
        deadline = Deadline(self.clock, self.call_budget_steps)
        for position, link in enumerate(self.links):
            if not link.breaker.allow():
                OBS.add("resilience.breaker_open")
                OBS.add(f"resilience.skipped.{link.name}")
                continue
            try:
                value = self._attempt(link, query, deadline)
            except DeadlineError:
                # The per-call budget is gone; trying further links
                # would only blow it further (and spuriously penalise
                # their breakers) — answer with the last resort now.
                OBS.add("resilience.deadline_exceeded")
                break
            except ReproError:
                link.breaker.record_failure()
                OBS.add(f"resilience.link_failures.{link.name}")
                continue
            link.breaker.record_success()
            self.last_served = link.name
            OBS.add(f"resilience.served.{link.name}")
            if position > 0:
                OBS.add("resilience.degraded")
            return value
        OBS.add("resilience.last_resort")
        if self.last_resort is None:
            raise FallbackExhaustedError(
                "every estimator in the fallback chain failed",
                hint="check fault rates / artifact integrity; the "
                     "chain has no healthy link left",
            )
        self.last_served = LAST_RESORT_LINK
        return self.last_resort

    def _estimate_batch(
        self, queries: RectSet
    ) -> npt.NDArray[np.float64]:
        """Batched chain estimate (whole-batch fallback granularity).

        Tries each link on the full batch; a link that raises or
        returns any non-finite value forfeits the batch to the next
        link, so the fallback-chain degradation semantics survive the
        vectorised serving path unchanged.  Per-query granularity (and
        per-query degradation accounting) is available by calling
        :meth:`estimate` per query, which is what the chaos harness
        does.  Invalid query batches never reach the chain — the
        public :meth:`estimate_batch` wrapper validates first and
        raises :class:`~repro.errors.GeometryError`.
        """
        OBS.add("resilience.queries", len(queries))
        deadline = Deadline(self.clock, self.call_budget_steps)
        for position, link in enumerate(self.links):
            if not link.breaker.allow():
                OBS.add("resilience.breaker_open")
                OBS.add(f"resilience.skipped.{link.name}")
                continue
            try:
                self.clock.advance(1)
                deadline.check(f"estimate_batch via {link.name}")
                estimator = link.estimator(self.retry, self.clock)

                def call(
                    est: SelectivityEstimator = estimator,
                    name: str = link.name,
                ) -> "npt.NDArray[np.float64]":
                    fire(f"estimator.{name}")
                    return np.asarray(
                        est.estimate_batch(queries), dtype=np.float64
                    )

                values = with_retry(
                    call, self.retry, self.clock,
                    label=f"estimate_batch {link.name}",
                )
                if values.shape != (len(queries),) \
                        or not bool(np.isfinite(values).all()) \
                        or bool((values < 0.0).any()):
                    raise EstimatorFailedError(
                        f"{link.name} returned non-finite or negative "
                        f"batch estimates",
                        hint="the summary is poisoned; fall back",
                    )
            except DeadlineError:
                OBS.add("resilience.deadline_exceeded")
                break
            except ReproError:
                link.breaker.record_failure()
                OBS.add(f"resilience.link_failures.{link.name}")
                continue
            link.breaker.record_success()
            self.last_served = link.name
            OBS.add(f"resilience.served.{link.name}", len(queries))
            if position > 0:
                OBS.add("resilience.degraded", len(queries))
            return values
        OBS.add("resilience.last_resort", len(queries))
        if self.last_resort is None:
            raise FallbackExhaustedError(
                "every estimator in the fallback chain failed",
                hint="check fault rates / artifact integrity; the "
                     "chain has no healthy link left",
            )
        self.last_served = LAST_RESORT_LINK
        return np.full(
            len(queries), self.last_resort, dtype=np.float64
        )

    def size_words(self) -> int:
        """Footprint of the links built so far."""
        return sum(
            link._estimator.size_words()
            for link in self.links
            if link._estimator is not None
        )

    def serving_link(self) -> Optional[str]:
        """Name of the first currently-allowed link (for reports)."""
        for link in self.links:
            if link.breaker.allow():
                return link.name
        return None


def build_fallback_chain(
    rects: RectSet,
    n_buckets: int,
    *,
    n_regions: int = 2_500,
    sample_seed: int = 0,
    clock: Optional[StepClock] = None,
    call_budget_steps: Optional[int] = DEFAULT_CALL_BUDGET_STEPS,
    retry: Optional[RetryPolicy] = None,
    failure_threshold: int = 3,
    reset_after_steps: int = 25,
) -> GuardedEstimator:
    """The canonical chain: Min-Skew → Sample → Uniform.

    Sample gets the paper's liberal allocation (two sample rectangles
    per bucket of budget, Section 5.4); Uniform is the constant-space
    link of last resort — once built it cannot fail on a valid query.
    """
    shared_clock = clock if clock is not None else StepClock()

    def build_minskew() -> SelectivityEstimator:
        from ..core.minskew import MinSkewPartitioner

        return BucketEstimator.build(
            MinSkewPartitioner(n_buckets, n_regions=n_regions), rects
        )

    def build_sample() -> SelectivityEstimator:
        sample_size = max(
            1, n_buckets * WORDS_PER_BUCKET // WORDS_PER_SAMPLE
        )
        return SampleEstimator(rects, sample_size, seed=sample_seed)

    def build_uniform() -> SelectivityEstimator:
        return UniformEstimator(rects)

    builders: List[Callable[[], SelectivityEstimator]] = [
        build_minskew, build_sample, build_uniform,
    ]
    names = ["Min-Skew", "Sample", "Uniform"]
    links = [
        FallbackLink(
            name,
            builder,
            CircuitBreaker(
                shared_clock,
                failure_threshold=failure_threshold,
                reset_after_steps=reset_after_steps,
            ),
        )
        for name, builder in zip(names, builders)
    ]
    return GuardedEstimator(
        links,
        clock=shared_clock,
        call_budget_steps=call_budget_steps,
        retry=retry,
    )

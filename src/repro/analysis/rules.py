"""The repository's invariant rules.

Every rule is an :class:`ast.NodeVisitor` subclass registered in
:data:`RULES` via :func:`register`.  The engine instantiates one rule
object per (file, rule) pair and calls :meth:`Rule.run`; rules report
findings with :meth:`Rule.report` and never raise on weird-but-legal
code — a linter that crashes on unusual input is worse than one that
misses a finding.

Rule codes
----------
DET001
    Determinism: no global-RNG or wall-clock calls in result paths.
    Randomness must be threaded as ``numpy.random.Generator`` values
    constructed from explicit seeds.
NPY001
    Dtype hygiene: ``.astype``/``dtype=`` must name an explicit numpy
    dtype (``np.int64``), never a platform-dependent builtin (``int``)
    or a string alias.
MUT001
    Purity: public functions of the kernel packages must not mutate
    their parameters in place.
OBS001
    Metric keys passed to ``OBS.add``/``OBS.timer``/``OBS.observe``
    must be string literals (or f-strings with a literal dotted
    prefix) under a registered namespace.
API001
    Public functions in the core packages carry complete type
    annotations: every parameter and the return type.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Type

from .config import LintConfig
from .diagnostics import Violation
from .engine import ModuleContext

__all__ = ["Rule", "RULES", "register"]

#: Registry of every known rule, keyed by code.
RULES: Dict[str, Type["Rule"]] = {}


def register(rule_class: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to :data:`RULES`."""
    code = rule_class.code
    if not code or code in RULES:
        raise ValueError(f"duplicate or empty rule code: {code!r}")
    RULES[code] = rule_class
    return rule_class


class Rule(ast.NodeVisitor):
    """Base class for one lint rule over one module."""

    #: Short unique code, e.g. ``"DET001"``.
    code: str = ""
    #: One-line description shown by ``repro-spatial lint --list-rules``.
    summary: str = ""

    def __init__(self, ctx: ModuleContext, config: LintConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.violations: List[Violation] = []

    def run(self) -> List[Violation]:
        """Visit the module and return this rule's findings."""
        if self.applies():
            self.visit(self.ctx.tree)
        return self.violations

    def applies(self) -> bool:
        """Whether this rule is in scope for the module at all."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        ))


# ----------------------------------------------------------------------
# DET001 — determinism
# ----------------------------------------------------------------------
@register
class DeterminismRule(Rule):
    """Forbid global-RNG and wall-clock reads in result paths."""

    code = "DET001"
    summary = (
        "no global-RNG or wall-clock calls; thread a seeded "
        "numpy.random.Generator instead"
    )

    def applies(self) -> bool:
        return not self.ctx.in_packages(
            self.config.det001_allow_modules
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve(node.func)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if name in self.config.det001_banned_calls:
            self.report(node, self._banned_message(name))
            return
        if name == "numpy.random.default_rng" and not node.args:
            self.report(
                node,
                "numpy.random.default_rng() without a seed is "
                "non-deterministic; pass an explicit seed or accept a "
                "Generator parameter",
            )
            return
        # Any function of the stdlib ``random`` module is global-RNG
        # state (and ``random.Random()`` unseeded is just as bad).
        if name.startswith("random.") \
                and "random" in self.ctx.imported_modules:
            self.report(node, self._banned_message(name))

    @staticmethod
    def _banned_message(name: str) -> str:
        if name.startswith("time."):
            return (
                f"{name}() reads the wall clock in a result path; "
                "time only in the observability layer or accept a "
                "clock parameter"
            )
        return (
            f"{name}() uses global RNG state; thread an explicitly "
            "seeded numpy.random.Generator parameter instead"
        )


# ----------------------------------------------------------------------
# NPY001 — dtype hygiene
# ----------------------------------------------------------------------
_BUILTIN_DTYPES = {"int", "float", "bool", "complex"}

# String aliases of *numeric* dtypes hide the width ("int", "f8") or
# restate it unreadably ("<i8"); explicit unicode/bytes/void dtypes
# like "<U1" carry their width and are not numeric, so they pass.
_NUMERIC_DTYPE_STRING_RE = re.compile(
    r"^(u?int|float|complex)\d*$|^bool8?$|^[<>=|]?[ifubc]\d*$"
)


@register
class DtypeRule(Rule):
    """Forbid implicit/platform-dependent dtypes on array conversions."""

    code = "NPY001"
    summary = (
        ".astype()/dtype= must name an explicit numpy dtype "
        "(np.int64, np.float64), not a builtin or string alias"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "astype":
            self._check_astype(node)
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                self._check_dtype_value(keyword.value)
        self.generic_visit(node)

    def _check_astype(self, node: ast.Call) -> None:
        if not node.args and not any(
            k.arg == "dtype" for k in node.keywords
        ):
            self.report(
                node, ".astype() call without a dtype argument"
            )
            return
        if node.args:
            self._check_dtype_value(node.args[0])
        # dtype= keywords are handled once, in visit_Call.

    def _check_dtype_value(self, value: ast.expr) -> None:
        if isinstance(value, ast.Name) and value.id in _BUILTIN_DTYPES:
            if value.id in ("int", "float"):
                hint = f"such as np.{value.id}64"
            else:
                hint = f"such as np.{value.id}_"
            self.report(
                value,
                f"builtin dtype {value.id!r} is platform-dependent; "
                f"use an explicit numpy dtype {hint}",
            )
        elif isinstance(value, ast.Constant) \
                and isinstance(value.value, str) \
                and _NUMERIC_DTYPE_STRING_RE.match(value.value):
            self.report(
                value,
                f"string dtype {value.value!r} hides the width; use "
                f"an explicit numpy dtype such as np.int64/np.float64",
            )


# ----------------------------------------------------------------------
# MUT001 — parameter purity
# ----------------------------------------------------------------------
@register
class MutationRule(Rule):
    """Forbid in-place mutation of parameters in public functions."""

    code = "MUT001"
    summary = (
        "public kernel functions must not mutate their parameters "
        "in place"
    )

    def applies(self) -> bool:
        return self.ctx.in_packages(self.config.mut001_packages)

    # Only walk top-level and public-class functions; visit_ClassDef /
    # visit_FunctionDef below stop generic descent so nested/private
    # scopes are not re-entered.
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.startswith("_"):
            return
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(item, is_method=True)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node, is_method=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node, is_method=False)

    def _check_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        *,
        is_method: bool,
    ) -> None:
        if node.name.startswith("_") and not _is_dunder(node.name):
            return
        params = _parameter_names(node.args, drop_self=is_method)
        if not params:
            return
        tracked = params - _rebound_names(node)
        if not tracked:
            return
        for statement in node.body:
            self._scan(statement, tracked, node.name)

    def _scan(
        self, node: ast.AST, params: Set[str], func_name: str
    ) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    self._check_target(target, params, func_name)
            elif isinstance(child, ast.AugAssign):
                name = _root_name(child.target)
                if name in params:
                    self.report(
                        child,
                        f"augmented assignment mutates parameter "
                        f"{name!r} of public function {func_name}()",
                    )
            elif isinstance(child, ast.Call):
                self._check_method_call(child, params, func_name)

    def _check_target(
        self, target: ast.expr, params: Set[str], func_name: str
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, params, func_name)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            name = _root_name(target)
            if name in params:
                what = "item" if isinstance(target, ast.Subscript) \
                    else "attribute"
                self.report(
                    target,
                    f"{what} assignment mutates parameter {name!r} of "
                    f"public function {func_name}()",
                )

    def _check_method_call(
        self, node: ast.Call, params: Set[str], func_name: str
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in self.config.mut001_mutating_methods:
            return
        name = _root_name(func.value)
        if name in params:
            self.report(
                node,
                f"{name}.{func.attr}() mutates parameter {name!r} of "
                f"public function {func_name}() in place",
            )


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _parameter_names(
    args: ast.arguments, *, drop_self: bool
) -> Set[str]:
    ordered = list(args.posonlyargs) + list(args.args)
    names = [a.arg for a in ordered]
    if drop_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return set(names)


def _rebound_names(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    """Names re-bound anywhere in the body.

    A function that does ``arr = arr.copy()`` owns the new object, so
    later mutation of ``arr`` is legal; tracking order of statements
    would need a CFG, so rebinding anywhere exempts the name (the rule
    prefers false negatives over false positives).
    """
    rebound: Set[str] = set()
    for child in ast.walk(node):
        targets: Sequence[ast.expr] = ()
        if isinstance(child, ast.Assign):
            targets = child.targets
        elif isinstance(child, ast.AnnAssign):
            targets = (child.target,)
        elif isinstance(child, ast.For):
            targets = (child.target,)
        elif isinstance(child, ast.withitem):
            if child.optional_vars is not None:
                targets = (child.optional_vars,)
        for target in targets:
            rebound.update(_bare_bound_names(target))
    return rebound


def _bare_bound_names(target: ast.expr) -> Set[str]:
    """Names *re-bound* by an assignment target.

    Only bare names count: ``arr = ...`` re-binds ``arr``, while
    ``arr[0] = ...`` or ``arr.attr = ...`` mutate the object ``arr``
    still refers to — those are exactly what MUT001 flags, so they
    must not exempt the parameter.
    """
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, ast.Starred):
        names.update(_bare_bound_names(target.value))
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_bare_bound_names(element))
    return names


def _root_name(node: ast.expr) -> Optional[str]:
    """The base ``Name`` of a Subscript/Attribute chain, if any."""
    current: ast.expr = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


# ----------------------------------------------------------------------
# OBS001 — metric-key discipline
# ----------------------------------------------------------------------
_METRIC_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[A-Za-z0-9_\-]+)+$")
_METRIC_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*\.")
_OBS_METHODS = frozenset({"add", "observe", "timer"})


@register
class MetricKeyRule(Rule):
    """Metric keys must be literal and follow the naming scheme."""

    code = "OBS001"
    summary = (
        "OBS metric keys must be literal dotted names under a "
        "registered namespace"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _OBS_METHODS \
                and self._is_obs(func.value):
            self._check_key(node, func.attr)
        self.generic_visit(node)

    def _is_obs(self, node: ast.expr) -> bool:
        resolved = self.ctx.resolve(node)
        if resolved is None:
            return False
        return resolved == "OBS" or resolved.endswith(".OBS") \
            or resolved == "repro.obs.OBS"

    def _check_key(self, node: ast.Call, method: str) -> None:
        if not node.args:
            self.report(
                node, f"OBS.{method}() called without a metric key"
            )
            return
        key = node.args[0]
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            self._check_literal(key, key.value, method)
        elif isinstance(key, ast.JoinedStr):
            self._check_fstring(key, method)
        else:
            self.report(
                key,
                f"OBS.{method}() key must be a string literal (or an "
                f"f-string with a literal dotted prefix), not a "
                f"computed expression",
            )

    def _check_literal(
        self, node: ast.AST, value: str, method: str
    ) -> None:
        if not _METRIC_KEY_RE.match(value):
            self.report(
                node,
                f"metric key {value!r} does not match the naming "
                f"scheme 'namespace.metric_name'",
            )
            return
        self._check_namespace(node, value, method)

    def _check_fstring(self, node: ast.JoinedStr, method: str) -> None:
        first = node.values[0] if node.values else None
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            self.report(
                node,
                f"OBS.{method}() f-string key must start with a "
                f"literal 'namespace.' prefix",
            )
            return
        prefix = first.value
        if not _METRIC_PREFIX_RE.match(prefix):
            self.report(
                node,
                f"metric-key prefix {prefix!r} must be a literal "
                f"dotted namespace ('namespace.')",
            )
            return
        self._check_namespace(node, prefix, method)

    def _check_namespace(
        self, node: ast.AST, key: str, method: str
    ) -> None:
        namespace = key.split(".", 1)[0]
        if namespace not in self.config.obs_namespaces:
            registered = ", ".join(sorted(self.config.obs_namespaces))
            self.report(
                node,
                f"metric namespace {namespace!r} is not registered "
                f"(known: {registered})",
            )


# ----------------------------------------------------------------------
# API001 — annotation completeness
# ----------------------------------------------------------------------
@register
class AnnotationRule(Rule):
    """Public functions in core packages must be fully annotated."""

    code = "API001"
    summary = (
        "public core-package functions need complete parameter and "
        "return annotations"
    )

    def applies(self) -> bool:
        return self.ctx.in_packages(self.config.api001_packages)

    def visit_Module(self, node: ast.Module) -> None:
        for item in node.body:
            self._visit_scope_item(item, in_class=False)

    def _visit_scope_item(
        self, node: ast.stmt, *, in_class: bool
    ) -> None:
        if isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                return
            for item in node.body:
                self._visit_scope_item(item, in_class=True)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(node, is_method=in_class)

    def _check_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        *,
        is_method: bool,
    ) -> None:
        if node.name.startswith("_") and not _is_dunder(node.name):
            return
        missing = _unannotated_args(node.args, drop_self=is_method)
        for arg in missing:
            self.report(
                arg,
                f"parameter {arg.arg!r} of public function "
                f"{node.name}() has no type annotation",
            )
        if node.returns is None:
            self.report(
                node,
                f"public function {node.name}() has no return type "
                f"annotation",
            )


def _unannotated_args(
    args: ast.arguments, *, drop_self: bool
) -> List[ast.arg]:
    ordered = list(args.posonlyargs) + list(args.args)
    if drop_self and ordered and ordered[0].arg in ("self", "cls"):
        ordered = ordered[1:]
    ordered.extend(args.kwonlyargs)
    if args.vararg is not None:
        ordered.append(args.vararg)
    if args.kwarg is not None:
        ordered.append(args.kwarg)
    return [a for a in ordered if a.annotation is None]

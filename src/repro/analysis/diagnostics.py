"""Diagnostic records produced by the invariant linter.

A :class:`Violation` is one finding at one source location.  Violations
are value objects: hashable, totally ordered by ``(path, line, col,
rule)`` so reports are deterministic regardless of rule execution
order, and serialisable via :meth:`Violation.as_dict` for the JSON
reporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Violation", "PARSE_RULE"]

#: Pseudo-rule code attached to files the linter cannot parse.
PARSE_RULE = "PARSE"


@dataclass(frozen=True, order=True)
class Violation:
    """One linter finding.

    Attributes
    ----------
    path:
        Source file, as given to the linter (posix separators).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code (``DET001``, ``NPY001``, ... or :data:`PARSE_RULE`).
    message:
        Human-readable explanation, one line.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (keys pinned by the
        reporter schema in :mod:`repro.analysis.reporters`)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

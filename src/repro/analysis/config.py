"""Linter configuration: rule selection and per-rule knobs.

:data:`DEFAULT_CONFIG` encodes this repository's invariants — which
packages must not mutate their arguments, which metric namespaces are
registered, where wall-clock reads are legitimate.  Tests and the CLI
build variations with :meth:`LintConfig.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class LintConfig:
    """Immutable linter settings.

    Attributes
    ----------
    select:
        Rule codes to run, or ``None`` for every registered rule.
    det001_allow_modules:
        Module prefixes (``repro.obs``) where DET001 is not enforced —
        the observability layer legitimately reads wall clocks.
    det001_banned_calls:
        Fully-qualified callables that break run determinism.
    mut001_packages:
        Module prefixes whose *public* functions must not mutate their
        array/sequence parameters in place.
    mut001_mutating_methods:
        Method names on a parameter treated as in-place mutation.
    api001_packages:
        Module prefixes whose public functions require complete type
        annotations (every parameter and the return type).
    obs_namespaces:
        First dotted segment a metric key must start with; the
        registered-metric naming scheme of :mod:`repro.obs`.
    exclude_dir_names:
        Directory basenames skipped while walking lint targets.
    epoch001_packages:
        Module prefixes whose revalidating classes EPOCH001 checks.
    epoch001_revalidators:
        Method names that bring derived state up to date; a class is
        in EPOCH001 scope when it defines or inherits one of these.
    epoch001_cache_attrs:
        ``self.<attr>`` names treated as the query cache.
    epoch001_read_methods:
        Methods on a cache attribute that read derived state.
    epoch001_probe_methods:
        Methods on any ``self`` attribute treated as an index probe
        (``candidates`` — the :class:`BucketIndex` contract).
    epoch001_exempt_methods:
        Methods never analysed (constructors; the revalidators
        themselves are always exempt).
    epoch001_mutation_attrs:
        Published-summary attributes: storing one on any receiver
        other than ``self`` (``hist.buckets = ...``) bypasses the
        owner's atomic epoch-bump publish (``replace_buckets``) and
        is flagged in every EPOCH001 package.
    pickle001_boundaries:
        Qualified callables whose arguments cross a pickle boundary.
    seed001_constructors:
        Qualified RNG constructors whose seed argument SEED001 traces
        across call edges.
    order001_packages:
        Module prefixes where iteration over unordered sets must not
        feed float accumulation.
    res002_packages:
        Module prefixes whose IPC receive loops RES002 checks.
    res002_recv_methods:
        Attribute calls treated as blocking IPC reads (connection
        ``recv``/``recv_bytes``/``poll``).
    res002_check_attrs:
        Attribute calls that consume deadline budget
        (``Deadline.check``); each IPC read must be dominated by one.
    res002_exempt_functions:
        Function/method names RES002 never analyses — the worker-side
        idle loop blocks on ``recv`` by design (its supervisor kills
        it), only parent-side loops must carry deadlines.
    """

    select: Optional[FrozenSet[str]] = None
    det001_allow_modules: Tuple[str, ...] = ("repro.obs",)
    det001_banned_calls: FrozenSet[str] = frozenset({
        "numpy.random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.ranf",
        "numpy.random.sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.exponential",
        "numpy.random.poisson",
        "numpy.random.RandomState",
        "numpy.random.set_state",
        "time.time",
        "time.time_ns",
    })
    mut001_packages: Tuple[str, ...] = (
        "repro.geometry",
        "repro.core",
        "repro.estimators",
    )
    # ``ndarray.partition`` is omitted: the name collides with the
    # repository's own ``Partitioner.partition()`` protocol, which is
    # pure.
    mut001_mutating_methods: FrozenSet[str] = frozenset({
        "sort", "fill", "resize", "put", "setflags", "itemset",
        "append", "extend", "insert", "remove", "pop", "clear",
        "reverse", "update", "setdefault", "popitem", "discard",
    })
    api001_packages: Tuple[str, ...] = (
        "repro.geometry",
        "repro.obs",
        "repro.core",
        "repro.estimators",
        "repro.analysis",
        "repro.errors",
        "repro.resilience",
    )
    obs_namespaces: FrozenSet[str] = frozenset({
        "bench", "build", "counting", "data", "equi_area", "equi_count",
        "estimate", "estimator", "eval", "grid", "lint", "maintenance",
        "minskew", "obs", "oracle", "partition", "progressive",
        "resilience", "rtree", "serving", "storage", "tuning",
        "workload",
    })
    exclude_dir_names: Tuple[str, ...] = (
        "__pycache__", ".git", ".venv", "build", "dist",
    )
    epoch001_packages: Tuple[str, ...] = (
        "repro.serving",
        "repro.estimators",
        "repro.tuning",
    )
    epoch001_revalidators: Tuple[str, ...] = ("_revalidate", "sync")
    epoch001_cache_attrs: FrozenSet[str] = frozenset({
        "cache", "_cache",
    })
    epoch001_read_methods: FrozenSet[str] = frozenset({
        "lookup", "lookup_batch", "get",
    })
    epoch001_probe_methods: FrozenSet[str] = frozenset({
        "candidates",
    })
    epoch001_exempt_methods: FrozenSet[str] = frozenset({
        "__init__", "__repr__", "__getstate__", "__setstate__",
    })
    epoch001_mutation_attrs: FrozenSet[str] = frozenset({
        "buckets",
    })
    pickle001_boundaries: FrozenSet[str] = frozenset({
        "repro.serving.parallel.ShardWorkerPool",
        "repro.serving.parallel.parallel_map",
        "concurrent.futures.ProcessPoolExecutor",
        "pickle.dumps",
        "pickle.dump",
    })
    seed001_constructors: FrozenSet[str] = frozenset({
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.SeedSequence",
    })
    order001_packages: Tuple[str, ...] = (
        "repro.core",
        "repro.estimators",
        "repro.serving",
    )
    res002_packages: Tuple[str, ...] = ("repro.serving",)
    res002_recv_methods: FrozenSet[str] = frozenset({
        "recv", "recv_bytes", "poll",
    })
    res002_check_attrs: FrozenSet[str] = frozenset({"check"})
    res002_exempt_functions: Tuple[str, ...] = (
        "_shard_worker_main",
    )

    def replace(self, **changes: Any) -> "LintConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def wants(self, rule_code: str) -> bool:
        """True when ``rule_code`` is enabled by this configuration."""
        return self.select is None or rule_code in self.select


#: The repository's standing configuration (what CI enforces).
DEFAULT_CONFIG = LintConfig()

"""Linter engine: file walking, parsing, suppressions, rule running.

The engine owns everything rule-independent.  For each ``.py`` file it
builds a :class:`ModuleContext` — the parsed tree plus an import-alias
map so rules reason about *fully-qualified* call names (``np.random
.seed`` and ``from numpy import random as r; r.seed`` both resolve to
``numpy.random.seed``) — then runs every enabled rule from the registry
and filters findings through ``# repro: noqa[RULE]`` suppressions.

Suppression comments attach to the flagged line::

    t0 = time.time()  # repro: noqa[DET001]   suppress one rule
    t0 = time.time()  # repro: noqa           suppress every rule

Unparseable files yield a single :data:`~repro.analysis.diagnostics
.PARSE_RULE` violation instead of crashing the run, so one bad file
cannot hide findings in the rest of the tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Set, Tuple, Union

from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import PARSE_RULE, Violation

__all__ = [
    "ModuleContext",
    "LintResult",
    "iter_source_files",
    "iter_suppression_comments",
    "lint_file",
    "lint_paths",
    "lint_source",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def iter_suppression_comments(
    source: str,
) -> List[Tuple[int, int, Optional[FrozenSet[str]]]]:
    """Every ``# repro: noqa[...]`` *comment* as (line, col, rules).

    ``rules`` is ``None`` for a bare ``# repro: noqa``.  Comments are
    found through the tokenizer, so noqa-shaped text inside strings
    and docstrings is never a suppression (and, since SUP001, never a
    false "unused suppression" finding either).  Untokenizable input
    falls back to a line-by-line regex scan — a linter that silently
    ignores suppressions in a file it could still parse would resurrect
    findings the author explicitly waived.
    """
    found: List[Tuple[int, int, Optional[FrozenSet[str]]]] = []

    def record(text: str, line: int, col: int) -> None:
        # The directive must BE the comment, not appear inside one —
        # prose like "a bare ``# repro: noqa`` silences…" mid-comment
        # is documentation, not a suppression.
        match = _NOQA_RE.match(text)
        if match is None:
            return
        rules = match.group("rules")
        if rules is None:
            found.append((line, col, None))
        else:
            found.append((line, col, frozenset(
                part.strip().upper()
                for part in rules.split(",") if part.strip()
            )))

    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            hash_at = text.find("#")
            if hash_at >= 0:
                record(text[hash_at:], lineno, hash_at)
        return found
    for token in tokens:
        if token.type == tokenize.COMMENT:
            record(token.string, token.start[0], token.start[1])
    return found


def _collect_suppressions(
    source: str,
) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map 1-based line numbers to suppressed rule sets.

    ``None`` means every rule is suppressed on that line.
    """
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    for line, _col, rules in iter_suppression_comments(source):
        if rules is None or line not in table:
            table[line] = rules
        else:
            existing = table[line]
            if existing is not None:
                table[line] = existing | rules
    return table


def _module_name_of(path: str) -> str:
    """Dotted module name, anchored at the last ``repro`` component.

    Files outside a ``repro`` package tree fall back to their stem, so
    fixture files in tests still get a usable module key.
    """
    parts = Path(path).parts
    anchor: Optional[int] = None
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
    if anchor is None:
        dotted = Path(path).stem
    else:
        tail = [p for p in parts[anchor:]]
        tail[-1] = Path(tail[-1]).stem
        if tail[-1] == "__init__":
            tail = tail[:-1]
        dotted = ".".join(tail)
    return dotted


class _ImportCollector(ast.NodeVisitor):
    """First pass: record import aliases and imported module roots."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}
        self.modules: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            # ``import numpy.random`` binds ``numpy``; ``import
            # numpy.random as nr`` binds ``nr`` to the full path.
            target = alias.name if alias.asname else \
                alias.name.split(".", 1)[0]
            self.aliases[bound] = target
            self.modules.add(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports stay inside this package; rules about
            # numpy/time/random never involve them.
            return
        for alias in node.names:
            bound = alias.asname or alias.name
            self.aliases[bound] = f"{node.module}.{alias.name}"
            self.modules.add(node.module)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    imported_modules: FrozenSet[str] = frozenset()

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleContext":
        """Parse ``source``; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(source, filename=path)
        imports = _ImportCollector()
        imports.visit(tree)
        return cls(
            path=path,
            module=_module_name_of(path),
            source=source,
            tree=tree,
            aliases=imports.aliases,
            imported_modules=frozenset(imports.modules),
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a Name/Attribute chain.

        Expands the chain's root through the module's import aliases:
        with ``import numpy as np``, ``np.random.seed`` resolves to
        ``"numpy.random.seed"``.  Returns ``None`` for anything that is
        not a plain dotted chain (calls, subscripts, literals).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        root = self.aliases.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])

    def in_packages(self, prefixes: Sequence[str]) -> bool:
        """True when this module lives under one of ``prefixes``."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    files_checked: int
    violations: Tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_source_files(
    paths: Iterable[Union[str, Path]],
    *,
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    excluded = set(config.exclude_dir_names)
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not excluded.intersection(candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such lint target: {path}")
    seen: Set[str] = set()
    unique: List[Path] = []
    for path in found:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Violation]:
    """Lint one in-memory module; the core of :func:`lint_file`."""
    from .rules import RULES  # deferred: rules import this module

    try:
        ctx = ModuleContext.from_source(source, path)
    except SyntaxError as exc:
        return [Violation(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_RULE,
            message=f"cannot parse file: {exc.msg}",
        )]

    suppressions = _collect_suppressions(source)
    found: List[Violation] = []
    for code, rule_class in sorted(RULES.items()):
        if not config.wants(code):
            continue
        rule = rule_class(ctx, config)
        found.extend(rule.run())

    kept: List[Violation] = []
    for violation in found:
        if violation.line in suppressions:
            suppressed = suppressions[violation.line]
            # ``None`` is a bare ``# repro: noqa``: silence everything.
            if suppressed is None or violation.rule in suppressed:
                continue
        kept.append(violation)
    return sorted(kept)


def lint_file(
    path: Union[str, Path],
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Violation]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, Path(path).as_posix(), config)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Lint every ``.py`` file reachable from ``paths``."""
    files = iter_source_files(paths, config=config)
    violations: List[Violation] = []
    for path in files:
        violations.extend(lint_file(path, config))
    return LintResult(
        files_checked=len(files),
        violations=tuple(sorted(violations)),
    )

"""Static analysis: the repository's AST-based invariant linter.

The paper's figures are only trustworthy if every run is
byte-deterministic and every geometry array keeps the float64 ``(N, 4)``
contract.  PR 1's determinism and differential tests check those
invariants *dynamically*; this package enforces them *statically*, so a
stray ``np.random.seed`` or silent dtype downcast fails fast in review
rather than rotting the figures.

Layout:

* :mod:`repro.analysis.engine` — visitor core: file walking, parsing,
  import-alias resolution, ``# repro: noqa[RULE]`` suppressions;
* :mod:`repro.analysis.rules` — the rule registry and the repository
  rules (DET001, NPY001, MUT001, OBS001, API001);
* :mod:`repro.analysis.config` — per-rule knobs and package scopes;
* :mod:`repro.analysis.reporters` — text, schema-pinned JSON, and
  SARIF 2.1.0 output;
* :mod:`repro.analysis.project` — the whole-program pass: symbol
  tables, call graph, dominance analysis, and the cross-module rules
  (EPOCH001, PICKLE001, SEED001, ORDER001, SUP001) behind
  ``repro-spatial lint --project``.

Run it via ``repro-spatial lint src/`` or programmatically::

    from repro.analysis import DEFAULT_CONFIG, lint_paths, render_text

    result = lint_paths(["src"], DEFAULT_CONFIG)
    print(render_text(result))
    assert result.ok
"""

from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import PARSE_RULE, Violation
from .engine import (
    LintResult,
    ModuleContext,
    iter_source_files,
    iter_suppression_comments,
    lint_file,
    lint_paths,
    lint_source,
)
from .project import (
    PROJECT_RULES,
    ProjectRule,
    apply_baseline,
    fingerprint,
    lint_project,
    load_baseline,
    load_project,
    register_project,
    write_baseline,
)
from .reporters import (
    LINT_JSON_SCHEMA,
    SARIF_VERSION,
    lint_json_dict,
    render_json,
    render_sarif,
    render_text,
    sarif_dict,
    validate_lint_json,
    validate_sarif,
)
from .rules import RULES, Rule, register

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "PARSE_RULE",
    "Violation",
    "LintResult",
    "ModuleContext",
    "iter_source_files",
    "iter_suppression_comments",
    "lint_file",
    "lint_paths",
    "lint_source",
    "LINT_JSON_SCHEMA",
    "SARIF_VERSION",
    "lint_json_dict",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_dict",
    "validate_lint_json",
    "validate_sarif",
    "RULES",
    "Rule",
    "register",
    "PROJECT_RULES",
    "ProjectRule",
    "apply_baseline",
    "fingerprint",
    "lint_project",
    "load_baseline",
    "load_project",
    "register_project",
    "write_baseline",
]

"""Lint-result rendering: human text, machine JSON, and SARIF.

The JSON document shape is pinned by :data:`LINT_JSON_SCHEMA` (and
checked by :func:`validate_lint_json`, which the test suite runs over
every rendered report) so editor integrations and CI annotations can
rely on it::

    {
      "version": 1,
      "tool": "repro-lint",
      "files_checked": 63,
      "summary": {"total": 2, "by_rule": {"DET001": 2}},
      "violations": [
        {"path": "...", "line": 12, "col": 4,
         "rule": "DET001", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .engine import LintResult

__all__ = [
    "LINT_JSON_SCHEMA",
    "SARIF_VERSION",
    "render_text",
    "render_json",
    "render_sarif",
    "lint_json_dict",
    "sarif_dict",
    "validate_lint_json",
    "validate_sarif",
]

#: Bump when the report layout changes incompatibly.
REPORT_VERSION = 1

LINT_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro lint report",
    "type": "object",
    "required": [
        "version", "tool", "files_checked", "summary", "violations",
    ],
    "properties": {
        "version": {"const": REPORT_VERSION},
        "tool": {"const": "repro-lint"},
        "files_checked": {"type": "integer", "minimum": 0},
        "summary": {
            "type": "object",
            "required": ["total", "by_rule"],
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "by_rule": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "integer", "minimum": 1,
                    },
                },
            },
        },
        "violations": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["path", "line", "col", "rule", "message"],
                "properties": {
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "col": {"type": "integer", "minimum": 0},
                    "rule": {"type": "string"},
                    "message": {"type": "string", "minLength": 1},
                },
            },
        },
    },
}


def render_text(result: LintResult) -> str:
    """One diagnostic per line plus a closing summary line."""
    lines = [violation.format() for violation in result.violations]
    if result.violations:
        by_rule = ", ".join(
            f"{rule}: {count}"
            for rule, count in result.by_rule().items()
        )
        lines.append(
            f"{len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"in {result.files_checked} files ({by_rule})"
        )
    else:
        lines.append(f"{result.files_checked} files clean")
    return "\n".join(lines)


def lint_json_dict(result: LintResult) -> Dict[str, Any]:
    """The report as a JSON-serialisable dict (see the schema)."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "files_checked": result.files_checked,
        "summary": {
            "total": len(result.violations),
            "by_rule": result.by_rule(),
        },
        "violations": [v.as_dict() for v in result.violations],
    }


def render_json(result: LintResult, *, indent: int = 2) -> str:
    """The report serialised as JSON text."""
    return json.dumps(lint_json_dict(result), indent=indent,
                      sort_keys=True)


#: SARIF spec version emitted by :func:`sarif_dict`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_summaries() -> Dict[str, str]:
    """Code -> one-line summary across both rule registries."""
    from .project.rules import PROJECT_RULES
    from .rules import RULES

    summaries: Dict[str, str] = {
        code: rule_class.summary
        for code, rule_class in RULES.items()
    }
    for code, project_class in PROJECT_RULES.items():
        summaries[code] = project_class.summary
    return summaries


def sarif_dict(result: LintResult) -> Dict[str, Any]:
    """The report as a minimal SARIF 2.1.0 document.

    One run, driver ``repro-lint``; every finding is ``level: error``
    (this linter has no warning tier — a finding either blocks CI or
    is baselined away).  Only rules that actually fired are listed in
    the driver, keeping uploads small.
    """
    summaries = _rule_summaries()
    fired = sorted(result.by_rule())
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": summaries.get(code, code),
            },
        }
        for code in fired
    ]
    rule_index = {code: i for i, code in enumerate(fired)}
    results = [
        {
            "ruleId": violation.rule,
            "ruleIndex": rule_index[violation.rule],
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        for violation in result.violations
    ]
    return {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(result: LintResult, *, indent: int = 2) -> str:
    """The SARIF document serialised as JSON text."""
    return json.dumps(sarif_dict(result), indent=indent,
                      sort_keys=True)


def validate_sarif(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a well-formed
    repro-lint SARIF document (structural check, no dependencies)."""
    if not isinstance(doc, dict):
        raise ValueError("SARIF report must be a JSON object")
    if doc.get("version") != SARIF_VERSION:
        raise ValueError(f"unknown SARIF version {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        raise ValueError("SARIF report must carry exactly one run")
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "repro-lint":
        raise ValueError(f"unknown SARIF driver {driver.get('name')!r}")
    rule_ids = {rule.get("id") for rule in driver.get("rules", [])}
    results = run.get("results")
    if not isinstance(results, list):
        raise ValueError("SARIF run.results must be an array")
    for i, item in enumerate(results):
        if not isinstance(item, dict):
            raise ValueError(f"results[{i}] must be an object")
        if item.get("ruleId") not in rule_ids:
            raise ValueError(
                f"results[{i}].ruleId {item.get('ruleId')!r} is not "
                f"declared in the driver rules"
            )
        if not item.get("message", {}).get("text"):
            raise ValueError(f"results[{i}] is missing message.text")
        locations = item.get("locations")
        if not isinstance(locations, list) or not locations:
            raise ValueError(f"results[{i}] needs at least one location")
        region = locations[0].get("physicalLocation", {}) \
            .get("region", {})
        if not isinstance(region.get("startLine"), int) \
                or region["startLine"] < 1:
            raise ValueError(f"results[{i}].startLine must be >= 1")
        if not isinstance(region.get("startColumn"), int) \
                or region["startColumn"] < 1:
            raise ValueError(f"results[{i}].startColumn must be >= 1")


def validate_lint_json(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the report
    schema (structural check; no external dependencies)."""
    if not isinstance(doc, dict):
        raise ValueError("lint report must be a JSON object")
    for key in LINT_JSON_SCHEMA["required"]:
        if key not in doc:
            raise ValueError(f"lint report is missing {key!r}")
    if doc["version"] != REPORT_VERSION:
        raise ValueError(f"unknown lint report version {doc['version']!r}")
    if doc["tool"] != "repro-lint":
        raise ValueError(f"unknown lint tool {doc['tool']!r}")
    if not isinstance(doc["files_checked"], int) \
            or doc["files_checked"] < 0:
        raise ValueError("files_checked must be a non-negative integer")
    summary = doc["summary"]
    if not isinstance(summary, dict) or "total" not in summary \
            or "by_rule" not in summary:
        raise ValueError("summary must carry 'total' and 'by_rule'")
    violations = doc["violations"]
    if not isinstance(violations, list):
        raise ValueError("violations must be an array")
    if summary["total"] != len(violations):
        raise ValueError("summary.total disagrees with violations")
    for i, item in enumerate(violations):
        if not isinstance(item, dict):
            raise ValueError(f"violations[{i}] must be an object")
        for key in ("path", "line", "col", "rule", "message"):
            if key not in item:
                raise ValueError(f"violations[{i}] is missing {key!r}")
        if not isinstance(item["line"], int) or item["line"] < 1:
            raise ValueError(f"violations[{i}].line must be >= 1")
        if not isinstance(item["col"], int) or item["col"] < 0:
            raise ValueError(f"violations[{i}].col must be >= 0")

"""Lint-result rendering: human text and machine JSON.

The JSON document shape is pinned by :data:`LINT_JSON_SCHEMA` (and
checked by :func:`validate_lint_json`, which the test suite runs over
every rendered report) so editor integrations and CI annotations can
rely on it::

    {
      "version": 1,
      "tool": "repro-lint",
      "files_checked": 63,
      "summary": {"total": 2, "by_rule": {"DET001": 2}},
      "violations": [
        {"path": "...", "line": 12, "col": 4,
         "rule": "DET001", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .engine import LintResult

__all__ = [
    "LINT_JSON_SCHEMA",
    "render_text",
    "render_json",
    "lint_json_dict",
    "validate_lint_json",
]

#: Bump when the report layout changes incompatibly.
REPORT_VERSION = 1

LINT_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro lint report",
    "type": "object",
    "required": [
        "version", "tool", "files_checked", "summary", "violations",
    ],
    "properties": {
        "version": {"const": REPORT_VERSION},
        "tool": {"const": "repro-lint"},
        "files_checked": {"type": "integer", "minimum": 0},
        "summary": {
            "type": "object",
            "required": ["total", "by_rule"],
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "by_rule": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "integer", "minimum": 1,
                    },
                },
            },
        },
        "violations": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["path", "line", "col", "rule", "message"],
                "properties": {
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "col": {"type": "integer", "minimum": 0},
                    "rule": {"type": "string"},
                    "message": {"type": "string", "minLength": 1},
                },
            },
        },
    },
}


def render_text(result: LintResult) -> str:
    """One diagnostic per line plus a closing summary line."""
    lines = [violation.format() for violation in result.violations]
    if result.violations:
        by_rule = ", ".join(
            f"{rule}: {count}"
            for rule, count in result.by_rule().items()
        )
        lines.append(
            f"{len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"in {result.files_checked} files ({by_rule})"
        )
    else:
        lines.append(f"{result.files_checked} files clean")
    return "\n".join(lines)


def lint_json_dict(result: LintResult) -> Dict[str, Any]:
    """The report as a JSON-serialisable dict (see the schema)."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "files_checked": result.files_checked,
        "summary": {
            "total": len(result.violations),
            "by_rule": result.by_rule(),
        },
        "violations": [v.as_dict() for v in result.violations],
    }


def render_json(result: LintResult, *, indent: int = 2) -> str:
    """The report serialised as JSON text."""
    return json.dumps(lint_json_dict(result), indent=indent,
                      sort_keys=True)


def validate_lint_json(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the report
    schema (structural check; no external dependencies)."""
    if not isinstance(doc, dict):
        raise ValueError("lint report must be a JSON object")
    for key in LINT_JSON_SCHEMA["required"]:
        if key not in doc:
            raise ValueError(f"lint report is missing {key!r}")
    if doc["version"] != REPORT_VERSION:
        raise ValueError(f"unknown lint report version {doc['version']!r}")
    if doc["tool"] != "repro-lint":
        raise ValueError(f"unknown lint tool {doc['tool']!r}")
    if not isinstance(doc["files_checked"], int) \
            or doc["files_checked"] < 0:
        raise ValueError("files_checked must be a non-negative integer")
    summary = doc["summary"]
    if not isinstance(summary, dict) or "total" not in summary \
            or "by_rule" not in summary:
        raise ValueError("summary must carry 'total' and 'by_rule'")
    violations = doc["violations"]
    if not isinstance(violations, list):
        raise ValueError("violations must be an array")
    if summary["total"] != len(violations):
        raise ValueError("summary.total disagrees with violations")
    for i, item in enumerate(violations):
        if not isinstance(item, dict):
            raise ValueError(f"violations[{i}] must be an object")
        for key in ("path", "line", "col", "rule", "message"):
            if key not in item:
                raise ValueError(f"violations[{i}] is missing {key!r}")
        if not isinstance(item["line"], int) or item["line"] < 1:
            raise ValueError(f"violations[{i}].line must be >= 1")
        if not isinstance(item["col"], int) or item["col"] < 0:
            raise ValueError(f"violations[{i}].col must be >= 0")

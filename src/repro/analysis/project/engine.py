"""The whole-program lint driver: load, analyse, filter, report.

:func:`lint_project` is the project-pass counterpart of
:func:`repro.analysis.engine.lint_paths`.  One run:

1. expands the target paths with the same walker (and exclusions) as
   the per-file pass;
2. loads every module into a :class:`Project` (unparseable files
   become ``PARSE`` findings, never crashes);
3. builds the call graph once and hands it to every rule;
4. runs every per-file rule *and* every project rule to obtain the
   raw finding set — raw, because SUP001 judges suppression comments
   against what every rule would have said, not just the enabled
   subset;
5. filters by rule selection and ``# repro: noqa`` suppressions, then
   appends SUP001 findings (which are themselves never suppressible —
   a noqa'd unused-noqa would be a fixed point of nonsense).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Union

from ..config import DEFAULT_CONFIG, LintConfig
from ..diagnostics import Violation
from ..engine import LintResult, _collect_suppressions, \
    iter_source_files
from ..rules import RULES
from .callgraph import CallGraph
from .loader import load_project
from .model import Project
from .rules import PROJECT_RULES, unused_suppression_violations

__all__ = ["lint_project"]


def _raw_findings(
    project: Project,
    config: LintConfig,
    graph: CallGraph,
) -> List[Violation]:
    """Every rule's output over the project, before any filtering."""
    found: List[Violation] = []
    for ctx in project.modules.values():
        for _code, rule_class in sorted(RULES.items()):
            found.extend(rule_class(ctx, config).run())
    for code, project_rule in sorted(PROJECT_RULES.items()):
        if code == "SUP001":
            continue  # derived from the raw set below, not part of it
        found.extend(project_rule(project, config, graph).run())
    return found


def lint_project(
    paths: Sequence[Union[str, Path]],
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Run the whole-program analysis pass over ``paths``."""
    files = iter_source_files(paths, config=config)
    project, parse_violations = load_project(files)
    graph = CallGraph.build(project)

    raw = _raw_findings(project, config, graph)

    suppressions: Dict[str, Dict[int, Optional[FrozenSet[str]]]] = {
        ctx.path: _collect_suppressions(ctx.source)
        for ctx in project.modules.values()
    }

    # PARSE findings bypass selection: a file the analysis could not
    # even load must never pass silently.
    kept: List[Violation] = list(parse_violations)
    for violation in raw:
        if not config.wants(violation.rule):
            continue
        table = suppressions.get(violation.path, {})
        if violation.line in table:
            suppressed = table[violation.line]
            if suppressed is None or violation.rule in suppressed:
                continue
        kept.append(violation)

    if config.wants("SUP001"):
        kept.extend(unused_suppression_violations(
            project.modules.values(), raw
        ))

    return LintResult(
        files_checked=len(files),
        violations=tuple(sorted(kept)),
    )

"""Path-sensitive dominance: is every read preceded by a revalidate?

EPOCH001's core question — "is this cache read dominated by a
``_revalidate()``/``sync()`` call on every path into it?" — is
answered by abstract interpretation of one boolean (*revalidated*)
over a method body:

* a revalidate event sets the state;
* a read event in the unrevalidated state is a violation;
* ``if``/``else`` joins with logical AND — both branches must
  revalidate for the state to hold afterwards (a branch that returns
  is excluded from the join);
* loop bodies are analysed under the entry state and the state is
  *reset to the entry state afterwards* — the body may run zero
  times, so a revalidate inside a loop never dominates reads after
  it (conservative by design: a false "revalidate again" is cheap, a
  missed stale read is a wrong answer);
* ``try`` joins the body with every handler, both analysed from the
  entry state — an exception may fire before the body's revalidate
  ran.

Within one statement, events are processed in source-position order,
so ``self._revalidate(); return self._serve(q)`` across two
statements and a revalidate-then-read inside one expression both
resolve correctly.  Nested ``def``/``lambda`` bodies are skipped —
their execution is deferred and analysed at their own call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .model import FunctionNode

__all__ = ["EVENT_READ", "EVENT_REVALIDATE", "undominated_reads"]

#: Event kinds returned by a classifier.
EVENT_REVALIDATE = "revalidate"
EVENT_READ = "read"

#: Classifier signature: ``call -> event kind or None``.
Classifier = Callable[[ast.Call], Optional[str]]


@dataclass
class _State:
    revalidated: bool = False
    terminated: bool = False

    def copy(self) -> "_State":
        return _State(self.revalidated, self.terminated)


def _events_in(
    node: ast.AST, classify: Classifier
) -> List[Tuple[ast.Call, str]]:
    """Classified calls under ``node`` in source-position order,
    skipping deferred (nested function/lambda) bodies."""
    found: List[Tuple[ast.Call, str]] = []

    def walk(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            if isinstance(child, ast.Call):
                kind = classify(child)
                if kind is not None:
                    found.append((child, kind))
            walk(child)

    walk(node)
    found.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
    return found


class _Walker:
    def __init__(self, classify: Classifier) -> None:
        self.classify = classify
        self.violations: List[ast.Call] = []

    # ------------------------------------------------------------------
    def run_events(self, node: ast.AST, state: _State) -> None:
        """Process one expression/simple statement's events in order."""
        for call, kind in _events_in(node, self.classify):
            if kind == EVENT_REVALIDATE:
                state.revalidated = True
            elif not state.revalidated:
                self.violations.append(call)

    def run_body(
        self, body: Sequence[ast.stmt], state: _State
    ) -> None:
        for stmt in body:
            if state.terminated:
                break
            self.run_stmt(stmt, state)

    # ------------------------------------------------------------------
    def run_stmt(self, stmt: ast.stmt, state: _State) -> None:
        if isinstance(stmt, ast.If):
            self.run_events(stmt.test, state)
            then_state = state.copy()
            else_state = state.copy()
            self.run_body(stmt.body, then_state)
            self.run_body(stmt.orelse, else_state)
            _merge_into(state, [then_state, else_state])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.run_events(stmt.iter, state)
            loop_state = state.copy()
            self.run_body(stmt.body, loop_state)
            self.run_body(stmt.orelse, state.copy())
            # zero iterations are possible: keep the entry state.
        elif isinstance(stmt, ast.While):
            self.run_events(stmt.test, state)
            loop_state = state.copy()
            self.run_body(stmt.body, loop_state)
            self.run_body(stmt.orelse, state.copy())
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.run_events(item.context_expr, state)
            self.run_body(stmt.body, state)
        elif isinstance(stmt, ast.Try):
            body_state = state.copy()
            self.run_body(stmt.body, body_state)
            branch_states = [body_state]
            for handler in stmt.handlers:
                handler_state = state.copy()
                self.run_body(handler.body, handler_state)
                branch_states.append(handler_state)
            if stmt.orelse:
                self.run_body(stmt.orelse, body_state)
            _merge_into(state, branch_states)
            if stmt.finalbody:
                self.run_body(stmt.finalbody, state)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.run_events(stmt, state)
            state.terminated = True
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # deferred bodies: analysed at their own call sites
        else:
            generic = _match_case_bodies(stmt)
            if generic is not None:
                subject, bodies = generic
                self.run_events(subject, state)
                branch_states = []
                for body in bodies:
                    branch_state = state.copy()
                    self.run_body(body, branch_state)
                    branch_states.append(branch_state)
                # no case may match: the entry state joins too.
                branch_states.append(state.copy())
                _merge_into(state, branch_states)
            else:
                self.run_events(stmt, state)


def _match_case_bodies(
    stmt: ast.stmt,
) -> Optional[Tuple[ast.expr, List[List[ast.stmt]]]]:
    """``match`` support without a hard 3.10 dependency."""
    match_type = getattr(ast, "Match", None)
    if match_type is None or not isinstance(stmt, match_type):
        return None
    return stmt.subject, [case.body for case in stmt.cases]


def _merge_into(state: _State, branches: List[_State]) -> None:
    live = [b for b in branches if not b.terminated]
    if not live:
        state.terminated = True
        return
    state.revalidated = all(b.revalidated for b in live)


def undominated_reads(
    node: FunctionNode,
    classify: Classifier,
    *,
    entry_revalidated: bool = False,
) -> List[ast.Call]:
    """Read-event calls not dominated by a revalidate on every path."""
    walker = _Walker(classify)
    state = _State(revalidated=entry_revalidated)
    walker.run_body(node.body, state)
    return walker.violations

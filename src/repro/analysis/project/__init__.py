"""Whole-program analysis: cross-module rules over the full tree.

The per-file linter (:mod:`repro.analysis.engine`) sees one module at
a time, so it cannot state the invariants that actually protect the
serving tier — "every cache read happens after a revalidate", "every
class shipped to a worker pickles honestly", "seeds flow through
parameters across call edges".  This package sees the whole tree:

``model``
    Symbol tables — modules, classes (with project-visible MRO),
    functions, per-class attribute inventories with pickle-hazard
    flags.
``loader``
    Builds a :class:`~repro.analysis.project.model.Project` from
    source paths, resolving absolute, aliased *and relative* imports.
``callgraph``
    Best-effort call edges: ``self.``-dispatch through the MRO,
    alias/re-export resolution, constructor edges, local receiver
    inference.
``dominance``
    The path-sensitive "is every read dominated by a revalidate?"
    abstract interpretation EPOCH001 runs per method.
``rules``
    The five cross-module rules (EPOCH001, PICKLE001, SEED001,
    ORDER001, SUP001) and their :data:`PROJECT_RULES` registry.
``engine``
    :func:`lint_project` — the driver the CLI's ``--project`` flag
    invokes.
``baseline``
    Committed-baseline fingerprinting for incremental adoption.
"""

from __future__ import annotations

from .baseline import BASELINE_VERSION, apply_baseline, fingerprint, \
    load_baseline, write_baseline
from .callgraph import CallGraph, CallSite, calls_in, local_class_env
from .dominance import EVENT_READ, EVENT_REVALIDATE, undominated_reads
from .engine import lint_project
from .loader import load_project
from .model import AttributeInfo, ClassInfo, FunctionInfo, Project
from .rules import PROJECT_RULES, ProjectRule, register_project

__all__ = [
    "AttributeInfo",
    "BASELINE_VERSION",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "EVENT_READ",
    "EVENT_REVALIDATE",
    "FunctionInfo",
    "PROJECT_RULES",
    "Project",
    "ProjectRule",
    "apply_baseline",
    "calls_in",
    "fingerprint",
    "lint_project",
    "load_baseline",
    "load_project",
    "local_class_env",
    "register_project",
    "undominated_reads",
    "write_baseline",
]

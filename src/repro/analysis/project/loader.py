"""Project loader: parse a file set into a :class:`Project`.

Three passes, all syntactic:

1. parse every file into a :class:`~repro.analysis.engine
   .ModuleContext` (unparseable files yield a ``PARSE`` violation and
   are skipped, exactly like the per-file engine);
2. build per-module *project-aware* alias maps — unlike the per-file
   collector, relative imports are resolved against the module's
   package so ``from ..estimators import BucketEstimator`` inside
   ``repro.serving.engine`` binds to
   ``repro.estimators.BucketEstimator``;
3. index top-level classes/functions and methods, then inventory every
   class's ``self.x`` assignments for the pickle hazards and held
   project classes described on :class:`~repro.analysis.project.model
   .AttributeInfo`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, Union

from ..diagnostics import PARSE_RULE, Violation
from ..engine import ModuleContext
from .model import AttributeInfo, ClassInfo, FunctionInfo, Project

__all__ = ["load_project"]

#: Callables whose results never pickle: thread/process primitives.
LOCK_FACTORIES: FrozenSet[str] = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Barrier",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
})

#: Pool executors: live OS resources, never pickle.
EXECUTOR_FACTORIES: FrozenSet[str] = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
})


def _package_of(module: str, path: str) -> str:
    """The package relative imports resolve against."""
    if Path(path).name == "__init__.py":
        return module
    if "." in module:
        return module.rsplit(".", 1)[0]
    return ""


class _ProjectImportCollector(ast.NodeVisitor):
    """Alias collector that also resolves relative imports."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                root = alias.name.split(".", 1)[0]
                self.aliases[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self.package.split(".") if self.package else []
            up = node.level - 1
            if up:
                if up >= len(base):
                    return  # beyond the project root: unresolvable
                base = base[:-up]
            if node.module:
                base = base + node.module.split(".")
            prefix = ".".join(base)
        else:
            if node.module is None:
                return
            prefix = node.module
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.aliases[bound] = f"{prefix}.{alias.name}"


def _module_toplevel_globals(tree: ast.Module) -> FrozenSet[str]:
    """Names bound by top-level (ann)assignments — not imports/defs."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.add(element.id)
    return frozenset(names)


def _index_module(project: Project, ctx: ModuleContext) -> None:
    """Record ``ctx``'s top-level classes/functions and their methods."""
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{ctx.module}.{stmt.name}"
            project.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=ctx.module,
                name=stmt.name,
                node=stmt,
                ctx=ctx,
            )
        elif isinstance(stmt, ast.ClassDef):
            qualname = f"{ctx.module}.{stmt.name}"
            bases: List[str] = []
            for base in stmt.bases:
                parts = project.dotted_parts(base)
                if parts is not None:
                    bases.append(
                        project.resolve_dotted(ctx.module, parts)
                    )
            info = ClassInfo(
                qualname=qualname,
                module=ctx.module,
                name=stmt.name,
                node=stmt,
                ctx=ctx,
                base_names=tuple(bases),
            )
            for sub in stmt.body:
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    method_qualname = f"{qualname}.{sub.name}"
                    method = FunctionInfo(
                        qualname=method_qualname,
                        module=ctx.module,
                        name=sub.name,
                        node=sub,
                        ctx=ctx,
                        class_name=qualname,
                    )
                    info.methods[sub.name] = method
                    project.functions[method_qualname] = method
            project.classes[qualname] = info


# ----------------------------------------------------------------------
# attribute inventory
# ----------------------------------------------------------------------
def _contains_id_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) \
                and isinstance(sub.func, ast.Name) \
                and sub.func.id == "id":
            return True
    return False


def _dict_is_id_keyed(value: ast.expr) -> bool:
    if isinstance(value, ast.DictComp):
        return _contains_id_call(value.key)
    if isinstance(value, ast.Dict):
        return any(
            key is not None and _contains_id_call(key)
            for key in value.keys
        )
    return False


def annotation_classes(
    project: Project, module: str, annotation: ast.expr
) -> Set[str]:
    """Project classes named anywhere inside ``annotation``.

    Walking the whole annotation tree makes ``Optional[X]``,
    ``List[X]`` and ``Mapping[K, X]`` all contribute ``X`` without a
    typing-form special case; string annotations are parsed first.
    """
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(
                annotation.value, mode="eval"
            ).body
        except SyntaxError:
            return set()
    found: Set[str] = set()
    for node in ast.walk(annotation):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        resolved = project.resolve(module, node)
        if resolved is not None and resolved in project.classes:
            found.add(resolved)
    return found


def _function_yields(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _classify_value(
    project: Project,
    module: str,
    info: ClassInfo,
    name: str,
    value: ast.expr,
    line: int,
) -> None:
    """Fold one assigned value into the attribute record."""
    record = info.attributes.setdefault(
        name, AttributeInfo(name=name, line=line)
    )
    if _dict_is_id_keyed(value):
        record.id_keyed = True
    if isinstance(value, ast.GeneratorExp):
        record.generator = True
    if isinstance(value, ast.Call):
        resolved = project.resolve(module, value.func)
        if resolved is not None:
            if resolved in project.classes:
                record.held_classes.add(resolved)
            elif resolved in LOCK_FACTORIES:
                record.lock = True
            elif resolved in EXECUTOR_FACTORIES:
                record.executor = True
            else:
                callee = project.functions.get(resolved)
                if callee is not None \
                        and _function_yields(callee.node):
                    record.generator = True


def _inventory_class(project: Project, info: ClassInfo) -> None:
    """Scan every method for ``self.x`` state and its hazards."""
    module = info.module
    for method in info.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    _inventory_target(
                        project, module, info, target, node.value
                    )
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if _is_self_attribute(target):
                    assert isinstance(target, ast.Attribute)
                    record = info.attributes.setdefault(
                        target.attr,
                        AttributeInfo(
                            name=target.attr, line=node.lineno
                        ),
                    )
                    record.held_classes.update(
                        annotation_classes(
                            project, module, node.annotation
                        )
                    )
                    if node.value is not None:
                        _classify_value(
                            project, module, info, target.attr,
                            node.value, node.lineno,
                        )


def _is_self_attribute(node: ast.expr) -> bool:
    return isinstance(node, ast.Attribute) \
        and isinstance(node.value, ast.Name) \
        and node.value.id == "self"


def _inventory_target(
    project: Project,
    module: str,
    info: ClassInfo,
    target: ast.expr,
    value: ast.expr,
) -> None:
    if _is_self_attribute(target):
        assert isinstance(target, ast.Attribute)
        _classify_value(
            project, module, info, target.attr, value, target.lineno
        )
        return
    # ``self.x[id(est)] = ...`` — id()-keyed store into the attribute.
    if isinstance(target, ast.Subscript) \
            and _is_self_attribute(target.value) \
            and _contains_id_call(target.slice):
        attribute = target.value
        assert isinstance(attribute, ast.Attribute)
        record = info.attributes.setdefault(
            attribute.attr,
            AttributeInfo(name=attribute.attr, line=target.lineno),
        )
        record.id_keyed = True


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def load_project(
    paths: Iterable[Union[str, Path]],
) -> Tuple[Project, List[Violation]]:
    """Parse ``paths`` into a project; unparseable files become
    ``PARSE`` violations rather than exceptions."""
    project = Project()
    violations: List[Violation] = []
    contexts: List[ModuleContext] = []
    for raw in paths:
        path = Path(raw)
        posix = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext.from_source(source, posix)
        except SyntaxError as exc:
            violations.append(Violation(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_RULE,
                message=f"cannot parse file: {exc.msg}",
            ))
            continue
        except OSError as exc:
            violations.append(Violation(
                path=posix,
                line=1,
                col=0,
                rule=PARSE_RULE,
                message=f"cannot read file: {exc}",
            ))
            continue
        contexts.append(ctx)
        project.modules[ctx.module] = ctx
        collector = _ProjectImportCollector(
            _package_of(ctx.module, posix)
        )
        collector.visit(ctx.tree)
        project.module_aliases[ctx.module] = collector.aliases
        project.module_globals[ctx.module] = \
            _module_toplevel_globals(ctx.tree)
    for ctx in contexts:
        _index_module(project, ctx)
    for info in project.classes.values():
        _inventory_class(project, info)
    return project, violations

"""Committed-baseline mechanism for the project lint pass.

A baseline is a committed JSON file of finding *fingerprints* —
``path::rule::message`` — that CI tolerates.  The intended workflow
when a new cross-module rule lands with pre-existing findings:

1. ``repro-spatial lint --project --write-baseline lint-baseline.json``
   snapshots today's findings;
2. CI runs ``--project --baseline lint-baseline.json`` and fails only
   on findings *not* in the snapshot, so new debt is blocked while old
   debt is burned down file by file;
3. shrinking the baseline back to empty is the finish line (this
   repository's committed baseline *is* empty).

Fingerprints deliberately exclude line/column, so moving code without
changing its meaning does not churn the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import FrozenSet, List, Union

from ...errors import ValidationError
from ..diagnostics import Violation
from ..engine import LintResult

__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: Version stamp for the baseline file format.
BASELINE_VERSION = 1


def fingerprint(violation: Violation) -> str:
    """Stable identity of a finding across line-number churn."""
    return f"{violation.path}::{violation.rule}::{violation.message}"


def load_baseline(path: Union[str, Path]) -> FrozenSet[str]:
    """Read a baseline file, validating shape and version."""
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValidationError(
            f"cannot read baseline {target}: {exc}",
            hint="create one with --write-baseline",
        ) from exc
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"baseline {target} is not valid JSON: {exc}",
            hint="regenerate it with --write-baseline",
        ) from exc
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION \
            or not isinstance(payload.get("fingerprints"), list) \
            or not all(
                isinstance(item, str)
                for item in payload["fingerprints"]
            ):
        raise ValidationError(
            f"baseline {target} has an unrecognised shape",
            hint=(
                f"expected {{'version': {BASELINE_VERSION}, "
                f"'fingerprints': [...]}}"
            ),
        )
    return frozenset(payload["fingerprints"])


def write_baseline(
    result: LintResult, path: Union[str, Path]
) -> int:
    """Snapshot ``result``'s findings; returns how many were written."""
    prints = sorted({fingerprint(v) for v in result.violations})
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": prints,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(prints)


def apply_baseline(
    result: LintResult, fingerprints: FrozenSet[str]
) -> LintResult:
    """Drop findings whose fingerprint appears in the baseline."""
    kept: List[Violation] = [
        violation for violation in result.violations
        if fingerprint(violation) not in fingerprints
    ]
    return LintResult(
        files_checked=result.files_checked,
        violations=tuple(kept),
    )

"""The cross-module rules: serving protocols, machine-checked.

Every rule subclasses :class:`ProjectRule` and registers in
:data:`PROJECT_RULES` — a registry deliberately separate from the
per-file :data:`repro.analysis.rules.RULES` so each family keeps its
own construction signature (one runs per module, the other per
project).

Rule codes
----------
EPOCH001
    Revalidation dominance.  In a class that defines or inherits a
    revalidator (``_revalidate``/``sync``), every cache read
    (``self.cache.lookup*``/``.get``) and every index probe
    (``self.<attr>.candidates``) must be dominated by a revalidator
    call on every path.  Interprocedural within the class: a private
    method whose reads are not locally dominated must itself be
    dominated at each call site (that is how ``_serve`` stays honest
    behind ``estimate_batch``).  Additionally, anywhere in the
    EPOCH001 packages (which include ``repro.tuning``), storing a
    published-summary attribute on a receiver other than ``self``
    (``hist.buckets = ...``) is a finding: it swaps the summary
    without the owner's atomic epoch bump, so a consumer can serve
    the new buckets against a stale epoch — mutations must publish
    through ``replace_buckets()``.
PICKLE001
    Worker-payload pickling.  A class reachable as an argument to a
    pickle boundary (``ShardWorkerPool``, ``parallel_map``,
    ``ProcessPoolExecutor``, ``pickle.dumps``) — directly or through
    held attributes — that holds id()-keyed dicts, locks, executors
    or generators must define a ``__getstate__``/``__setstate__``
    pair.  Defining exactly one of the pair is a finding for *every*
    class: a one-sided hook silently resurrects stale state (the PR 6
    bug class).
SEED001
    Interprocedural seed threading, escalating DET001.  An RNG
    construction must take its seed from a parameter or a literal,
    never a module-level global; seed parameters are traced up call
    edges, and a call site that leaves a seed parameter at its
    ``None`` default (or passes ``None``) relies on an unseeded RNG.
ORDER001
    Iteration order.  Inside the kernel packages, iterating a
    ``set``/``frozenset`` (or a set-algebra result over dict views)
    into a float accumulation makes the sum order — and therefore the
    last ulp — depend on hash seeds.  Iterate ``sorted(...)`` instead.
RES002
    Deadline-dominated IPC.  A blocking pipe read
    (``recv``/``recv_bytes``/``poll``) in the serving package must be
    dominated by a deadline check (``.check()``) on every path — the
    same dominance machinery as EPOCH001 — so a worker process that
    dies mid-reply exhausts a logical budget instead of hanging the
    serve.  Worker-side idle loops are exempt by name; their
    supervisor kills them.
SUP001
    Suppression hygiene: a ``# repro: noqa[RULE]`` comment that
    matches no finding on its line is itself a finding (computed
    against the *raw*, pre-suppression finding set of every rule,
    file-level and project-level).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Set, Tuple, Type

from ..config import LintConfig
from ..diagnostics import Violation
from ..engine import ModuleContext, iter_suppression_comments
from .callgraph import CallGraph, calls_in, infer_expr_class, \
    local_class_env
from .dominance import EVENT_READ, EVENT_REVALIDATE, undominated_reads
from .loader import EXECUTOR_FACTORIES
from .model import ClassInfo, FunctionInfo, Project

__all__ = [
    "PROJECT_RULES",
    "ProjectRule",
    "register_project",
    "unused_suppression_violations",
]

#: Registry of every cross-module rule, keyed by code.
PROJECT_RULES: Dict[str, Type["ProjectRule"]] = {}


def register_project(
    rule_class: Type["ProjectRule"],
) -> Type["ProjectRule"]:
    """Class decorator adding a rule to :data:`PROJECT_RULES`."""
    code = rule_class.code
    if not code or code in PROJECT_RULES:
        raise ValueError(f"duplicate or empty rule code: {code!r}")
    PROJECT_RULES[code] = rule_class
    return rule_class


class ProjectRule:
    """Base class for one cross-module rule over one project."""

    #: Short unique code, e.g. ``"EPOCH001"``.
    code: str = ""
    #: One-line description for ``repro-spatial lint --list-rules``.
    summary: str = ""

    def __init__(
        self,
        project: Project,
        config: LintConfig,
        graph: Optional[CallGraph] = None,
    ) -> None:
        self.project = project
        self.config = config
        self._graph = graph
        self.violations: List[Violation] = []

    @property
    def graph(self) -> CallGraph:
        """The shared call graph, built lazily when not injected."""
        if self._graph is None:
            self._graph = CallGraph.build(self.project)
        return self._graph

    def run(self) -> List[Violation]:
        raise NotImplementedError

    def report(self, path: str, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        ))


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


# ----------------------------------------------------------------------
# EPOCH001 — revalidation dominance
# ----------------------------------------------------------------------
@register_project
class EpochDominanceRule(ProjectRule):
    """Cache reads and index probes must follow a revalidate."""

    code = "EPOCH001"
    summary = (
        "cache reads and index probes in revalidating classes must "
        "be dominated by _revalidate()/sync() on every path"
    )

    def run(self) -> List[Violation]:
        for info in self.project.classes.values():
            ctx = info.ctx
            if not ctx.in_packages(self.config.epoch001_packages):
                continue
            if not self.project.defines_or_inherits(
                info.qualname, self.config.epoch001_revalidators
            ):
                continue
            self._check_class(info)
        for ctx in self.project.modules.values():
            if ctx.in_packages(self.config.epoch001_packages):
                self._check_summary_stores(ctx)
        return self.violations

    # ------------------------------------------------------------------
    # published-summary stores must go through the epoch-bump path
    # ------------------------------------------------------------------
    def _check_summary_stores(self, ctx: ModuleContext) -> None:
        """Flag ``<receiver>.buckets = ...`` for non-``self``
        receivers anywhere in the module.

        ``self.buckets = ...`` inside the owning class is the
        publish implementation itself; every *other* store reaches
        into another object's summary and bypasses its epoch bump.
        """
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr not in \
                        self.config.epoch001_mutation_attrs:
                    continue
                receiver = target.value
                if isinstance(receiver, ast.Name) \
                        and receiver.id == "self":
                    continue
                self.report(
                    ctx.path, target,
                    f"direct store to .{target.attr} bypasses the "
                    f"owner's atomic epoch bump; publish the tuned "
                    f"summary through replace_buckets() instead",
                )

    # ------------------------------------------------------------------
    def _analysed_methods(
        self, info: ClassInfo
    ) -> Dict[str, FunctionInfo]:
        exempt = set(self.config.epoch001_exempt_methods)
        exempt.update(self.config.epoch001_revalidators)
        return {
            name: method
            for name, method in info.methods.items()
            if name not in exempt
        }

    def _classifier(
        self, needy: FrozenSet[str]
    ) -> "_EpochClassifier":
        return _EpochClassifier(self.config, needy)

    def _check_class(self, info: ClassInfo) -> None:
        methods = self._analysed_methods(info)
        # Fixpoint: a private method with locally undominated reads
        # needs revalidation at entry, so calls to it become read
        # events in its callers; that can make further private
        # callers needy in turn.
        needy: Set[str] = set()
        for _ in range(len(methods) + 1):
            classifier = self._classifier(frozenset(needy))
            grown = set(needy)
            for name, method in methods.items():
                if not name.startswith("_") or _is_dunder(name):
                    continue
                if undominated_reads(method.node, classifier):
                    grown.add(name)
            if grown == needy:
                break
            needy = grown

        classifier = self._classifier(frozenset(needy))
        internally_called = self._internal_callees(info)
        for name, method in methods.items():
            private = name.startswith("_") and not _is_dunder(name)
            if private and name in internally_called:
                # Every internal call site carries the obligation (the
                # injected read event); reporting here too would state
                # the same defect twice.
                continue
            for call in undominated_reads(method.node, classifier):
                self.report(
                    info.ctx.path, call,
                    self._message(info, name, call, needy),
                )

    def _internal_callees(self, info: ClassInfo) -> Set[str]:
        called: Set[str] = set()
        for method in info.methods.values():
            for call in calls_in(method.node):
                func = call.func
                if isinstance(func, ast.Attribute) \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id == "self":
                    called.add(func.attr)
        return called

    def _message(
        self,
        info: ClassInfo,
        method: str,
        call: ast.Call,
        needy: Set[str],
    ) -> str:
        func = call.func
        what = "derived-state read"
        if isinstance(func, ast.Attribute):
            if func.attr in needy:
                what = (
                    f"call to self.{func.attr}() (which reads "
                    f"cache/index state)"
                )
            elif func.attr in self.config.epoch001_probe_methods:
                what = f"index probe .{func.attr}()"
            else:
                what = f"cache read .{func.attr}()"
        revalidators = "/".join(
            f"{name}()" for name in self.config.epoch001_revalidators
        )
        return (
            f"{what} in {info.name}.{method} is not dominated by "
            f"{revalidators} on every path; stale epochs would be "
            f"served"
        )


class _EpochClassifier:
    """Call classifier handed to the dominance walker."""

    def __init__(
        self, config: LintConfig, needy: FrozenSet[str]
    ) -> None:
        self.config = config
        self.needy = needy

    def __call__(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if func.attr in self.config.epoch001_revalidators:
                return EVENT_REVALIDATE
            if func.attr in self.needy:
                return EVENT_READ
            return None
        # self.<cache>.<read>() and self.<attr>.candidates()
        if isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name) \
                and receiver.value.id == "self":
            if func.attr in self.config.epoch001_probe_methods:
                return EVENT_READ
            if receiver.attr in self.config.epoch001_cache_attrs \
                    and func.attr in self.config.epoch001_read_methods:
                return EVENT_READ
        return None


# ----------------------------------------------------------------------
# PICKLE001 — worker payloads must pickle honestly
# ----------------------------------------------------------------------
@register_project
class PicklePayloadRule(ProjectRule):
    """Pickle-reachable classes with hazardous state need both hooks."""

    code = "PICKLE001"
    summary = (
        "classes shipped across pickle boundaries holding id()-keyed "
        "dicts/locks/executors/generators need a matching "
        "__getstate__/__setstate__ pair (both or neither, always)"
    )

    def run(self) -> List[Violation]:
        self._check_hook_pairs()
        reachable = self._reachable_classes()
        for qualname, via in sorted(reachable.items()):
            info = self.project.classes.get(qualname)
            if info is None:
                continue
            risky = sorted(
                record.name
                for record in info.attributes.values()
                if record.risky
            )
            if not risky:
                continue
            if self.project.find_method(qualname, "__getstate__") \
                    and self.project.find_method(
                        qualname, "__setstate__"):
                continue
            reasons = sorted({
                reason
                for record in info.attributes.values()
                if record.risky
                for reason in record.risk_reasons()
            })
            self.report(
                info.ctx.path, info.node,
                f"class {info.name} crosses a pickle boundary "
                f"({via}) holding {', '.join(reasons)} "
                f"({', '.join(risky)}); define a "
                f"__getstate__/__setstate__ pair that translates "
                f"them across the process boundary",
            )
        return self.violations

    # ------------------------------------------------------------------
    def _check_hook_pairs(self) -> None:
        for info in self.project.classes.values():
            has_get = info.defines("__getstate__")
            has_set = info.defines("__setstate__")
            if has_get == has_set:
                continue
            present = "__getstate__" if has_get else "__setstate__"
            missing = "__setstate__" if has_get else "__getstate__"
            self.report(
                info.ctx.path, info.node,
                f"class {info.name} defines {present} without "
                f"{missing}; the hooks must come as a pair or "
                f"unpickling silently resurrects stale state",
            )

    # ------------------------------------------------------------------
    def _reachable_classes(self) -> Dict[str, str]:
        """Class qualname -> witness string, via boundary args and
        transitive held attributes."""
        roots: Dict[str, str] = {}
        for fn in self.project.functions.values():
            executors = _executor_locals(fn, self.project)
            env = local_class_env(fn, self.project)
            for call in calls_in(fn.node):
                boundary = self._boundary_name(fn, call, executors)
                if boundary is None:
                    continue
                witness = (
                    f"{boundary} at {fn.ctx.path}:{call.lineno}"
                )
                for arg in list(call.args) + [
                    kw.value for kw in call.keywords
                ]:
                    for cls in _payload_classes(
                        arg, env, fn, self.project
                    ):
                        roots.setdefault(cls, witness)
        # transitive closure over held attributes
        reachable = dict(roots)
        queue = list(roots)
        while queue:
            current = queue.pop()
            info = self.project.classes.get(current)
            if info is None:
                continue
            for record in info.attributes.values():
                for held in record.held_classes:
                    if held not in reachable:
                        reachable[held] = (
                            f"held by {info.name}.{record.name}; "
                            f"{reachable[current]}"
                        )
                        queue.append(held)
        return reachable

    def _boundary_name(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        executors: Set[str],
    ) -> Optional[str]:
        resolved = self.project.resolve(fn.module, call.func)
        if resolved is not None \
                and resolved in self.config.pickle001_boundaries:
            return resolved.rsplit(".", 1)[-1]
        func = call.func
        if isinstance(func, ast.Attribute) \
                and func.attr in ("submit", "map") \
                and isinstance(func.value, ast.Name) \
                and func.value.id in executors:
            return f"executor.{func.attr}"
        return None


def _executor_locals(fn: FunctionInfo, project: Project) -> Set[str]:
    """Local names bound to pool executors (``with ... as pool``)."""
    names: Set[str] = set()
    for node in ast.walk(fn.node):
        value: Optional[ast.expr] = None
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            value, target = node.value, node.targets[0]
        elif isinstance(node, ast.withitem):
            value, target = node.context_expr, node.optional_vars
        if not isinstance(value, ast.Call) \
                or not isinstance(target, ast.Name):
            continue
        resolved = project.resolve(fn.module, value.func)
        if resolved in EXECUTOR_FACTORIES:
            names.add(target.id)
    return names


def _payload_classes(
    expr: ast.expr,
    env: Dict[str, str],
    fn: FunctionInfo,
    project: Project,
    _depth: int = 0,
) -> Set[str]:
    """Project classes an argument expression may evaluate to."""
    if _depth > 6:
        return set()
    found: Set[str] = set()
    if isinstance(expr, ast.Name):
        if expr.id == "self" and fn.class_name is not None:
            found.add(fn.class_name)
        elif expr.id in env:
            found.add(env[expr.id])
    elif isinstance(expr, ast.Starred):
        found |= _payload_classes(
            expr.value, env, fn, project, _depth + 1
        )
    elif isinstance(expr, ast.Call):
        resolved = project.resolve(fn.module, expr.func)
        if resolved is not None and resolved in project.classes:
            found.add(resolved)
        else:
            for arg in expr.args:
                found |= _payload_classes(
                    arg, env, fn, project, _depth + 1
                )
    elif isinstance(expr, ast.Attribute):
        receiver = infer_expr_class(expr.value, env, fn, project)
        if receiver is None and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self":
            receiver = fn.class_name
        if receiver is not None:
            info = project.classes.get(receiver)
            if info is not None:
                record = info.attributes.get(expr.attr)
                if record is not None:
                    found |= record.held_classes
    elif isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        for element in expr.elts:
            found |= _payload_classes(
                element, env, fn, project, _depth + 1
            )
    elif isinstance(expr, ast.Dict):
        for value in list(expr.keys) + list(expr.values):
            if value is not None:
                found |= _payload_classes(
                    value, env, fn, project, _depth + 1
                )
    elif isinstance(
        expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
               ast.DictComp)
    ):
        comp_env = dict(env)
        elem_classes: Dict[str, Set[str]] = {}
        for gen in expr.generators:
            if not isinstance(gen.target, ast.Name):
                continue
            classes = _element_classes(
                gen.iter, comp_env, fn, project, _depth + 1
            )
            elem_classes[gen.target.id] = classes
            if len(classes) == 1:
                comp_env[gen.target.id] = next(iter(classes))
        outputs: List[ast.expr] = []
        if isinstance(expr, ast.DictComp):
            outputs = [expr.key, expr.value]
        else:
            outputs = [expr.elt]
        for output in outputs:
            if isinstance(output, ast.Name) \
                    and output.id in elem_classes:
                found |= elem_classes[output.id]
            else:
                found |= _payload_classes(
                    output, comp_env, fn, project, _depth + 1
                )
    return found


def _element_classes(
    iterable: ast.expr,
    env: Dict[str, str],
    fn: FunctionInfo,
    project: Project,
    _depth: int,
) -> Set[str]:
    """Classes of the *elements* yielded by iterating ``iterable``.

    Attribute iterables use the held-class inventory, which already
    flattens container annotations (``List[X]`` holds ``X``), so the
    payload and element views coincide.
    """
    return _payload_classes(iterable, env, fn, project, _depth)


# ----------------------------------------------------------------------
# SEED001 — interprocedural seed threading
# ----------------------------------------------------------------------
#: Classification results for a seed expression.
_SEED_OK = "ok"
_SEED_GLOBAL = "global"
_SEED_NONE = "none"


@register_project
class SeedThreadingRule(ProjectRule):
    """RNG seeds come from parameters or literals, traced across
    call edges."""

    code = "SEED001"
    summary = (
        "RNG constructors take their seed from a parameter or "
        "literal — never a module global, an explicit None, or an "
        "omitted None default (traced interprocedurally)"
    )

    def run(self) -> List[Violation]:
        seed_params: Dict[str, Set[str]] = {}
        # Construction sites: classify the seed expression in place
        # and record which parameters feed seeds.
        for ctx in self.project.modules.values():
            for call, scopes in _rng_constructions(
                ctx, self.project, self.config.seed001_constructors
            ):
                seed = _seed_argument(call)
                if seed is None:
                    continue  # DET001 owns the missing-seed case
                status, params, name = _classify_seed(
                    seed, scopes, ctx, self.project
                )
                if status == _SEED_GLOBAL:
                    self.report(
                        ctx.path, call,
                        f"RNG seed reads module-level {name!r}; "
                        f"seeds must arrive through parameters so "
                        f"callers control determinism",
                    )
                elif status == _SEED_NONE:
                    self.report(
                        ctx.path, call,
                        "RNG constructed with an explicit None seed "
                        "— an unseeded generator; thread a real seed "
                        "instead",
                    )
                owner = _param_owner(scopes, params, ctx, self.project)
                if owner is not None:
                    seed_params.setdefault(owner[0], set()).update(
                        owner[1]
                    )
        self._propagate(seed_params)
        self._check_call_sites(seed_params)
        # A call site can resolve through several edges (constructor +
        # __init__); dedupe before reporting.
        return sorted(set(self.violations))

    # ------------------------------------------------------------------
    def _propagate(self, seed_params: Dict[str, Set[str]]) -> None:
        """Fixpoint: a caller param passed into a seed param is one."""
        changed = True
        guard = 0
        while changed and guard < 50:
            changed = False
            guard += 1
            for site in self.graph.sites:
                callee = self._callee_function(site.callee)
                if callee is None:
                    continue
                targets = seed_params.get(callee.qualname)
                if not targets:
                    continue
                caller = self.project.functions.get(site.caller)
                if caller is None:
                    continue
                for param in targets:
                    arg = _argument_for(site.call, callee, param)
                    if arg is None:
                        continue
                    status, params, _name = _classify_seed(
                        arg, [caller.node], caller.ctx, self.project
                    )
                    if status != _SEED_OK or not params:
                        continue
                    bucket = seed_params.setdefault(
                        caller.qualname, set()
                    )
                    fresh = params - bucket
                    if fresh:
                        bucket.update(fresh)
                        changed = True

    def _check_call_sites(
        self, seed_params: Dict[str, Set[str]]
    ) -> None:
        for site in self.graph.sites:
            callee = self._callee_function(site.callee)
            if callee is None:
                continue
            targets = seed_params.get(callee.qualname)
            if not targets:
                continue
            caller = self.project.functions.get(site.caller)
            if caller is None:
                continue
            for param in sorted(targets):
                arg = _argument_for(site.call, callee, param)
                if arg is None:
                    if not _call_is_mappable(site.call):
                        continue
                    default = callee.parameter_default(param)
                    if default is not None \
                            and isinstance(default, ast.Constant) \
                            and default.value is None:
                        self.report(
                            caller.ctx.path, site.call,
                            f"call to {callee.name}() leaves seed "
                            f"parameter {param!r} at its None "
                            f"default — the RNG downstream would be "
                            f"unseeded; pass an explicit seed",
                        )
                    continue
                status, _params, name = _classify_seed(
                    arg, [caller.node], caller.ctx, self.project
                )
                if status == _SEED_GLOBAL:
                    self.report(
                        caller.ctx.path, site.call,
                        f"seed for {callee.name}(..., {param}=...) "
                        f"reads module-level {name!r}; thread it "
                        f"through the caller's parameters",
                    )
                elif status == _SEED_NONE:
                    self.report(
                        caller.ctx.path, site.call,
                        f"call passes None as seed parameter "
                        f"{param!r} of {callee.name}() — an "
                        f"unseeded RNG downstream",
                    )

    def _callee_function(
        self, qualname: str
    ) -> Optional[FunctionInfo]:
        """The function a call edge lands on; constructor edges land
        on ``__init__`` through the MRO."""
        fn = self.project.functions.get(qualname)
        if fn is not None:
            return fn
        if qualname in self.project.classes:
            return self.project.find_method(qualname, "__init__")
        return None


def _rng_constructions(
    ctx: ModuleContext,
    project: Project,
    constructors: FrozenSet[str],
) -> List[Tuple[ast.Call, List[ast.AST]]]:
    """(call, enclosing function-scope stack) per RNG construction."""
    found: List[Tuple[ast.Call, List[ast.AST]]] = []

    def walk(node: ast.AST, scopes: List[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            child_scopes = scopes
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                child_scopes = scopes + [child]
            if isinstance(child, ast.Call):
                resolved = project.resolve(ctx.module, child.func)
                if resolved is not None and resolved in constructors:
                    found.append((child, list(child_scopes)))
            walk(child, child_scopes)

    walk(ctx.tree, [])
    return found


def _seed_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args and not isinstance(call.args[0], ast.Starred):
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy"):
            return keyword.value
    return None


def _scope_params(scopes: Sequence[ast.AST]) -> Set[str]:
    params: Set[str] = set()
    for scope in scopes:
        if isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            args = scope.args
            for arg in list(args.posonlyargs) + list(args.args) \
                    + list(args.kwonlyargs):
                params.add(arg.arg)
            if args.vararg is not None:
                params.add(args.vararg.arg)
            if args.kwarg is not None:
                params.add(args.kwarg.arg)
    return params - {"self", "cls"}


def _local_bindings(
    scopes: Sequence[ast.AST],
) -> Dict[str, List[ast.expr]]:
    """Name -> candidate defining expressions across the scope stack."""
    bindings: Dict[str, List[ast.expr]] = {}

    def bind(name: str, value: Optional[ast.expr]) -> None:
        if value is not None:
            bindings.setdefault(name, []).append(value)

    for scope in scopes:
        if not isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bind(target.id, node.value)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                bind(node.target.id, node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.target, ast.Name):
                bind(node.target.id, node.iter)
            elif isinstance(node, ast.comprehension) \
                    and isinstance(node.target, ast.Name):
                bind(node.target.id, node.iter)
            elif isinstance(node, ast.withitem) \
                    and isinstance(node.optional_vars, ast.Name):
                bind(node.optional_vars.id, node.context_expr)
    return bindings


def _classify_seed(
    expr: ast.expr,
    scopes: Sequence[ast.AST],
    ctx: ModuleContext,
    project: Project,
) -> Tuple[str, Set[str], Optional[str]]:
    """Where does a seed expression's value come from?

    Returns ``(status, parameter_names, offending_name)``: ``status``
    is OK (literal/parameter-derived), GLOBAL (reads a module-level
    binding or an imported value) or NONE (literally ``None``).
    """
    params = _scope_params(scopes)
    bindings = _local_bindings(scopes)
    module_globals = project.module_globals.get(ctx.module, frozenset())
    aliases = project.module_aliases.get(ctx.module, {})
    used_params: Set[str] = set()
    offender: List[str] = []
    visiting: Set[str] = set()

    def classify(node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return _SEED_NONE
            return _SEED_OK
        if isinstance(node, ast.Name):
            name = node.id
            if name in params:
                used_params.add(name)
                return _SEED_OK
            if name in bindings and name not in visiting:
                visiting.add(name)
                status = _SEED_OK
                for candidate in bindings[name]:
                    sub = classify(candidate)
                    if sub == _SEED_GLOBAL:
                        status = _SEED_GLOBAL
                visiting.discard(name)
                return status
            if name in module_globals or name in aliases:
                resolved = project.resolve_dotted(ctx.module, [name])
                if resolved in project.functions \
                        or resolved in project.classes:
                    return _SEED_OK  # a callable, not seed material
                offender.append(name)
                return _SEED_GLOBAL
            return _SEED_OK  # builtin or untracked: stay quiet
        if isinstance(node, ast.Call):
            status = _SEED_OK
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                sub = classify(arg)
                if sub == _SEED_GLOBAL:
                    status = _SEED_GLOBAL
            return status
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root: ast.expr = node
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name):
                if root.id in params:
                    # A field read off a parameter-carried object
                    # (``config.seed``): fine here, but the carrier
                    # is a config, not a seed — callers passing it
                    # are not passing "the seed", so the parameter
                    # is deliberately NOT recorded as a seed param.
                    return _SEED_OK
                return classify(root)
            return _SEED_OK
        status = _SEED_OK
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                sub = classify(child)
                if sub == _SEED_NONE and isinstance(node, ast.expr):
                    continue  # None inside a tuple: entropy pairs ok
                if sub == _SEED_GLOBAL:
                    status = _SEED_GLOBAL
        return status

    status = classify(expr)
    name = offender[0] if offender else None
    return status, used_params, name


def _param_owner(
    scopes: Sequence[ast.AST],
    params: Set[str],
    ctx: ModuleContext,
    project: Project,
) -> Optional[Tuple[str, Set[str]]]:
    """Map used seed parameters back to the indexed function that
    declares them (innermost scope first)."""
    if not params:
        return None
    for scope in reversed(list(scopes)):
        if not isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        declared = _scope_params([scope])
        owned = params & declared
        if not owned:
            continue
        for fn in project.functions.values():
            if fn.node is scope and fn.module == ctx.module:
                return fn.qualname, owned
        return None  # nested def: parameter-threaded, but no edges
    return None


def _call_is_mappable(call: ast.Call) -> bool:
    """False when *args/**kwargs make omission undecidable."""
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return False
    return all(kw.arg is not None for kw in call.keywords)


def _argument_for(
    call: ast.Call, callee: FunctionInfo, param: str
) -> Optional[ast.expr]:
    """The expression passed for ``param``, or None when omitted or
    unmappable."""
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return None
    names = callee.parameter_names()
    if param in names:
        index = names.index(param)
        if index < len(call.args):
            return call.args[index]
    return None


# ----------------------------------------------------------------------
# ORDER001 — unordered iteration feeding float accumulation
# ----------------------------------------------------------------------
#: Reducers whose argument order changes the float result.
_ORDER_REDUCERS = frozenset({
    "sum", "math.fsum", "numpy.sum", "numpy.nansum", "numpy.prod",
})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


@register_project
class UnorderedAccumulationRule(ProjectRule):
    """No set iteration into float sums inside the kernel packages."""

    code = "ORDER001"
    summary = (
        "iterating sets/unordered views into float accumulation "
        "makes results depend on hash order; iterate sorted(...) "
        "instead"
    )

    def run(self) -> List[Violation]:
        for ctx in self.project.modules.values():
            if not ctx.in_packages(self.config.order001_packages):
                continue
            self._check_module(ctx)
        return self.violations

    def _check_module(self, ctx: ModuleContext) -> None:
        local_sets = _set_typed_locals(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_unordered(node.iter, local_sets) \
                        and _accumulates(node.body):
                    self.report(
                        ctx.path, node,
                        "for-loop iterates an unordered set while "
                        "accumulating floats; iterate "
                        "sorted(...) to pin the summation order",
                    )
            elif isinstance(node, ast.Call):
                resolved = _reducer_name(node, ctx)
                if resolved is None:
                    continue
                for arg in node.args[:1]:
                    if _is_unordered(arg, local_sets):
                        self.report(
                            ctx.path, node,
                            f"{resolved}() reduces an unordered set; "
                            f"the float result depends on hash "
                            f"order — reduce over sorted(...)",
                        )
                    elif isinstance(
                        arg,
                        (ast.GeneratorExp, ast.ListComp, ast.SetComp),
                    ) and any(
                        _is_unordered(gen.iter, local_sets)
                        for gen in arg.generators
                    ):
                        self.report(
                            ctx.path, node,
                            f"{resolved}() reduces a comprehension "
                            f"over an unordered set; iterate "
                            f"sorted(...) to pin the order",
                        )
        return None


def _reducer_name(call: ast.Call, ctx: ModuleContext) -> Optional[str]:
    name = ctx.resolve(call.func)
    if name is not None and name in _ORDER_REDUCERS:
        return name
    return None


def _set_typed_locals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if _is_unordered(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and _annotation_is_set(node.annotation):
            names.add(node.target.id)
    return names


def _annotation_is_set(annotation: ast.expr) -> bool:
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(head, ast.Name):
        return head.id in (
            "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
        )
    return False


def _is_dict_view(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Call) \
        and isinstance(expr.func, ast.Attribute) \
        and expr.func.attr in ("keys", "items")


def _is_unordered(expr: ast.expr, local_sets: Set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in local_sets
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) \
                and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) \
                and func.attr in _SET_METHODS:
            return _is_unordered(func.value, local_sets) \
                or _is_dict_view(func.value)
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        for side in (expr.left, expr.right):
            if _is_unordered(side, local_sets) or _is_dict_view(side):
                return True
    return False


def _accumulates(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                return True
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.BinOp) \
                    and isinstance(
                        node.value.op, (ast.Add, ast.Sub)) \
                    and _mentions(node.value, node.targets[0].id):
                return True
    return False


def _mentions(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(expr)
    )


# ----------------------------------------------------------------------
# RES002 — deadline-dominated IPC receive loops
# ----------------------------------------------------------------------
@register_project
class DeadlineRecvRule(ProjectRule):
    """Blocking IPC reads in serving code must sit under a deadline.

    The serving tier's availability contract says a dead or wedged
    worker process surfaces as a typed error, never as a hang.  That
    holds only if every parent-side pipe read
    (``conn.recv``/``recv_bytes``/``poll``) is dominated — on every
    path, the same walker EPOCH001 uses — by a deadline check
    (``deadline.check(...)``), so a worker that stops replying runs
    the loop out of logical budget instead of blocking forever.
    Worker-side idle loops (``res002_exempt_functions``) legitimately
    block on ``recv``: their supervisor kills them, so they carry no
    deadline.
    """

    code = "RES002"
    summary = (
        "IPC receive loops in serving code must be dominated by a "
        "deadline check on every path; a silent worker death would "
        "hang the serve otherwise"
    )

    def run(self) -> List[Violation]:
        exempt = set(self.config.res002_exempt_functions)
        classifier = _RecvClassifier(self.config)
        for info in self.project.functions.values():
            if not info.ctx.in_packages(self.config.res002_packages):
                continue
            if info.name in exempt:
                continue
            for call in undominated_reads(info.node, classifier):
                self.report(
                    info.ctx.path, call,
                    self._message(info, call),
                )
        return self.violations

    def _message(self, info: FunctionInfo, call: ast.Call) -> str:
        attr = call.func.attr \
            if isinstance(call.func, ast.Attribute) else "recv"
        return (
            f"IPC read .{attr}() in {info.qualname} is not dominated "
            f"by a deadline .check() on every path; a worker that "
            f"dies mid-reply would hang this loop forever"
        )


class _RecvClassifier:
    """Call classifier for RES002's dominance walk."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def __call__(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in self.config.res002_check_attrs:
            return EVENT_REVALIDATE
        if func.attr in self.config.res002_recv_methods:
            return EVENT_READ
        return None


# ----------------------------------------------------------------------
# SUP001 — suppression hygiene
# ----------------------------------------------------------------------
@register_project
class UnusedSuppressionRule(ProjectRule):
    """``# repro: noqa`` comments must suppress something real."""

    code = "SUP001"
    summary = (
        "a # repro: noqa[RULE] comment matching no finding on its "
        "line is itself a finding (checked against every rule's raw "
        "output)"
    )

    def run(self) -> List[Violation]:
        # Standalone mode: recompute the raw finding set ourselves.
        # The project driver precomputes it and calls the helper
        # directly instead.
        from ..rules import RULES

        raw: List[Violation] = []
        for ctx in self.project.modules.values():
            for _code, rule_class in sorted(RULES.items()):
                raw.extend(rule_class(ctx, self.config).run())
        for code, rule_class in sorted(PROJECT_RULES.items()):
            if code == self.code:
                continue
            raw.extend(
                rule_class(self.project, self.config, self._graph)
                .run()
            )
        return unused_suppression_violations(
            self.project.modules.values(), raw
        )


def unused_suppression_violations(
    contexts: Iterable[ModuleContext],
    raw_violations: Sequence[Violation],
) -> List[Violation]:
    """SUP001 findings given the raw (pre-suppression) finding set."""
    by_file_line: Dict[str, Dict[int, Set[str]]] = {}
    for violation in raw_violations:
        by_file_line.setdefault(
            violation.path, {}
        ).setdefault(violation.line, set()).add(violation.rule)

    found: List[Violation] = []
    for ctx in contexts:
        lines = by_file_line.get(ctx.path, {})
        for line, col, rules in iter_suppression_comments(ctx.source):
            present = lines.get(line, set())
            if rules is None:
                if not present:
                    found.append(Violation(
                        path=ctx.path, line=line, col=col,
                        rule="SUP001",
                        message=(
                            "unused blanket '# repro: noqa' — no "
                            "rule reports on this line; delete the "
                            "suppression"
                        ),
                    ))
                continue
            unused = sorted(rules - present)
            if unused:
                found.append(Violation(
                    path=ctx.path, line=line, col=col,
                    rule="SUP001",
                    message=(
                        f"unused suppression for "
                        f"{', '.join(unused)} — no such finding on "
                        f"this line; delete the stale noqa"
                    ),
                ))
    return found

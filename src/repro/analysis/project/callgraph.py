"""Import-alias-resolving call graph over a :class:`Project`.

Edges are syntactic and best-effort — a static call graph over Python
is necessarily partial — but resolve the cases the serving protocols
actually use:

* ``self.method()`` through the project-visible MRO of the enclosing
  class;
* plain and dotted calls through the module's project-aware alias map
  (absolute, aliased and relative imports) and through package
  re-exports;
* constructor calls, recorded against the class qualname so rules can
  treat "constructs X" and "calls X.__init__" uniformly;
* ``obj.method()`` where ``obj``'s class is locally inferable from a
  parameter annotation, an ``x = Foo(...)`` assignment, an annotated
  local, or a ``with Foo(...) as x`` binding.

Unresolvable calls produce no edge; rules built on the graph are
written so a missing edge degrades to a missed finding, never a false
one (EPOCH001's interprocedural step only consumes *intra-class*
edges, which the ``self.`` case covers exactly).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .model import FunctionInfo, FunctionNode, Project

__all__ = ["CallGraph", "CallSite", "calls_in", "local_class_env"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``call``."""

    caller: str
    callee: str
    call: ast.Call


def calls_in(node: FunctionNode) -> List[ast.Call]:
    """Every call in ``node``'s body, in source order.

    Nested ``def``/``lambda`` bodies are included (closures run on
    behalf of their enclosing function), nested classes are not.
    """
    found: List[ast.Call] = []

    def walk(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, ast.ClassDef):
                continue
            if isinstance(child, ast.Call):
                found.append(child)
            walk(child)

    for stmt in node.body:
        if isinstance(stmt, ast.Call):
            found.append(stmt)
        walk(stmt)
    found.sort(key=lambda c: (c.lineno, c.col_offset))
    return found


def local_class_env(
    fn: FunctionInfo, project: Project
) -> Dict[str, str]:
    """Map local names to project-class qualnames, best effort.

    Sources, in increasing precedence: parameter annotations,
    annotated locals, ``x = Foo(...)`` constructor assignments and
    ``with Foo(...) as x`` bindings.
    """
    env: Dict[str, str] = {}
    args = fn.node.args
    for arg in list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs):
        if arg.annotation is None:
            continue
        resolved = project.resolve(fn.module, arg.annotation)
        if resolved is not None and resolved in project.classes:
            env[arg.arg] = resolved
    for node in ast.walk(fn.node):
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            resolved = project.resolve(fn.module, node.annotation)
            if resolved is not None and resolved in project.classes:
                env[node.target.id] = resolved
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call):
            resolved = project.resolve(fn.module, node.value.func)
            if resolved is None or resolved not in project.classes:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = resolved
        elif isinstance(node, ast.withitem) \
                and node.optional_vars is not None \
                and isinstance(node.optional_vars, ast.Name) \
                and isinstance(node.context_expr, ast.Call):
            resolved = project.resolve(
                fn.module, node.context_expr.func
            )
            if resolved is not None and resolved in project.classes:
                env[node.optional_vars.id] = resolved
    return env


def infer_expr_class(
    expr: ast.expr,
    env: Dict[str, str],
    fn: FunctionInfo,
    project: Project,
) -> Optional[str]:
    """The project class ``expr`` evaluates to, when inferable."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Call):
        resolved = project.resolve(fn.module, expr.func)
        if resolved is not None and resolved in project.classes:
            return resolved
        return None
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" \
                and fn.class_name is not None:
            owner = project.classes.get(fn.class_name)
            if owner is None:
                return None
            record = owner.attributes.get(expr.attr)
            if record is not None and len(record.held_classes) == 1:
                return next(iter(record.held_classes))
        return None
    return None


@dataclass
class CallGraph:
    """Resolved call edges, indexed both ways."""

    sites: List[CallSite] = field(default_factory=list)
    by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)
    by_callee: Dict[str, List[CallSite]] = field(default_factory=dict)

    def _add(self, site: CallSite) -> None:
        self.sites.append(site)
        self.by_caller.setdefault(site.caller, []).append(site)
        self.by_callee.setdefault(site.callee, []).append(site)

    def callees_of(self, qualname: str) -> List[CallSite]:
        return self.by_caller.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        return self.by_callee.get(qualname, [])

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        """Resolve every call in every indexed function."""
        graph = cls()
        for fn in project.functions.values():
            env = local_class_env(fn, project)
            for call in calls_in(fn.node):
                callee = _resolve_call(fn, call, env, project)
                if callee is not None:
                    graph._add(CallSite(
                        caller=fn.qualname, callee=callee, call=call
                    ))
        return graph


def _resolve_call(
    fn: FunctionInfo,
    call: ast.Call,
    env: Dict[str, str],
    project: Project,
) -> Optional[str]:
    func = call.func
    # self.method() through the enclosing class's project MRO.
    if isinstance(func, ast.Attribute) \
            and isinstance(func.value, ast.Name) \
            and func.value.id == "self" \
            and fn.class_name is not None:
        method = project.find_method(fn.class_name, func.attr)
        if method is not None:
            return method.qualname
        return None
    # Plain/dotted names through aliases and re-exports.
    resolved = project.resolve(fn.module, func)
    if resolved is not None:
        if resolved in project.functions:
            return resolved
        if resolved in project.classes:
            return resolved  # constructor edge, by class qualname
    # obj.method() with a locally inferable receiver class.
    if isinstance(func, ast.Attribute):
        receiver = infer_expr_class(func.value, env, fn, project)
        if receiver is not None:
            method = project.find_method(receiver, func.attr)
            if method is not None:
                return method.qualname
    return None

"""Project-wide symbol model: modules, classes, functions, attributes.

The per-file linter (:mod:`repro.analysis.engine`) sees one module at a
time; the protocols that keep the serving spine honest — revalidation
before cache reads, picklable worker payloads, seed threading — span
modules.  A :class:`Project` is the shared substrate the cross-module
rules reason over:

* ``modules`` — every parsed :class:`~repro.analysis.engine
  .ModuleContext`, keyed by dotted module name;
* ``classes`` / ``functions`` — flat symbol tables keyed by qualified
  name (``repro.serving.engine.BatchServingEngine`` and
  ``...BatchServingEngine.estimate``), methods included;
* ``module_aliases`` — a *project-aware* import map per module that,
  unlike the per-file map, also resolves relative imports
  (``from ..estimators import BucketEstimator``) so cross-package
  references land on their defining module;
* per-class :class:`AttributeInfo` inventories recording what each
  ``self.x`` holds — project classes (the pickle-reachability edges),
  id()-keyed dicts, locks, executors, generators (the pickle hazards).

Resolution follows re-exports: ``repro.estimators.BucketEstimator``
canonicalises to ``repro.estimators.bucket_estimator.BucketEstimator``
by chasing the package ``__init__``'s own import aliases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, \
    Tuple, Union

from ..engine import ModuleContext

__all__ = ["AttributeInfo", "ClassInfo", "FunctionInfo", "Project"]

#: Both callable-definition node flavours.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class AttributeInfo:
    """One instance attribute (``self.name``) of a project class.

    Attributes
    ----------
    name:
        Attribute name without the ``self.`` prefix.
    line:
        First assignment's line, for diagnostics.
    id_keyed:
        The attribute is (or is stored into as) a dict keyed by
        ``id(...)`` — object identities do not survive pickling.
    lock, executor, generator:
        The attribute holds a threading primitive, a pool executor, or
        a generator — none of which pickle.
    held_classes:
        Qualified names of project classes the attribute holds,
        gathered from constructor assignments and annotations
        (``Optional[X]``, ``List[X]``, ``Mapping[K, X]`` all
        contribute ``X``).  These are the edges pickle reachability
        walks.
    """

    name: str
    line: int = 0
    id_keyed: bool = False
    lock: bool = False
    executor: bool = False
    generator: bool = False
    held_classes: Set[str] = field(default_factory=set)

    @property
    def risky(self) -> bool:
        """True when pickling this attribute loses or breaks state."""
        return self.id_keyed or self.lock or self.executor \
            or self.generator

    def risk_reasons(self) -> List[str]:
        """Human-readable hazard names, for diagnostics."""
        reasons: List[str] = []
        if self.id_keyed:
            reasons.append("an id()-keyed dict")
        if self.lock:
            reasons.append("a lock")
        if self.executor:
            reasons.append("an executor")
        if self.generator:
            reasons.append("a generator")
        return reasons


@dataclass
class FunctionInfo:
    """One function or method, with its defining module context."""

    qualname: str
    module: str
    name: str
    node: FunctionNode
    ctx: ModuleContext
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def parameter_names(self) -> List[str]:
        """Positional + keyword-only names; ``self``/``cls`` dropped
        for methods."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] \
            + [a.arg for a in args.args] \
            + [a.arg for a in args.kwonlyargs]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def parameter_default(self, name: str) -> Optional[ast.expr]:
        """The default expression of parameter ``name``, or ``None``
        when the parameter is required (or unknown)."""
        args = self.node.args
        positional = list(args.posonlyargs) + list(args.args)
        n_defaults = len(args.defaults)
        for i, arg in enumerate(positional):
            if arg.arg != name:
                continue
            from_end = len(positional) - i
            if from_end <= n_defaults:
                return args.defaults[n_defaults - from_end]
            return None
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == name:
                return default
        return None


@dataclass
class ClassInfo:
    """One class, its methods, and its instance-attribute inventory."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: ModuleContext
    base_names: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attributes: Dict[str, AttributeInfo] = field(default_factory=dict)

    def defines(self, method: str) -> bool:
        return method in self.methods


@dataclass
class Project:
    """The whole-program symbol table the cross-module rules share."""

    modules: Dict[str, ModuleContext] = field(default_factory=dict)
    module_aliases: Dict[str, Dict[str, str]] = field(
        default_factory=dict
    )
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Names bound at module top level (excluding imports, defs and
    #: classes) per module — SEED001's "module global" set.
    module_globals: Dict[str, FrozenSet[str]] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def dotted_parts(self, node: ast.AST) -> Optional[List[str]]:
        """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-chains."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        return parts

    def resolve(self, module: str, node: ast.AST) -> Optional[str]:
        """Qualified name of a Name/Attribute chain seen in ``module``.

        The chain's root expands through the module's project-aware
        alias map (relative imports included) or, failing that,
        through the module's own top-level symbols; the result is then
        canonicalised through re-exports.  ``None`` for anything that
        is not a plain dotted chain.
        """
        parts = self.dotted_parts(node)
        if parts is None:
            return None
        return self.resolve_dotted(module, parts)

    def resolve_dotted(self, module: str, parts: List[str]) -> str:
        """Resolve already-split ``parts`` in ``module``'s namespace."""
        aliases = self.module_aliases.get(module, {})
        root = parts[0]
        if root in aliases:
            qualified = aliases[root].split(".") + parts[1:]
        elif f"{module}.{root}" in self.classes \
                or f"{module}.{root}" in self.functions:
            qualified = module.split(".") + parts
        else:
            qualified = parts
        return self.canonicalize(".".join(qualified))

    def canonicalize(self, name: str, _depth: int = 0) -> str:
        """Chase re-exports until ``name`` names a project symbol.

        ``repro.estimators.BucketEstimator`` → the defining module's
        ``repro.estimators.bucket_estimator.BucketEstimator``.  Names
        that never land on a project symbol come back unchanged (they
        are external: ``numpy.random.default_rng``).
        """
        if _depth > 8:
            return name
        if name in self.classes or name in self.functions:
            return name
        parts = name.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            if module not in self.modules:
                continue
            rest = parts[i:]
            symbol = f"{module}.{rest[0]}"
            if symbol in self.classes or symbol in self.functions:
                return self.canonicalize(
                    ".".join([symbol] + rest[1:]), _depth + 1
                )
            target = self.module_aliases.get(module, {}).get(rest[0])
            if target is not None:
                return self.canonicalize(
                    ".".join([target] + rest[1:]), _depth + 1
                )
            break
        return name

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def iter_mro(self, class_qualname: str) -> Iterator[ClassInfo]:
        """The class and its project ancestors, nearest first.

        External bases (ABCs, numpy types) are skipped; cycles are
        guarded, not an error — the linter must not crash on weird
        code.
        """
        seen: Set[str] = set()
        queue: List[str] = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            yield info
            for base in info.base_names:
                queue.append(self.canonicalize(base))

    def find_method(
        self, class_qualname: str, method: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``method`` through the project-visible MRO."""
        for info in self.iter_mro(class_qualname):
            found = info.methods.get(method)
            if found is not None:
                return found
        return None

    def defines_or_inherits(
        self, class_qualname: str, names: Tuple[str, ...]
    ) -> bool:
        """True when any of ``names`` is a method of the class or of
        one of its project ancestors."""
        return any(
            self.find_method(class_qualname, name) is not None
            for name in names
        )

"""LRU result cache keyed by canonicalised query rectangles.

Selectivity workloads are heavily repetitive — the paper's biased
query model (Section 5.2) draws query centers from data centers, so
popular regions are asked about again and again.  Because every
estimator is deterministic, a repeated query can be answered from a
small LRU map without changing a single bit of output, which is what
the cache-on-equals-cache-off differential test asserts.

Keys are *canonicalised* coordinate tuples: ``-0.0`` is folded onto
``0.0`` (the two compare equal as rectangles, so they must hit the
same cache line).  Hit, miss, and eviction counts are exposed both as
attributes and as ``serving.cache.*`` counters in
:data:`repro.obs.OBS`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np
import numpy.typing as npt

from ..geometry import RectSet
from ..obs import OBS

__all__ = ["QueryCache", "canonical_key"]

CacheKey = Tuple[float, float, float, float]


def canonical_key(
    x1: float, y1: float, x2: float, y2: float
) -> CacheKey:
    """The cache key of a query rectangle.

    Adding ``0.0`` folds ``-0.0`` onto ``+0.0`` so the two (equal)
    rectangles share one entry; all other finite floats are unchanged.
    """
    return (x1 + 0.0, y1 + 0.0, x2 + 0.0, y2 + 0.0)


class QueryCache:
    """A bounded LRU map from canonical query keys to estimates.

    Parameters
    ----------
    capacity:
        Maximum number of retained entries (must be positive; a
        serving engine that wants no cache simply does not build one).
    """

    __slots__ = (
        "capacity", "_entries", "hits", "misses", "evictions",
        "flushes",
    )

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> "float | None":
        """The cached estimate for ``key``, refreshing its recency."""
        value = self._entries.get(key)
        if value is None:
            return None
        self._entries.move_to_end(key)
        return value

    def lookup(self, key: CacheKey) -> "float | None":
        """:meth:`get` plus hit/miss accounting (the scalar path)."""
        value = self.get(key)
        if value is None:
            self.misses += 1
            OBS.add("serving.cache.misses")
        else:
            self.hits += 1
            OBS.add("serving.cache.hits")
        return value

    def put(self, key: CacheKey, value: float) -> None:
        """Insert (or refresh) one entry, evicting the oldest on
        overflow."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            OBS.add("serving.cache.evictions")

    # ------------------------------------------------------------------
    def lookup_batch(
        self, queries: RectSet
    ) -> Tuple["npt.NDArray[np.float64]", "npt.NDArray[np.int64]"]:
        """Split a batch into cached answers and missing positions.

        Returns ``(values, missing)``: ``values`` has the cached
        estimate at every hit position (0.0 placeholders elsewhere)
        and ``missing`` lists the positions, in order, that must be
        computed.  Duplicate missing queries are *not* collapsed — the
        engine computes them all in one kernel call, which keeps the
        filled batch bit-identical to an uncached evaluation.
        """
        n = len(queries)
        values = np.zeros(n, dtype=np.float64)
        missing = []
        coords = queries.coords
        hits = 0
        for i in range(n):
            row = coords[i]
            key = canonical_key(row[0], row[1], row[2], row[3])
            cached = self.get(key)
            if cached is None:
                missing.append(i)
            else:
                values[i] = cached
                hits += 1
        misses = len(missing)
        self.hits += hits
        self.misses += misses
        if OBS.enabled:
            OBS.add("serving.cache.hits", hits)
            OBS.add("serving.cache.misses", misses)
        return values, np.asarray(missing, dtype=np.int64)

    def store_batch(
        self,
        queries: RectSet,
        positions: "npt.NDArray[np.int64]",
        values: "npt.NDArray[np.float64]",
    ) -> None:
        """Insert the freshly computed answers for ``positions``."""
        coords = queries.coords
        for pos, value in zip(positions, values):
            row = coords[pos]
            self.put(
                canonical_key(row[0], row[1], row[2], row[3]),
                float(value),
            )

    def clear(self) -> None:
        """Drop every entry (the statistics are kept)."""
        self._entries.clear()

    def flush(self) -> None:
        """:meth:`clear` plus invalidation accounting — the serving
        engine calls this when cached answers became *wrong* (source
        epoch moved, fallback chain transitioned), as opposed to a
        caller merely resetting a cache it owns."""
        self.clear()
        self.flushes += 1
        OBS.add("serving.cache.flushes")

    def __repr__(self) -> str:
        return (
            f"QueryCache(capacity={self.capacity}, "
            f"size={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )

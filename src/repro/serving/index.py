"""Bucket index: pruning the per-query bucket scan.

A bucket histogram answers a query by summing the Section 3.1 formula
over *every* bucket, but most buckets contribute exactly 0.0 — their
box (extended by the bucket's average member extents) misses the query
entirely.  :class:`BucketIndex` names the buckets that *can* contribute
so the scalar path only evaluates those, dropping per-query cost from
O(buckets) to near O(answer).

The pruning is made mathematically exact by *inflating* each bucket box
by half the bucket's average extents before indexing it: the Section
3.1 formula extends the query by ``(avg_width/2, avg_height/2)`` per
side and clamps into the bucket box, so its overlap is positive exactly
when the raw query intersects the inflated box.  Degenerate (zero-area)
buckets use the raw touch test in the kernel and are indexed
un-inflated.  Inflated boxes contain the raw boxes, so the candidate
set is always a superset of the buckets whose raw box intersects the
query — the property the index test suite asserts.

Two probe structures share that contract:

* a uniform **grid** over the inflated boxes (each cell lists the
  buckets overlapping it), the default because bucket counts are small
  and grids probe in O(1); and
* an **R*-tree** of the inflated boxes, used when bucket boxes are so
  large relative to the space that the grid would replicate most
  buckets into most cells (the grid degenerates to a linear scan with
  extra steps).

Both paths finish with the same exact inflated-box filter, so
``candidates()`` returns an identical (ascending) id list whichever
structure served it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from ..core.bucket import Bucket
from ..geometry import Rect
from ..rtree import RStarTree

__all__ = ["BucketIndex"]

#: Grid cells are abandoned for the R*-tree once the average bucket
#: overlaps more than this many cells: past that point the per-cell
#: lists replicate the bucket set instead of partitioning it.
MAX_AVG_CELLS_PER_BUCKET = 32.0


class BucketIndex:
    """Names the buckets a query might touch (a superset, exactly).

    Parameters
    ----------
    buckets:
        The histogram's buckets, in estimator order — returned
        candidate ids are positions into this sequence.
    grid_size:
        Cells per axis of the uniform grid.  Default: chosen from the
        bucket count so the grid has roughly ``4 × n`` cells.
    epoch:
        The source summary's epoch at build time.  The index itself
        never consults it — it exists so an owner watching a live
        summary (the serving engine's revalidation step) can tell
        which version of the buckets this index describes and rebuild
        when the summary moves past it.
    """

    def __init__(
        self,
        buckets: Sequence[Bucket],
        *,
        grid_size: "int | None" = None,
        epoch: int = 0,
    ) -> None:
        n = len(buckets)
        if n == 0:
            raise ValueError("cannot index an empty bucket list")
        self.n = n
        self.epoch = epoch
        # Inflated boxes: the formula's query extension folded onto the
        # bucket side, so probing uses the *raw* query.  Degenerate
        # boxes (the kernel's raw-touch branch) are not inflated.
        bx1 = np.array([b.bbox.x1 for b in buckets], dtype=np.float64)
        by1 = np.array([b.bbox.y1 for b in buckets], dtype=np.float64)
        bx2 = np.array([b.bbox.x2 for b in buckets], dtype=np.float64)
        by2 = np.array([b.bbox.y2 for b in buckets], dtype=np.float64)
        half_w = np.array(
            [b.avg_width / 2.0 for b in buckets], dtype=np.float64
        )
        half_h = np.array(
            [b.avg_height / 2.0 for b in buckets], dtype=np.float64
        )
        degenerate = (bx2 - bx1) * (by2 - by1) <= 0.0
        inflate_w = np.where(degenerate, 0.0, half_w)
        inflate_h = np.where(degenerate, 0.0, half_h)
        self._ix1 = bx1 - inflate_w
        self._iy1 = by1 - inflate_h
        self._ix2 = bx2 + inflate_w
        self._iy2 = by2 + inflate_h

        self._minx = float(self._ix1.min())
        self._miny = float(self._iy1.min())
        maxx = float(self._ix2.max())
        maxy = float(self._iy2.max())
        if grid_size is None:
            grid_size = int(np.ceil(np.sqrt(4.0 * n)))
        self._gx = max(1, min(grid_size, 256))
        self._gy = self._gx
        width = maxx - self._minx
        height = maxy - self._miny
        self._cell_w = width / self._gx if width > 0.0 else 1.0
        self._cell_h = height / self._gy if height > 0.0 else 1.0

        spans = self._cell_span(
            self._ix1, self._iy1, self._ix2, self._iy2
        )
        cx0, cy0, cx1, cy1 = spans
        avg_cells = float(
            ((cx1 - cx0 + 1) * (cy1 - cy0 + 1)).mean()
        )
        self._tree: "RStarTree | None" = None
        self._cells: List[List[int]] = []
        if avg_cells > MAX_AVG_CELLS_PER_BUCKET:
            self.mode = "rtree"
            tree = RStarTree(max_entries=8)
            for i in range(n):
                tree.insert(
                    Rect(
                        float(self._ix1[i]), float(self._iy1[i]),
                        float(self._ix2[i]), float(self._iy2[i]),
                    ),
                    record_id=i,
                )
            self._tree = tree
        else:
            self.mode = "grid"
            self._cells = [
                [] for _ in range(self._gx * self._gy)
            ]
            for i in range(n):
                for cx in range(int(cx0[i]), int(cx1[i]) + 1):
                    row = cx * self._gy
                    for cy in range(int(cy0[i]), int(cy1[i]) + 1):
                        self._cells[row + cy].append(i)

    # ------------------------------------------------------------------
    def _cell_span(
        self,
        x1: "npt.NDArray[np.float64] | float",
        y1: "npt.NDArray[np.float64] | float",
        x2: "npt.NDArray[np.float64] | float",
        y2: "npt.NDArray[np.float64] | float",
    ) -> Tuple[
        "npt.NDArray[np.int64]", "npt.NDArray[np.int64]",
        "npt.NDArray[np.int64]", "npt.NDArray[np.int64]",
    ]:
        """Inclusive grid-cell ranges covered by boxes (clipped)."""
        cx0 = np.clip(
            np.floor((np.asarray(x1) - self._minx) / self._cell_w),
            0, self._gx - 1,
        ).astype(np.int64)
        cy0 = np.clip(
            np.floor((np.asarray(y1) - self._miny) / self._cell_h),
            0, self._gy - 1,
        ).astype(np.int64)
        cx1 = np.clip(
            np.floor((np.asarray(x2) - self._minx) / self._cell_w),
            0, self._gx - 1,
        ).astype(np.int64)
        cy1 = np.clip(
            np.floor((np.asarray(y2) - self._miny) / self._cell_h),
            0, self._gy - 1,
        ).astype(np.int64)
        return cx0, cy0, cx1, cy1

    # ------------------------------------------------------------------
    def candidates(self, query: Rect) -> "npt.NDArray[np.int64]":
        """Ascending positions of every possibly-contributing bucket.

        Exactly the buckets whose inflated box intersects ``query``
        (closed-rectangle test), independent of the probe structure.
        """
        if self._tree is not None:
            rough = np.asarray(
                sorted(self._tree.search(query)), dtype=np.int64
            )
        else:
            cx0, cy0, cx1, cy1 = self._cell_span(
                query.x1, query.y1, query.x2, query.y2
            )
            mask = np.zeros(self.n, dtype=np.bool_)
            for cx in range(int(cx0), int(cx1) + 1):
                row = cx * self._gy
                for cy in range(int(cy0), int(cy1) + 1):
                    ids = self._cells[row + cy]
                    if ids:
                        mask[ids] = True
            rough = np.flatnonzero(mask).astype(np.int64)
        if rough.size == 0:
            return rough
        keep = (
            (self._ix1[rough] <= query.x2)
            & (self._ix2[rough] >= query.x1)
            & (self._iy1[rough] <= query.y2)
            & (self._iy2[rough] >= query.y1)
        )
        return rough[keep]

    def __repr__(self) -> str:
        return (
            f"BucketIndex(n={self.n}, mode={self.mode!r}, "
            f"grid={self._gx}x{self._gy})"
        )

"""Deterministic chunked process-pool mapping.

``parallel_map(func, items, workers=N)`` behaves exactly like
``[func(x) for x in items]`` — same results, same order — but fans the
chunks out over a ``ProcessPoolExecutor``.  Determinism comes from
three choices:

* results are gathered **in submission order**, never completion
  order, so the output list is a positional match for ``items``;
* chunk boundaries cannot influence any result because ``func`` is
  applied per item (chunking only amortises pickling);
* each worker resets its (fork-inherited) metrics registry, collects
  into it alone, and ships a snapshot home; the parent merges the
  snapshots in chunk order via
  :meth:`repro.obs.MetricsRegistry.merge_snapshot`, so counter totals
  equal the serial run exactly.

``workers <= 1`` short-circuits to an inline loop in the parent
process — no pool, no pickling, byte-identical to the serial path —
which is also the fallback the callers use on single-CPU boxes.

``func`` (and every item/result) must be picklable: define workers at
module level, not as closures or lambdas.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..obs import OBS

__all__ = ["parallel_map"]


def _run_chunk(
    func: Callable[[Any], Any],
    chunk: List[Any],
    collect_obs: bool,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Worker-side chunk evaluation.

    Resets the process-wide registry first: under the ``fork`` start
    method the child inherits whatever the parent had already
    collected, and merging that back would double-count it.
    """
    OBS.reset()
    OBS.enable(collect_obs)
    results = [func(item) for item in chunk]
    snapshot = OBS.snapshot() if collect_obs else {}
    return results, snapshot


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int = 1,
    chunk_size: "int | None" = None,
) -> List[Any]:
    """Order-preserving parallel ``[func(x) for x in items]``.

    Parameters
    ----------
    func:
        A picklable (module-level) single-argument callable.
    items:
        The inputs; the returned list is positionally aligned to it.
    workers:
        Process count.  ``<= 1`` runs inline in the calling process.
    chunk_size:
        Items per task; default splits the input into about four
        chunks per worker to amortise pickling while keeping the pool
        busy.
    """
    n = len(items)
    if n == 0:
        return []
    if workers <= 1:
        return [func(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, -(-n // (workers * 4)))
    chunks = [
        list(items[start:start + chunk_size])
        for start in range(0, n, chunk_size)
    ]
    collect_obs = OBS.enabled
    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, func, chunk, collect_obs)
            for chunk in chunks
        ]
        # submission order, not completion order: the output list and
        # the metrics merge must not depend on scheduling.
        for future in futures:
            chunk_results, snapshot = future.result()
            results.extend(chunk_results)
            if collect_obs:
                OBS.merge_snapshot(snapshot)
    return results

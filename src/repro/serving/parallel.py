"""Deterministic process pools: chunked mapping and pinned shards.

``parallel_map(func, items, workers=N)`` behaves exactly like
``[func(x) for x in items]`` — same results, same order — but fans the
chunks out over a ``ProcessPoolExecutor``.  Determinism comes from
three choices:

* results are gathered **in submission order**, never completion
  order, so the output list is a positional match for ``items``;
* chunk boundaries cannot influence any result because ``func`` is
  applied per item (chunking only amortises pickling);
* each worker resets its (fork-inherited) metrics registry, collects
  into it alone, and ships a snapshot home; the parent merges the
  snapshots in chunk order via
  :meth:`repro.obs.MetricsRegistry.merge_snapshot`, so counter totals
  equal the serial run exactly.

``workers <= 1`` short-circuits to an inline loop in the parent
process — no pool, no pickling, byte-identical to the serial path —
which is also the fallback the callers use on single-CPU boxes.

``func`` (and every item/result) must be picklable: define workers at
module level, not as closures or lambdas.

:class:`ShardWorkerPool` extends the same determinism discipline to
*stateful* workers.  A ``ProcessPoolExecutor`` cannot pin state to a
specific worker (any worker may pick up any task), so the pool runs
one long-lived ``multiprocessing.Process`` per slot, connected by a
pipe.  Each shard object is explicitly ``pickle.dumps``-ed to its
worker at startup — never smuggled in through a fork snapshot — so
whatever state survives pickling is exactly the state that serves
(the engine's ``__getstate__`` regression tests ride on this).
Replies are received in request order over per-worker FIFO pipes, and
worker metric snapshots are merged in that same order, so results and
counter totals are independent of scheduling.

**Supervision.**  Workers are mortal.  Every reply wait runs under a
logical :class:`~repro.resilience.clock.Deadline` on the pool's
:class:`~repro.resilience.clock.StepClock` — wall time appears only as
the liveness poll interval, never in any result — and watches the
worker's exitcode, so a SIGKILLed or wedged worker surfaces as a typed
:class:`~repro.errors.ShardWorkerError` instead of a hung ``recv``.
A failed worker is **respawned deterministically** in its slot: its
shards are rebuilt through the pool's recovery callable (checkpoint +
write-ahead-log replay, see :mod:`repro.serving.wal`) when one was
given, else re-pickled from the caller's authoritative copies, and a
fresh process takes over the same pipe slot.  In-flight requests on
the dead worker fail fast with the same typed error (never silently
dropped, never served stale replies — the slot's pipe is replaced), so
the router above can retry against the respawned worker or serve the
shard degraded.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing.connection import Connection
from typing import Any, Callable, Dict, List, Mapping, Optional, \
    Sequence, Tuple

from ..errors import DeadlineError, ShardWorkerError
from ..obs import OBS
from ..resilience.clock import Deadline, StepClock

__all__ = ["parallel_map", "ShardWorkerPool"]

#: Default per-reply logical budget: with the default poll interval
#: this bounds a silent pipe to a few seconds before the worker is
#: declared wedged.
DEFAULT_REPLY_BUDGET_STEPS = 200

#: Seconds per liveness poll.  Used for waiting only — results never
#: depend on it (the step clock carries the deadline semantics).
DEFAULT_POLL_INTERVAL = 0.025


def _run_chunk(
    func: Callable[[Any], Any],
    chunk: List[Any],
    collect_obs: bool,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Worker-side chunk evaluation.

    Resets the process-wide registry first: under the ``fork`` start
    method the child inherits whatever the parent had already
    collected, and merging that back would double-count it.
    """
    OBS.reset()
    OBS.enable(collect_obs)
    results = [func(item) for item in chunk]
    snapshot = OBS.snapshot() if collect_obs else {}
    return results, snapshot


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int = 1,
    chunk_size: "int | None" = None,
) -> List[Any]:
    """Order-preserving parallel ``[func(x) for x in items]``.

    Parameters
    ----------
    func:
        A picklable (module-level) single-argument callable.
    items:
        The inputs; the returned list is positionally aligned to it.
    workers:
        Process count.  ``<= 1`` runs inline in the calling process.
    chunk_size:
        Items per task; default splits the input into about four
        chunks per worker to amortise pickling while keeping the pool
        busy.
    """
    n = len(items)
    if n == 0:
        return []
    if workers <= 1:
        return [func(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, -(-n // (workers * 4)))
    chunks = [
        list(items[start:start + chunk_size])
        for start in range(0, n, chunk_size)
    ]
    collect_obs = OBS.enabled
    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, func, chunk, collect_obs)
            for chunk in chunks
        ]
        # submission order, not completion order: the output list and
        # the metrics merge must not depend on scheduling.
        for future in futures:
            chunk_results, snapshot = future.result()
            results.extend(chunk_results)
            if collect_obs:
                OBS.merge_snapshot(snapshot)
    return results


# ----------------------------------------------------------------------
# pinned stateful workers (the sharded serving tier's pool)
# ----------------------------------------------------------------------

#: Pool request: ``(kind, shard_id, method, args, collect_obs)``.
_Request = Tuple[str, int, str, Tuple[Any, ...], bool]


def _shard_worker_main(
    conn: Connection, payloads: Dict[int, bytes]
) -> None:
    """One pool worker: unpickle its shards, answer pipe requests.

    The registry is reset up front (a ``fork`` child inherits the
    parent's collected metrics; merging them back would double-count)
    and re-enabled per request according to the parent's flag, so a
    request served while the parent collects contributes exactly its
    own counters and nothing else.

    ``call`` requests reply ``(result, snapshot, error)``; ``cast``
    requests (mutations) do not reply — pipe FIFO ordering guarantees
    any later call observes them — and never collect metrics, because
    the parent applies the same mutation to its own copy and already
    counted it.  A failing request is shipped back as an error string
    instead of killing the worker.
    """
    OBS.reset()
    OBS.disable()
    shards = {
        sid: pickle.loads(blob) for sid, blob in payloads.items()
    }
    collecting = False
    pending_error: "str | None" = None
    while True:
        message: "_Request | None" = conn.recv()
        if message is None:
            break
        kind, sid, method, args, collect = message
        if collect != collecting:
            OBS.reset()
            OBS.enable(collect)
            collecting = collect
        result: Any = None
        error: "str | None" = pending_error
        pending_error = None
        if error is None:
            try:
                result = getattr(shards[sid], method)(*args)
            except Exception as exc:  # noqa: BLE001 — shipped back
                error = f"{type(exc).__name__}: {exc}"
        if kind == "call":
            snapshot = OBS.snapshot() if collecting else None
            if collecting:
                OBS.reset()
                OBS.enable(True)
            conn.send((result, snapshot, error))
        elif error is not None:
            # a failed cast surfaces on the next call
            pending_error = error
    conn.close()


#: Placeholder for a request whose reply has not been collected yet.
_PENDING = object()


class ShardWorkerPool:
    """Long-lived supervised workers, each pinned to fixed shards.

    Parameters
    ----------
    shards:
        Mapping of shard id → shard object.  Each object is pickled
        to its worker at startup; shard ``i`` (in ascending id order)
        lives on worker ``i % workers`` forever after.
    workers:
        Process count (clamped to the shard count).
    recover:
        Optional shard id → fresh shard callable used when a worker is
        respawned (the WAL checkpoint-and-replay path,
        :func:`repro.serving.wal.wal_recovery`).  When omitted, the
        original objects in ``shards`` are re-pickled — valid whenever
        the caller keeps those copies authoritative, as the router
        does.
    budget_steps:
        Logical step budget per reply wait (``None`` = unlimited,
        which re-opens the hang-forever hole and is only for tests).
    poll_interval:
        Seconds per liveness poll while waiting on a reply.
    """

    def __init__(
        self,
        shards: Mapping[int, Any],
        *,
        workers: int,
        recover: Optional[Callable[[int], Any]] = None,
        budget_steps: Optional[int] = DEFAULT_REPLY_BUDGET_STEPS,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> None:
        ids = sorted(shards)
        if not ids:
            raise ValueError("cannot pool zero shards")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.workers = max(1, min(workers, len(ids)))
        self._worker_of = {
            sid: i % self.workers for i, sid in enumerate(ids)
        }
        self._shards: Dict[int, Any] = {
            sid: shards[sid] for sid in ids
        }
        self._recover = recover
        self._budget_steps = budget_steps
        self._poll_interval = poll_interval
        self._clock = StepClock()
        self.respawns = 0
        self._ctx = multiprocessing.get_context()
        conns: List[Connection] = []
        procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: Optional[List[Connection]] = conns
        self._procs: List[multiprocessing.process.BaseProcess] = procs
        for w in range(self.workers):
            conn, proc = self._spawn(w)
            conns.append(conn)
            procs.append(proc)

    def _payload(self, worker: int) -> Dict[int, bytes]:
        """Pickled shard payload for one worker slot (id order)."""
        return {
            sid: pickle.dumps(self._shards[sid])
            for sid, w in self._worker_of.items()
            if w == worker
        }

    def _spawn(
        self, worker: int
    ) -> Tuple[Connection, multiprocessing.process.BaseProcess]:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self._payload(worker)),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    # ------------------------------------------------------------------
    def worker_of(self, shard_id: int) -> int:
        """Index of the worker pinned to ``shard_id``."""
        return self._worker_of[shard_id]

    def worker_pids(self) -> List[int]:
        """Live worker process ids, by worker index.

        The chaos harness kills these with SIGKILL to prove the
        supervision/replay path; anything else should treat them as
        opaque.
        """
        return [
            proc.pid if proc.pid is not None else -1
            for proc in self._procs
        ]

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def respawn(self, worker: int) -> None:
        """Replace worker ``worker`` with a fresh process.

        Deterministic: the slot keeps its shard set; each shard is
        rebuilt through the recovery callable (checkpoint + WAL
        replay) when one was given, else re-pickled from the caller's
        authoritative copies.  The old process is terminated (then
        killed) if still alive, so a wedged worker cannot leak.
        """
        if self._conns is None:
            raise RuntimeError("pool is closed")
        proc = self._procs[worker]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        if self._recover is not None:
            for sid, w in self._worker_of.items():
                if w == worker:
                    self._shards[sid] = self._recover(sid)
        conn, proc = self._spawn(worker)
        self._conns[worker] = conn
        self._procs[worker] = proc
        self.respawns += 1
        if OBS.enabled:
            OBS.add("serving.pool.respawns")
            OBS.add(f"serving.pool.respawns.w{worker}")

    def _down_error(
        self, worker: int, shard_id: int, pending: int, reason: str
    ) -> ShardWorkerError:
        return ShardWorkerError(
            f"shard worker {worker} serving shard {shard_id} "
            f"{reason}",
            hint=(
                f"{pending} request(s) were pending on the worker; "
                "it was respawned from its shards' checkpoints/WAL — "
                "retry the request or serve the shard degraded"
            ),
        )

    def _recv_reply(
        self, worker: int, shard_id: int, pending: int
    ) -> Tuple[Any, Optional[Dict[str, Any]], Optional[str]]:
        """One reply from ``worker`` under the logical deadline.

        Wall time appears only as the liveness poll interval; progress
        toward the budget is charged on the pool's step clock (one
        step per empty poll), so the deadline semantics stay logical.
        Raises :class:`DeadlineError` on a wedged worker and
        :class:`ShardWorkerError` on a dead one — never blocks
        forever on a silent pipe.
        """
        assert self._conns is not None
        conn = self._conns[worker]
        proc = self._procs[worker]
        deadline = Deadline(self._clock, self._budget_steps)
        while True:
            deadline.check(f"reply from shard {shard_id}")
            if conn.poll(self._poll_interval):
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as exc:
                    raise self._down_error(
                        worker, shard_id, pending,
                        "hung up mid-reply",
                    ) from exc
                result, snapshot, error = reply
                return result, snapshot, error
            if not proc.is_alive():
                raise self._down_error(
                    worker, shard_id, pending,
                    f"died (exitcode {proc.exitcode})",
                )
            self._clock.advance(1)

    def _fail_worker(
        self,
        worker: int,
        outstanding: Dict[int, List[int]],
        results: List[Any],
        error: ShardWorkerError,
    ) -> None:
        """Fail every request still pending on ``worker``; respawn."""
        for pos in outstanding[worker]:
            results[pos] = error
        outstanding[worker].clear()
        if OBS.enabled:
            OBS.add("serving.pool.worker_failures")
        self.respawn(worker)

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def try_call_many(
        self,
        requests: Sequence[Tuple[int, str, Tuple[Any, ...]]],
    ) -> List[Any]:
        """Supervised :meth:`call_many`: per-request result or error.

        Position ``i`` of the returned list holds either the request's
        result or the :class:`ShardWorkerError` it failed with — a
        dead or wedged worker fails every request outstanding on it
        (fast, typed, never a hang) and is respawned exactly once,
        while requests on healthy workers complete normally.  Every
        healthy reply is collected before returning, so no stale reply
        can leak into a later batch.
        """
        if self._conns is None:
            raise RuntimeError("pool is closed")
        collect = OBS.enabled
        results: List[Any] = [_PENDING] * len(requests)
        outstanding: Dict[int, List[int]] = {
            w: [] for w in range(self.workers)
        }
        down: Dict[int, ShardWorkerError] = {}
        for pos, (sid, method, args) in enumerate(requests):
            worker = self._worker_of[sid]
            if worker in down:
                results[pos] = down[worker]
                continue
            try:
                self._conns[worker].send(
                    ("call", sid, method, tuple(args), collect)
                )
            except (BrokenPipeError, OSError):
                error = self._down_error(
                    worker, sid, len(outstanding[worker]),
                    "is gone (request pipe closed)",
                )
                results[pos] = error
                down[worker] = error
                self._fail_worker(
                    worker, outstanding, results, error
                )
                continue
            outstanding[worker].append(pos)
        for pos, (sid, _method, _args) in enumerate(requests):
            if results[pos] is not _PENDING:
                continue
            worker = self._worker_of[sid]
            if not outstanding[worker] \
                    or outstanding[worker][0] != pos:
                # failed en masse when its worker went down
                continue
            try:
                result, snapshot, error = self._recv_reply(
                    worker, sid, len(outstanding[worker])
                )
            except DeadlineError as exc:
                wedged = self._down_error(
                    worker, sid, len(outstanding[worker]),
                    f"wedged past its reply budget ({exc})",
                )
                wedged.__cause__ = exc
                self._fail_worker(
                    worker, outstanding, results, wedged
                )
                continue
            except ShardWorkerError as dead:
                self._fail_worker(
                    worker, outstanding, results, dead
                )
                continue
            outstanding[worker].pop(0)
            if error is not None:
                results[pos] = ShardWorkerError(
                    f"shard worker for shard {sid} failed: {error}",
                    hint=(
                        "the worker survives; the failure came from "
                        "the shard method itself"
                    ),
                )
                continue
            if collect and snapshot:
                OBS.merge_snapshot(snapshot)
            results[pos] = result
        return results

    def call_many(
        self,
        requests: Sequence[Tuple[int, str, Tuple[Any, ...]]],
    ) -> List[Any]:
        """Run ``(shard_id, method, args)`` requests; ordered results.

        All requests are sent before any reply is read, so workers
        serve disjoint shards concurrently; replies are gathered in
        request order (per-worker pipes are FIFO), and worker metric
        snapshots are merged in that same order — results and counter
        totals match an inline serve exactly.

        Reply collection honors the pool's deadline: a dead or wedged
        worker raises a :class:`ShardWorkerError` naming the shard and
        the pending requests (after every healthy reply was collected
        and the failed worker respawned) instead of blocking forever.
        """
        results = self.try_call_many(requests)
        for result in results:
            if isinstance(result, ShardWorkerError):
                raise result
        return results

    def call(
        self, shard_id: int, method: str, *args: Any
    ) -> Any:
        """One request to one shard (see :meth:`call_many`)."""
        return self.call_many([(shard_id, method, args)])[0]

    def cast(
        self,
        shard_id: int,
        method: str,
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Fire-and-forget request (mutations).  No reply, no
        metrics: the caller already applied — and counted — the same
        operation on its own copy of the shard.  A dead worker is
        respawned instead of re-sent to: the caller applied the
        mutation before casting, so recovery (WAL replay or the
        authoritative copy) already contains it and re-sending would
        double-apply."""
        if self._conns is None:
            raise RuntimeError("pool is closed")
        worker = self._worker_of[shard_id]
        try:
            self._conns[worker].send(
                ("cast", shard_id, method, tuple(args), False)
            )
        except (BrokenPipeError, OSError):
            if OBS.enabled:
                OBS.add("serving.pool.worker_failures")
            self.respawn(worker)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the pipes (idempotent).

        Crash-safe: a pipe whose worker already died must not abort
        the shutdown of the rest — the shutdown message is best
        effort, every process is joined, terminated if it ignores the
        message, and killed if it ignores the terminate, so no worker
        leaks even when ``__exit__`` runs during an in-flight
        failure.
        """
        if self._conns is None:
            return
        conns, procs = self._conns, self._procs
        self._conns = None
        self._procs = []
        for conn in conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError, ValueError):
                pass
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._conns is None else "open"
        return (
            f"ShardWorkerPool(workers={self.workers}, "
            f"shards={len(self._worker_of)}, {state})"
        )
